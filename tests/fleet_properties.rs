//! Fleet-level serving invariants: request/token conservation across
//! replicas, policy determinism, and worker-pool equivalence — the
//! cross-crate contracts the fleet layer (DESIGN.md §8) must keep
//! regardless of router policy or how replica stepping is scheduled.

use moentwine::prelude::*;
use proptest::prelude::*;

fn engine_template(seed: u64) -> EngineConfig {
    let mut config = EngineConfig::new(ModelConfig::tiny())
        .with_seed(seed)
        .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
        .with_batch(BatchMode::External {
            mode: SchedulingMode::Hybrid,
            max_batch_tokens: 2048,
            max_active: 128,
        });
    config.kv_hbm_fraction = 1.0e-3;
    config
}

struct Fixture {
    topo: Topology,
    table: RouteTable,
    plan: MappingPlan,
}

fn fixture() -> Fixture {
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    Fixture { topo, table, plan }
}

fn run_fleet(
    f: &Fixture,
    replicas: usize,
    policy: RouterPolicy,
    rate: f64,
    seed: u64,
    rounds: usize,
) -> FleetSummary {
    let config = FleetConfig::new(replicas, policy, rate, engine_template(seed));
    let mut fleet = Fleet::new(&f.topo, &f.table, &f.plan, config);
    fleet.run(rounds);
    fleet.summary()
}

/// Every routed request is, at any synchronization point, in exactly one
/// replica state: waiting, resident, rejected, or completed — none lost,
/// none duplicated — and every policy conserves the same global arrival
/// stream (identical request totals, only the assignment differs).
#[test]
fn every_policy_conserves_requests_and_tokens() {
    let f = fixture();
    let mut totals: Vec<u64> = Vec::new();
    for policy in RouterPolicy::all() {
        let config = FleetConfig::new(3, policy, 6.0e3, engine_template(77));
        let mut fleet = Fleet::new(&f.topo, &f.table, &f.plan, config);
        fleet.run(250);
        let summary = fleet.summary();
        let routed: u64 = summary.routed.iter().sum();
        let mut accounted = 0u64;
        for (engine, s) in fleet.engines().iter().zip(&summary.per_replica) {
            let snap = engine.replica_snapshot().expect("serving mode");
            accounted += snap.queue_depth as u64
                + snap.active as u64
                + s.admission_rejects
                + s.completed as u64;
        }
        assert_eq!(
            routed, accounted,
            "{policy}: requests lost or double-counted"
        );
        // Token conservation per replica: scheduled tokens never exceed
        // admitted tokens, and completed requests got exactly their due
        // (the per-queue invariant, here checked through the fleet path).
        for engine in fleet.engines() {
            for r in engine.completed_requests() {
                assert_eq!(r.prefill_scheduled, r.input_len);
                assert_eq!(r.decode_scheduled, r.output_len);
            }
        }
        // Aggregate record count matches the per-replica sum.
        let sum: usize = summary.per_replica.iter().map(|s| s.completed).sum();
        assert_eq!(summary.aggregate.completed, sum);
        totals.push(routed);
    }
    // The arrival stream is policy-independent: at a common fleet horizon
    // every policy must have routed a comparable request count (exact
    // equality does not hold — routing changes queueing, which changes
    // iteration pricing and thus how far the shared clock advances — but
    // the streams draw from identical seeds).
    let max = *totals.iter().max().unwrap() as f64;
    let min = *totals.iter().min().unwrap() as f64;
    assert!(
        min > 0.0 && max / min < 1.5,
        "policy-dependent arrival streams? routed counts {totals:?}"
    );
}

/// Power-of-two-choices is deterministic at a fixed seed: identical fleets
/// route identically, and a different master seed produces a different
/// (but internally consistent) assignment.
#[test]
fn power_of_two_routing_is_deterministic_at_fixed_seed() {
    let f = fixture();
    let a = run_fleet(&f, 4, RouterPolicy::PowerOfTwoChoices, 8.0e3, 21, 150);
    let b = run_fleet(&f, 4, RouterPolicy::PowerOfTwoChoices, 8.0e3, 21, 150);
    assert_eq!(a.routed, b.routed);
    assert_eq!(a.per_replica, b.per_replica);
    assert_eq!(a.aggregate, b.aggregate);
    let c = run_fleet(&f, 4, RouterPolicy::PowerOfTwoChoices, 8.0e3, 22, 150);
    assert_ne!(
        a.routed, c.routed,
        "different seeds should sample different replica pairs"
    );
}

/// `LeastKvPressure` never dispatches a request to a replica that must
/// permanently reject it while another replica could admit it. In a
/// homogeneous fleet every budget is equal, so the fleet-level corollary
/// is: either a request fits every replica (zero rejects) or it fits none
/// (rejected wherever routed) — rejects can only be stream-wide, never an
/// artifact of routing. Check via snapshots on the live fleet.
#[test]
fn least_kv_pressure_respects_reject_sets() {
    let f = fixture();
    let config = FleetConfig::new(3, RouterPolicy::LeastKvPressure, 6.0e3, engine_template(33));
    let mut fleet = Fleet::new(&f.topo, &f.table, &f.plan, config);
    fleet.run(250);
    let budgets: Vec<u64> = fleet
        .engines()
        .iter()
        .map(|e| e.replica_snapshot().unwrap().kv_budget_tokens)
        .collect();
    assert!(
        budgets.windows(2).all(|w| w[0] == w[1]),
        "homogeneous fleet"
    );
    // Every completed request fit within the budget it was admitted
    // against; every reject exceeded the (common) budget, so no other
    // replica could have admitted it either.
    for (engine, s) in fleet.engines().iter().zip(&fleet.summary().per_replica) {
        for r in engine.completed_requests() {
            assert!(r.input_len as u64 + r.output_len as u64 <= budgets[0]);
        }
        // Privacy traffic is short: nothing in this stream can exceed the
        // ~700k-token budget, so routing must produce zero rejects.
        assert_eq!(s.admission_rejects, 0);
    }

    // The adversarial half runs at the router level, where heterogeneous
    // budgets are expressible: replica 0 is emptier but can never hold the
    // request — it must not be chosen while replica 1 can admit.
    let mut router = Router::new(RouterPolicy::LeastKvPressure, 2, 5);
    let snapshots = [
        ReplicaSnapshot {
            queue_depth: 0,
            active: 0,
            kv_tokens_in_use: 0,
            kv_budget_tokens: 64,
            mode: SchedulingMode::Hybrid,
        },
        ReplicaSnapshot {
            queue_depth: 8,
            active: 8,
            kv_tokens_in_use: 7_000,
            kv_budget_tokens: 8_192,
            mode: SchedulingMode::Hybrid,
        },
    ];
    for id in 0..32 {
        let request = Request {
            id: RequestId(id),
            scenario: Scenario::Coding,
            input_len: 400,
            output_len: 200,
            arrival: id as f64,
            class: RequestClass::Interactive,
        };
        assert!(snapshots[0].must_reject(&request));
        assert!(!snapshots[1].must_reject(&request));
        assert_eq!(router.route(&request, &snapshots), 1);
    }
}

/// Stepping replicas through any `ReplicaPool` — including one that runs
/// jobs out of order — produces byte-identical fleet results: replicas are
/// independent between synchronization points and results merge by index.
#[test]
fn worker_pool_scheduling_cannot_change_results() {
    struct ScrambledPool;
    impl ReplicaPool for ScrambledPool {
        fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
            // Odd indices first, then evens — a legal (if absurd) schedule.
            let mut deferred = Vec::new();
            for (i, job) in jobs.into_iter().enumerate() {
                if i % 2 == 0 {
                    deferred.push(job);
                } else {
                    job();
                }
            }
            for job in deferred {
                job();
            }
        }
    }
    let f = fixture();
    let run = |pool: &dyn ReplicaPool| {
        let config = FleetConfig::new(4, RouterPolicy::LeastQueueDepth, 8.0e3, engine_template(55));
        let mut fleet = Fleet::new(&f.topo, &f.table, &f.plan, config);
        fleet.run_with(150, pool);
        fleet.summary()
    };
    let serial = run(&SerialReplicaPool);
    let scrambled = run(&ScrambledPool);
    assert_eq!(serial.routed, scrambled.routed);
    assert_eq!(serial.per_replica, scrambled.per_replica);
    assert_eq!(serial.aggregate, scrambled.aggregate);
    assert_eq!(serial.sim_seconds, scrambled.sim_seconds);
}

/// Disaggregated conservation, as a property over (seed, rate) points on a
/// *heterogeneous* fleet — wafer prefill pods handing off to DGX decode
/// replicas across the priced KV-transfer boundary (DESIGN.md §13):
///
/// * every routed dispatch is either in the prefill tier or a delivered
///   hand-off into the decode tier; every priced transfer is pending or
///   delivered — none lost, none duplicated;
/// * transfer bytes are pinned to the model:
///   `kv_bytes_per_token_all_layers(FP16) × prefill tokens`, summed over
///   every prefill-side record;
/// * both fleet schedulers and any legal `ReplicaPool` ordering produce
///   byte-identical summaries.
#[test]
fn disaggregated_fleets_conserve_handoffs_across_schedulers_and_pools() {
    struct ScrambledPool;
    impl ReplicaPool for ScrambledPool {
        fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
            let mut deferred = Vec::new();
            for (i, job) in jobs.into_iter().enumerate() {
                if i % 2 == 0 {
                    deferred.push(job);
                } else {
                    job();
                }
            }
            for job in deferred {
                job();
            }
        }
    }

    let f = fixture();
    let decode_topo = DgxCluster::new(1, PlatformParams::dgx_b200()).build();
    let decode_table = RouteTable::build(&decode_topo);
    let decode_layout = ClusterLayout::new(&decode_topo, 8);
    let per_token = ModelConfig::tiny().kv_bytes_per_token_all_layers(Precision::Fp16);

    let run = |seed: u64, rate: f64, scheduler: FleetScheduler, pool: &dyn ReplicaPool| {
        let roles = vec![
            ReplicaRole::Prefill,
            ReplicaRole::Prefill,
            ReplicaRole::Decode,
            ReplicaRole::Decode,
        ];
        let config = FleetConfig::new(
            4,
            RouterPolicy::LeastQueueDepth,
            rate,
            engine_template(seed),
        )
        .with_roles(roles)
        .with_scheduler(scheduler);
        let prefill = PlatformRefs {
            topo: &f.topo,
            table: &f.table,
            layout: &f.plan,
        };
        let decode = PlatformRefs {
            topo: &decode_topo,
            table: &decode_table,
            layout: &decode_layout,
        };
        let mut fleet =
            Fleet::try_new_disaggregated(prefill, Some(decode), config).expect("valid roles");
        fleet.run_with(250, pool);
        let summary = fleet.summary();

        // Conservation across the hand-off boundary, at this sync point.
        let tier = |role: ReplicaRole| -> u64 {
            fleet
                .engines()
                .iter()
                .zip(fleet.roles())
                .zip(&summary.per_replica)
                .filter(|((_, r), _)| **r == role)
                .map(|((e, _), s)| {
                    let snap = e.replica_snapshot().unwrap();
                    snap.queue_depth as u64
                        + snap.active as u64
                        + s.admission_rejects
                        + s.shed
                        + s.completed as u64
                })
                .sum()
        };
        let handoff = &summary.handoff;
        let routed: u64 = summary.routed.iter().sum();
        let delivered = handoff.kv_transfers - handoff.pending_transfers;
        assert_eq!(
            routed,
            tier(ReplicaRole::Prefill) + delivered,
            "seed {seed} rate {rate}: requests lost across the hand-off boundary"
        );
        assert_eq!(
            tier(ReplicaRole::Decode),
            delivered,
            "seed {seed} rate {rate}: delivered transfers not accounted in decode tier"
        );

        // Transfer accounting is pinned to the model, per hand-off.
        let prefill_records: Vec<_> = fleet
            .engines()
            .iter()
            .zip(fleet.roles())
            .filter(|(_, r)| **r == ReplicaRole::Prefill)
            .flat_map(|(e, _)| e.completed_requests())
            .collect();
        assert_eq!(handoff.kv_transfers, prefill_records.len() as u64);
        let expected_bytes: f64 = prefill_records
            .iter()
            .map(|r| per_token * f64::from(r.prefill_scheduled))
            .sum();
        assert_eq!(
            handoff.kv_transfer_bytes, expected_bytes,
            "seed {seed} rate {rate}: transfer bytes diverge from kv-per-token × prefill tokens"
        );
        summary
    };

    for &(seed, rate) in &[(7u64, 8.0e3), (61, 2.0e4), (91, 4.0e4)] {
        let reference = run(seed, rate, FleetScheduler::Lockstep, &SerialReplicaPool);
        assert!(
            reference.handoff.kv_transfers > 0,
            "seed {seed} rate {rate}: point never exercised a hand-off"
        );
        assert!(reference.handoff.kv_transfer_seconds > 0.0, "free transfer");
        for (scheduler, pool) in [
            (
                FleetScheduler::EventHeap,
                &SerialReplicaPool as &dyn ReplicaPool,
            ),
            (FleetScheduler::Lockstep, &ScrambledPool),
            (FleetScheduler::EventHeap, &ScrambledPool),
        ] {
            assert_eq!(
                reference,
                run(seed, rate, scheduler, pool),
                "seed {seed} rate {rate}: {scheduler:?} diverged"
            );
        }
    }
}

proptest! {
    /// Speculative dispatch conserves every copy it races: at any
    /// synchronization point each dispatched copy is waiting, resident,
    /// rejected, shed, completed, or cancelled as a race loser — none
    /// lost, none duplicated:
    ///
    /// `routed == queued + resident + rejects + shed + completed +
    /// cancelled_speculative`
    ///
    /// The ledger must balance under both scheduler drives, any legal
    /// `ReplicaPool` interleaving, and both summary modes (the Exact path
    /// surgically removes loser records and rewinds feedback cursors).
    /// Pool interleavings can never change results within a drive; the
    /// two drives resolve races at different sync points and are each
    /// internally deterministic, but are not required to agree with each
    /// other bit-for-bit.
    #[test]
    fn speculative_copies_conserved_across_drives_and_pools(
        seed in 0u64..400,
        k in 2usize..4,
        replicas in 2usize..5,
        rate_kilo in 4u32..24,
        rounds in 50usize..140,
        exact in 0u8..2,
    ) {
        struct ScrambledPool;
        impl ReplicaPool for ScrambledPool {
            fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
                let mut deferred = Vec::new();
                for (i, job) in jobs.into_iter().enumerate() {
                    if i % 2 == 0 {
                        deferred.push(job);
                    } else {
                        job();
                    }
                }
                for job in deferred {
                    job();
                }
            }
        }

        let f = fixture();
        let rate = rate_kilo as f64 * 1.0e3;
        // Fewer replicas than requested copies: the policy must truncate.
        let k_eff = k.min(replicas) as u64;
        let run = |scheduler: FleetScheduler, pool: &dyn ReplicaPool| {
            let mut engine = engine_template(seed);
            if exact == 1 {
                engine = engine.with_summary(SummaryMode::Exact);
            }
            let config =
                FleetConfig::new(replicas, RouterPolicy::Speculative { k }, rate, engine)
                    .with_scheduler(scheduler);
            let mut fleet = Fleet::new(&f.topo, &f.table, &f.plan, config);
            fleet.run_with(rounds, pool);
            let summary = fleet.summary();

            let routed: u64 = summary.routed.iter().sum();
            let mut accounted = summary.speculative.cancelled_copies;
            let mut rejects = 0u64;
            let mut shed = 0u64;
            for (engine, s) in fleet.engines().iter().zip(&summary.per_replica) {
                let snap = engine.replica_snapshot().expect("serving mode");
                accounted += snap.queue_depth as u64
                    + snap.active as u64
                    + s.admission_rejects
                    + s.shed
                    + s.completed as u64;
                rejects += s.admission_rejects;
                shed += s.shed;
            }
            assert_eq!(
                routed, accounted,
                "{scheduler:?}: speculative copies lost or double-counted"
            );
            // Every arrival fans out to exactly `min(k, replicas)` copies.
            assert_eq!(
                routed,
                summary.speculative.groups_dispatched * k_eff,
                "{scheduler:?}: dispatch fan-out diverged from k"
            );
            // With no rejects or sheds every group keeps all its copies,
            // so each completed winner implies `k_eff - 1` cancelled
            // losers from its (distinct) resolved group.
            if rejects == 0 && shed == 0 {
                assert!(
                    summary.speculative.cancelled_copies
                        >= summary.aggregate.completed as u64 * (k_eff - 1),
                    "{scheduler:?}: winners completed without cancelling losers"
                );
            }
            summary
        };

        let lockstep = run(FleetScheduler::Lockstep, &SerialReplicaPool);
        let event = run(FleetScheduler::EventHeap, &SerialReplicaPool);
        prop_assert_eq!(&lockstep, &run(FleetScheduler::Lockstep, &ScrambledPool));
        prop_assert_eq!(&event, &run(FleetScheduler::EventHeap, &ScrambledPool));
    }
}

/// Scale-out sanity: under a flooding arrival rate, more replicas actually
/// add serving capacity — the fleet holds more resident requests and the
/// un-admitted backlog per unit of work shrinks — rather than just
/// sharding one queue. (Completion counts are horizon-bound at short
/// rounds, so capacity shows up in admission, not completions.)
#[test]
fn more_replicas_add_capacity_under_saturation() {
    let f = fixture();
    let one = run_fleet(&f, 1, RouterPolicy::LeastQueueDepth, 1.0e5, 91, 300);
    let four = run_fleet(&f, 4, RouterPolicy::LeastQueueDepth, 1.0e5, 91, 300);
    // Raw completion counts are not comparable across fleet sizes at equal
    // rounds (batch occupancy changes iteration pricing, hence simulated
    // horizon); goodput per *simulated second* is.
    assert!(
        four.aggregate.goodput_rps > one.aggregate.goodput_rps,
        "goodput did not scale: {} vs {} req/s",
        four.aggregate.goodput_rps,
        one.aggregate.goodput_rps
    );
    assert!(
        four.aggregate.goodput_tokens_per_s > 1.2 * one.aggregate.goodput_tokens_per_s,
        "token throughput did not scale: {} vs {}",
        four.aggregate.goodput_tokens_per_s,
        one.aggregate.goodput_tokens_per_s
    );
    // The single replica saturates (long un-admitted backlog, near its
    // 128-active cap); the fleet absorbs the same stream without queueing.
    assert!(
        one.aggregate.mean_queue_depth > 10.0,
        "single replica should be backlogged, got {}",
        one.aggregate.mean_queue_depth
    );
    assert!(
        four.aggregate.mean_queue_depth < one.aggregate.mean_queue_depth / 10.0,
        "fleet backlog should collapse: {} vs {}",
        four.aggregate.mean_queue_depth,
        one.aggregate.mean_queue_depth
    );
    assert!(one.per_replica[0].mean_active_requests > 100.0);
}
