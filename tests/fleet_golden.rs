//! Fleet golden-trace regression suite: a pinned 2-replica scenario runs
//! once per [`RouterPolicy`], and the resulting [`FleetSummary`] must match
//! the snapshot checked in under `tests/golden/fleet_<policy>.json` to 1e-9
//! relative tolerance — the fleet-layer companion of `golden_trace.rs`.
//!
//! A drifting metric fails with a per-field diff naming every divergent
//! value. To regenerate the snapshots after an *intentional* behavior
//! change:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test --test fleet_golden
//! ```
//!
//! then commit the rewritten `tests/golden/fleet_*.json` and call out the
//! metric shift in the PR.

use std::path::PathBuf;

use moentwine::prelude::*;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The pinned scenario: two 4×4-wafer replicas serving a bursty privacy
/// stream through every router policy — routing, per-replica admission,
/// the shared fleet clock, and the aggregate summary are all on the trace.
fn run_scenario(policy: RouterPolicy) -> FleetSummary {
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let mut engine = EngineConfig::new(ModelConfig::tiny())
        .with_seed(4242)
        .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
        .with_batch(BatchMode::External {
            mode: SchedulingMode::Hybrid,
            max_batch_tokens: 2048,
            max_active: 128,
        });
    engine.kv_hbm_fraction = 1.0e-3;
    // High enough that the 400-round horizon sees queueing pressure, not
    // just a trickle: load-aware policies must actually differentiate.
    let config = FleetConfig::new(2, policy, 1.2e5, engine);
    let mut fleet = Fleet::new(&topo, &table, &plan, config);
    fleet.run(400);
    fleet.summary()
}

/// Flattens a fleet summary into an ordered `name → value` object:
/// routing, aggregate percentiles, and the per-replica signals most likely
/// to catch a policy regression.
fn snapshot(s: &FleetSummary) -> Vec<(String, f64)> {
    let mut fields = vec![
        ("fleet.replicas".into(), s.replicas as f64),
        ("fleet.rounds".into(), s.rounds as f64),
        ("fleet.sim_seconds".into(), s.sim_seconds),
        ("fleet.routing_imbalance".into(), s.routing_imbalance),
        ("fleet.completion_imbalance".into(), s.completion_imbalance),
    ];
    for (i, routed) in s.routed.iter().enumerate() {
        fields.push((format!("fleet.routed[{i}]"), *routed as f64));
    }
    let agg = &s.aggregate;
    fields.extend([
        ("aggregate.completed".into(), agg.completed as f64),
        (
            "aggregate.admission_rejects".into(),
            agg.admission_rejects as f64,
        ),
        ("aggregate.goodput_rps".into(), agg.goodput_rps),
        (
            "aggregate.goodput_tokens_per_s".into(),
            agg.goodput_tokens_per_s,
        ),
        ("aggregate.ttft_p50".into(), agg.ttft_p50),
        ("aggregate.ttft_p95".into(), agg.ttft_p95),
        ("aggregate.ttft_p99".into(), agg.ttft_p99),
        ("aggregate.tpot_p50".into(), agg.tpot_p50),
        ("aggregate.tpot_p99".into(), agg.tpot_p99),
        ("aggregate.e2e_p50".into(), agg.e2e_p50),
        ("aggregate.e2e_p99".into(), agg.e2e_p99),
        ("aggregate.queueing_p50".into(), agg.queueing_p50),
        ("aggregate.mean_queue_depth".into(), agg.mean_queue_depth),
        (
            "aggregate.mean_active_requests".into(),
            agg.mean_active_requests,
        ),
        ("aggregate.peak_kv_tokens".into(), agg.peak_kv_tokens as f64),
    ]);
    for (i, r) in s.per_replica.iter().enumerate() {
        fields.push((format!("replica{i}.completed"), r.completed as f64));
        fields.push((format!("replica{i}.sim_seconds"), r.sim_seconds));
        fields.push((format!("replica{i}.ttft_p50"), r.ttft_p50));
        fields.push((format!("replica{i}.e2e_p99"), r.e2e_p99));
        fields.push((
            format!("replica{i}.mean_active_requests"),
            r.mean_active_requests,
        ));
        fields.push((
            format!("replica{i}.peak_kv_tokens"),
            r.peak_kv_tokens as f64,
        ));
    }
    fields
}

fn check_golden(policy: RouterPolicy) {
    moentwine_bench::golden::check_or_bless(
        &golden_dir().join(format!("fleet_{}.json", policy.name())),
        &snapshot(&run_scenario(policy)),
        &format!("policy {}", policy.name()),
        "GOLDEN_BLESS=1 cargo test --test fleet_golden",
    );
}

#[test]
fn fleet_golden_round_robin() {
    check_golden(RouterPolicy::RoundRobin);
}

#[test]
fn fleet_golden_least_queue_depth() {
    check_golden(RouterPolicy::LeastQueueDepth);
}

#[test]
fn fleet_golden_least_kv_pressure() {
    check_golden(RouterPolicy::LeastKvPressure);
}

#[test]
fn fleet_golden_power_of_two() {
    check_golden(RouterPolicy::PowerOfTwoChoices);
}

#[test]
fn fleet_golden_ewma_ttft() {
    check_golden(RouterPolicy::EwmaLatency);
}

#[test]
fn fleet_golden_least_expected_ttft() {
    check_golden(RouterPolicy::LeastExpectedTtft);
}

/// Speculative dispatch golden: `speculative:k=2` on the same pinned
/// scenario — every request races a copy on both replicas and the loser is
/// cancelled at the group's first token. The policy name is not
/// filesystem-safe (`:` / `=`), so the snapshot lives under a sanitized
/// file name; the speculative accounting section rides along.
#[test]
fn fleet_golden_speculative_k2() {
    let summary = run_scenario(RouterPolicy::Speculative { k: 2 });
    let mut fields = snapshot(&summary);
    let sp = &summary.speculative;
    fields.extend([
        (
            "speculative.groups_dispatched".into(),
            sp.groups_dispatched as f64,
        ),
        (
            "speculative.cancelled_copies".into(),
            sp.cancelled_copies as f64,
        ),
        ("speculative.open_groups".into(), sp.open_groups as f64),
    ]);
    assert!(
        sp.groups_dispatched > 0,
        "golden scenario must dispatch speculative races"
    );
    assert!(
        sp.cancelled_copies > 0,
        "first-token races must cancel loser copies"
    );
    moentwine_bench::golden::check_or_bless(
        &golden_dir().join("fleet_speculative_k2.json"),
        &fields,
        "policy speculative:k=2",
        "GOLDEN_BLESS=1 cargo test --test fleet_golden",
    );
}

/// The pinned disaggregated scenario: two wafer prefill pods feeding two
/// DGX decode replicas, every hand-off priced through the congestion
/// model. Pins the transfer accounting (count, bytes, seconds) and the
/// decode-side aggregate alongside the usual fleet trace.
fn run_disagg_scenario() -> FleetSummary {
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let decode_topo = DgxCluster::new(1, PlatformParams::dgx_b200()).build();
    let decode_table = RouteTable::build(&decode_topo);
    let decode_layout = ClusterLayout::new(&decode_topo, 8);
    let mut engine = EngineConfig::new(ModelConfig::tiny())
        .with_seed(4242)
        .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
        .with_batch(BatchMode::External {
            mode: SchedulingMode::Hybrid,
            max_batch_tokens: 2048,
            max_active: 128,
        });
    engine.kv_hbm_fraction = 1.0e-3;
    let config =
        FleetConfig::new(4, RouterPolicy::LeastQueueDepth, 1.2e5, engine).with_roles(vec![
            ReplicaRole::Prefill,
            ReplicaRole::Prefill,
            ReplicaRole::Decode,
            ReplicaRole::Decode,
        ]);
    let prefill = PlatformRefs {
        topo: &topo,
        table: &table,
        layout: &plan,
    };
    let decode = PlatformRefs {
        topo: &decode_topo,
        table: &decode_table,
        layout: &decode_layout,
    };
    let mut fleet = Fleet::try_new_disaggregated(prefill, Some(decode), config)
        .expect("valid disaggregated scenario");
    fleet.run(400);
    fleet.summary()
}

#[test]
fn fleet_golden_disagg_2p2d() {
    let summary = run_disagg_scenario();
    let mut fields = snapshot(&summary);
    let h = &summary.handoff;
    fields.extend([
        ("handoff.kv_transfers".into(), h.kv_transfers as f64),
        ("handoff.kv_transfer_bytes".into(), h.kv_transfer_bytes),
        ("handoff.kv_transfer_seconds".into(), h.kv_transfer_seconds),
        (
            "handoff.max_transfer_seconds".into(),
            h.max_transfer_seconds,
        ),
        (
            "handoff.pending_transfers".into(),
            h.pending_transfers as f64,
        ),
        (
            "handoff.handoffs_completed".into(),
            h.handoffs_completed as f64,
        ),
        (
            "handoff.mean_handoff_latency".into(),
            h.mean_handoff_latency,
        ),
        ("handoff.max_handoff_latency".into(), h.max_handoff_latency),
        ("handoff.mean_e2e_ttft".into(), h.mean_e2e_ttft),
        ("handoff.max_e2e_ttft".into(), h.max_e2e_ttft),
    ]);
    assert!(h.kv_transfers > 0, "golden scenario must price hand-offs");
    moentwine_bench::golden::check_or_bless(
        &golden_dir().join("fleet_disagg_2p2d.json"),
        &fields,
        "disaggregated 2 prefill + 2 decode fleet",
        "GOLDEN_BLESS=1 cargo test --test fleet_golden",
    );
}

/// The scenario itself is deterministic: two in-process runs at the same
/// seed produce identical snapshots bit for bit.
#[test]
fn fleet_golden_scenario_is_deterministic_in_process() {
    let a = snapshot(&run_scenario(RouterPolicy::LeastQueueDepth));
    let b = snapshot(&run_scenario(RouterPolicy::LeastQueueDepth));
    assert_eq!(
        moentwine_bench::golden::fields_to_json(&a).pretty(),
        moentwine_bench::golden::fields_to_json(&b).pretty()
    );
}
