//! End-to-end scenarios spanning every crate: the claims a downstream user
//! of the library would rely on.

use moentwine::core::balancer::BalancerKind;
use moentwine::core::comm::ClusterLayout;
use moentwine::core::engine::{EngineConfig, InferenceEngine};
use moentwine::prelude::*;
use moentwine::workload::{Scenario, WorkloadMix};

fn small_model() -> ModelConfig {
    ModelConfig {
        name: "tiny".into(),
        total_params_b: 1.0,
        num_layers: 6,
        num_sparse_layers: 6,
        hidden_size: 1024,
        moe_intermediate_size: 512,
        num_experts: 16,
        experts_per_token: 2,
        num_shared_experts: 0,
        num_attention_heads: 8,
        num_kv_heads: 2,
        head_dim: 128,
    }
}

#[test]
fn er_reduces_end_to_end_a2a_versus_baseline() {
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let dims = topo.mesh_dims().unwrap();
    let run = |plan: &MappingPlan| {
        let config = EngineConfig::new(small_model()).with_seed(3);
        InferenceEngine::new(&topo, &table, plan, config).run(10)
    };
    let base = run(&BaselineMapping::new(dims, TpShape::new(2, 2))
        .unwrap()
        .plan());
    let er = run(&ErMapping::new(dims, TpShape::new(2, 2)).unwrap().plan());
    assert!(
        er.mean_all_to_all < base.mean_all_to_all,
        "ER {} vs baseline {}",
        er.mean_all_to_all,
        base.mean_all_to_all
    );
}

#[test]
fn her_beats_pure_er_on_multi_wafer() {
    let topo = MultiWafer::grid(2, 2, 4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let dims = topo.mesh_dims().unwrap();
    let run = |plan: &MappingPlan| {
        let mut config = EngineConfig::new(small_model()).with_seed(3);
        config.comm_layer_stride = 2;
        InferenceEngine::new(&topo, &table, plan, config).run(6)
    };
    let er = run(&ErMapping::with_tp_degree(dims, 4).unwrap().plan());
    let her = run(&HierarchicalErMapping::with_tp_degree(dims, 4)
        .unwrap()
        .plan());
    let er_comm = er.mean_all_to_all + er.mean_all_reduce;
    let her_comm = her.mean_all_to_all + her.mean_all_reduce;
    assert!(
        her_comm < er_comm,
        "HER comm {her_comm} vs pure-ER comm {er_comm}"
    );
}

#[test]
fn wsc_engine_beats_dgx_engine_per_device() {
    // The Fig. 1 story at engine level, on a small instance: 16-die wafer
    // vs 2-node DGX (16 GPUs), identical model and per-group batch.
    let model = small_model();

    let dgx = DgxCluster::new(2, PlatformParams::dgx_b200()).build();
    let dgx_table = RouteTable::build(&dgx);
    let dgx_layout = ClusterLayout::new(&dgx, 4);
    let mut dgx_engine = InferenceEngine::new(
        &dgx,
        &dgx_table,
        &dgx_layout,
        EngineConfig::new(model.clone()).with_seed(5),
    );
    let dgx_summary = dgx_engine.run(10);

    let wsc = Mesh::new(4, PlatformParams::dojo_like()).build();
    let wsc_table = RouteTable::build(&wsc);
    let plan = ErMapping::with_tp_degree(wsc.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let mut wsc_engine = InferenceEngine::new(
        &wsc,
        &wsc_table,
        &plan,
        EngineConfig::new(model).with_seed(5),
    );
    let wsc_summary = wsc_engine.run(10);

    assert!(
        wsc_summary.mean_all_to_all < dgx_summary.mean_all_to_all,
        "WSC a2a {} vs DGX a2a {}",
        wsc_summary.mean_all_to_all,
        dgx_summary.mean_all_to_all
    );
}

#[test]
fn non_invasive_balancer_is_zero_overhead_and_converges() {
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let config = EngineConfig::new(small_model())
        .with_workload(WorkloadMix::Fixed(Scenario::Coding))
        .with_balancer(BalancerKind::NonInvasive)
        .with_seed(8);
    let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
    engine.run(50);

    // Zero overhead, ever.
    assert!(engine.history.iter().all(|m| m.migration_stall == 0.0));
    // Load ratio in the last third is better than the first three
    // iterations (convergence).
    let early: f64 = engine.history[..3]
        .iter()
        .map(|m| m.load_ratio)
        .sum::<f64>()
        / 3.0;
    let late_window = &engine.history[35..];
    let late: f64 =
        late_window.iter().map(|m| m.load_ratio).sum::<f64>() / late_window.len() as f64;
    assert!(late < early, "no convergence: early {early} late {late}");
}

#[test]
fn engine_scenarios_run_under_both_pricing_backends() {
    // The backend knob must drive the same end-to-end scenario at either
    // fidelity — including balancing and non-invasive migration.
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    for backend in CongestionBackend::all() {
        let config = EngineConfig::new(small_model())
            .with_workload(WorkloadMix::Fixed(Scenario::Coding))
            .with_balancer(BalancerKind::NonInvasive)
            .with_seed(9)
            .with_backend(backend);
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        let summary = engine.run(8);
        assert!(summary.mean_iteration_time > 0.0, "{backend}: empty run");
        assert!(summary.mean_all_to_all > 0.0, "{backend}: no a2a priced");
        assert!(
            engine.history.iter().all(|m| m.migration_stall == 0.0),
            "{backend}: non-invasive balancing must never stall"
        );
    }
}

#[test]
fn engine_histories_are_reproducible() {
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let run = || {
        let config = EngineConfig::new(small_model())
            .with_balancer(BalancerKind::NonInvasive)
            .with_seed(77);
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        engine.run(15);
        engine.history
    };
    assert_eq!(run(), run());
}

#[test]
fn invasive_beats_nothing_but_loses_to_non_invasive_on_stalls() {
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let run = |kind: BalancerKind| {
        let config = EngineConfig::new(small_model())
            .with_workload(WorkloadMix::Fixed(Scenario::Math))
            .with_balancer(kind)
            .with_seed(4);
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        engine.run(40)
    };
    let greedy = run(BalancerKind::Greedy);
    let topo_aware = run(BalancerKind::TopologyAware);
    let ni = run(BalancerKind::NonInvasive);
    assert!(greedy.mean_migration_stall > 0.0);
    // Topology-aware migrations travel shorter distances → smaller stalls.
    assert!(
        topo_aware.mean_migration_stall <= greedy.mean_migration_stall,
        "topology-aware {} vs greedy {}",
        topo_aware.mean_migration_stall,
        greedy.mean_migration_stall
    );
    assert_eq!(ni.mean_migration_stall, 0.0);
}
