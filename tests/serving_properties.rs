//! Property-based tests for the request-level serving queue: token
//! conservation, KV-budget safety, lifecycle monotonicity, and
//! relabeling-invariance of batch composition.

use proptest::prelude::*;

use moentwine::prelude::*;
use moentwine::workload::serving::ServingQueue as Queue;
use moentwine::workload::{BatchSpec, Scenario};

fn mode_of(tag: u8) -> SchedulingMode {
    match tag % 3 {
        0 => SchedulingMode::PrefillOnly,
        1 => SchedulingMode::DecodeOnly,
        _ => SchedulingMode::Hybrid,
    }
}

/// Deterministic random request set: increasing arrivals, bounded lengths.
fn random_requests(seed: u64, count: usize) -> Vec<Request> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5E41);
    let mut arrival = 0.0;
    (0..count)
        .map(|i| {
            arrival += rng.gen_range(0.0..0.4);
            Request {
                id: moentwine::workload::RequestId(i as u64),
                scenario: Scenario::all()[rng.gen_range(0..4usize)],
                input_len: rng.gen_range(1..64u32),
                output_len: rng.gen_range(1..32u32),
                arrival,
                class: RequestClass::Interactive,
            }
        })
        .collect()
}

/// Drives `queue` over `requests` until everything admitted completes (or
/// an iteration cap trips), collecting every batch.
fn drive(queue: &mut Queue, requests: &[Request], kv_budget: u64) -> Vec<BatchSpec> {
    let mut batches = Vec::new();
    let mut next = 0usize;
    let mut now = 0.0f64;
    for _ in 0..4000 {
        while next < requests.len() && requests[next].arrival <= now {
            queue.offer(requests[next].clone());
            next += 1;
        }
        let batch = queue.next_batch(now);
        assert!(
            queue.kv_tokens_in_use() <= kv_budget,
            "KV over budget: {} > {kv_budget}",
            queue.kv_tokens_in_use()
        );
        let (ep, ed) = batch.requests.iter().fold((0u32, 0u32), |(p, d), e| {
            (p + e.prefill_tokens, d + e.decode_tokens)
        });
        assert_eq!(
            ep, batch.prefill_tokens,
            "entries must attribute all prefill"
        );
        assert_eq!(ed, batch.decode_tokens, "entries must attribute all decode");
        now += 0.25;
        queue.finish_iteration(now);
        batches.push(batch);
        if next == requests.len() && queue.num_active() == 0 && queue.queue_depth() == 0 {
            break;
        }
    }
    batches
}

proptest! {
    /// Token conservation: everything admitted is scheduled exactly once —
    /// batch sums equal the accounting counters equal the per-record
    /// counts, with nothing lost or double-counted — while the active KV
    /// footprint never exceeds the budget (asserted inside `drive`).
    #[test]
    fn tokens_conserved_and_kv_bounded(
        seed in 0u64..400,
        count in 1usize..24,
        mode_tag in 0u8..3,
        budget in 64u64..512,
    ) {
        let mode = mode_of(mode_tag);
        let requests = random_requests(seed, count);
        let mut queue = Queue::new(mode, 48, 6, budget);
        let batches = drive(&mut queue, &requests, budget);

        let batch_prefill: u64 =
            batches.iter().map(|b| b.prefill_tokens as u64).sum();
        let batch_decode: u64 =
            batches.iter().map(|b| b.decode_tokens as u64).sum();
        let acc = queue.accounting();
        prop_assert_eq!(batch_prefill, acc.scheduled_prefill);
        prop_assert_eq!(batch_decode, acc.scheduled_decode);
        // Everything admitted was fully served (the driver drains the
        // queue), so scheduled == admitted on both sides.
        prop_assert_eq!(acc.scheduled_prefill, acc.admitted_prefill);
        prop_assert_eq!(acc.scheduled_decode, acc.admitted_decode);

        // Per-record conservation, by discipline.
        let records = queue.drain_completed();
        let rec_prefill: u64 =
            records.iter().map(|r| r.prefill_scheduled as u64).sum();
        let rec_decode: u64 =
            records.iter().map(|r| r.decode_scheduled as u64).sum();
        prop_assert_eq!(rec_prefill, acc.scheduled_prefill);
        prop_assert_eq!(rec_decode, acc.scheduled_decode);
        for r in &records {
            match mode {
                SchedulingMode::PrefillOnly => {
                    prop_assert_eq!(r.prefill_scheduled, r.input_len);
                    prop_assert_eq!(r.decode_scheduled, 0);
                }
                SchedulingMode::DecodeOnly => {
                    prop_assert_eq!(r.prefill_scheduled, 0);
                    prop_assert_eq!(r.decode_scheduled, r.output_len);
                }
                SchedulingMode::Hybrid => {
                    prop_assert_eq!(r.prefill_scheduled, r.input_len);
                    prop_assert_eq!(r.decode_scheduled, r.output_len);
                }
            }
        }
        // Completed + rejected covers every request that was offered
        // (small lengths vs budget ≥ 64 mean nothing is still in flight).
        prop_assert_eq!(
            records.len() as u64 + queue.rejected(),
            requests.len() as u64
        );
    }

    /// Lifecycle monotonicity: arrival ≤ admission ≤ first token ≤ finish,
    /// hence TTFT ≤ end-to-end latency and a non-negative queueing delay.
    #[test]
    fn completed_lifecycles_are_monotone(
        seed in 0u64..400,
        count in 1usize..24,
        mode_tag in 0u8..3,
    ) {
        let requests = random_requests(seed, count);
        let mut queue = Queue::new(mode_of(mode_tag), 48, 6, u64::MAX);
        drive(&mut queue, &requests, u64::MAX);
        let records = queue.drain_completed();
        prop_assert_eq!(records.len(), requests.len());
        for r in records {
            prop_assert!(r.arrival <= r.admitted, "{} > {}", r.arrival, r.admitted);
            prop_assert!(r.admitted <= r.first_token);
            prop_assert!(r.first_token <= r.finish);
            prop_assert!(r.ttft() <= r.e2e_latency());
            prop_assert!(r.queueing_delay() >= 0.0);
            if let Some(tpot) = r.tpot() {
                prop_assert!(tpot >= 0.0);
            }
        }
    }

    /// Batch composition is invariant under request-id relabeling: ids are
    /// opaque labels, so re-tagging the same arrival sequence must produce
    /// identical per-iteration shapes and identical lifecycle timings.
    #[test]
    fn composition_invariant_under_relabeling(
        seed in 0u64..400,
        count in 1usize..24,
        mode_tag in 0u8..3,
        id_offset in 1u64..1_000_000,
    ) {
        let requests = random_requests(seed, count);
        let mut relabeled = requests.clone();
        for r in &mut relabeled {
            // Relabel: shift and reverse the id space.
            r.id = moentwine::workload::RequestId(id_offset + (count as u64 - r.id.0));
        }
        let mut q1 = Queue::new(mode_of(mode_tag), 48, 6, 256);
        let b1 = drive(&mut q1, &requests, 256);
        let mut q2 = Queue::new(mode_of(mode_tag), 48, 6, 256);
        let b2 = drive(&mut q2, &relabeled, 256);

        prop_assert_eq!(b1.len(), b2.len());
        for (x, y) in b1.iter().zip(&b2) {
            prop_assert_eq!(x.prefill_tokens, y.prefill_tokens);
            prop_assert_eq!(x.decode_tokens, y.decode_tokens);
            prop_assert_eq!(x.avg_context, y.avg_context);
            prop_assert_eq!(x.phase, y.phase);
            // Entry-by-entry, everything but the label matches.
            prop_assert_eq!(x.requests.len(), y.requests.len());
            for (ex, ey) in x.requests.iter().zip(&y.requests) {
                prop_assert_eq!(ex.prefill_tokens, ey.prefill_tokens);
                prop_assert_eq!(ex.decode_tokens, ey.decode_tokens);
            }
        }
        // Identical lifecycle timings record-by-record (completion order is
        // deterministic, labels aside).
        let r1 = q1.drain_completed();
        let r2 = q2.drain_completed();
        prop_assert_eq!(r1.len(), r2.len());
        for (x, y) in r1.iter().zip(&r2) {
            prop_assert_eq!(x.input_len, y.input_len);
            prop_assert_eq!(x.output_len, y.output_len);
            prop_assert_eq!(x.arrival, y.arrival);
            prop_assert_eq!(x.admitted, y.admitted);
            prop_assert_eq!(x.first_token, y.first_token);
            prop_assert_eq!(x.finish, y.finish);
        }
    }
}
