//! Cross-crate invariants pinned directly to numbers or claims in the
//! paper.

use moentwine::core::heatmap::phase_heatmaps;
use moentwine::model::Precision;
use moentwine::prelude::*;

fn mesh(n: u16) -> Topology {
    Mesh::new(n, PlatformParams::dojo_like()).build()
}

#[test]
fn fig8_ftd_hop_counts() {
    // Paper Fig. 8: baseline 3×3-area FTDs average 2.7 hops; ER-Mapping
    // 2×2-area FTDs average 1.3 hops.
    let topo = mesh(4);
    let dims = topo.mesh_dims().unwrap();
    let baseline = BaselineMapping::new(dims, TpShape::new(2, 2))
        .unwrap()
        .plan();
    let er = ErMapping::new(dims, TpShape::new(2, 2)).unwrap().plan();
    assert!((baseline.average_ftd_hops(&topo) - 8.0 / 3.0).abs() < 1e-9);
    assert!((er.average_ftd_hops(&topo) - 4.0 / 3.0).abs() < 1e-9);
}

#[test]
fn fig8_ftd_intersections_eliminated() {
    let topo = mesh(4);
    let dims = topo.mesh_dims().unwrap();
    let baseline = BaselineMapping::new(dims, TpShape::new(2, 2))
        .unwrap()
        .plan();
    let er = ErMapping::new(dims, TpShape::new(2, 2)).unwrap().plan();
    assert!(baseline.ftd_intersections(&topo) > 0);
    assert_eq!(er.ftd_intersections(&topo), 0);
}

#[test]
fn table1_expert_sizes() {
    // DeepSeek-V2's true dimensions give 22.5 MiB, which the paper rounds
    // to 23 MB; allow that rounding.
    let expected = [42.0, 18.0, 23.0, 189.0, 288.0];
    for (model, mib) in ModelConfig::evaluation_suite().iter().zip(expected) {
        let measured = model.expert_bytes(Precision::Int8) / (1024.0 * 1024.0);
        assert!(
            (measured - mib).abs() <= 0.5,
            "{}: {measured} MiB != {mib}",
            model.name
        );
    }
}

#[test]
fn section4_er_mapping_algorithm_shapes() {
    // Fig. 10(a): FTD.shape = (a, b), FTD.num = (TPx, TPy),
    // TPGroup.num = (a, b).
    for (n, tpx, tpy) in [(4u16, 2u16, 2u16), (6, 2, 3), (8, 4, 2)] {
        let topo = mesh(n);
        let dims = topo.mesh_dims().unwrap();
        let plan = ErMapping::new(dims, TpShape::new(tpx, tpy)).unwrap().plan();
        let a = (n / tpx) as usize;
        let b = (n / tpy) as usize;
        assert_eq!(plan.num_groups(), a * b, "n={n} tp=({tpx},{tpy})");
        assert_eq!(plan.ftds().len(), (tpx * tpy) as usize);
        for ftd in plan.ftds() {
            assert_eq!(ftd.area(&topo), a * b);
            assert_eq!(ftd.len(), plan.num_groups());
        }
    }
}

#[test]
fn fig11_complementarity_improves_under_er() {
    let topo = mesh(4);
    let table = RouteTable::build(&topo);
    let dims = topo.mesh_dims().unwrap();
    let er = ErMapping::new(dims, TpShape::new(2, 2)).unwrap().plan();
    let baseline = BaselineMapping::new(dims, TpShape::new(2, 2))
        .unwrap()
        .plan();
    let hm_er = phase_heatmaps(&topo, &table, &er, 256, 8, 8192.0, 64);
    let hm_base = phase_heatmaps(&topo, &table, &baseline, 256, 8, 8192.0, 64);
    assert!(hm_er.complementarity() > 0.5);
    assert!(hm_er.complementarity() >= hm_base.complementarity());
}

#[test]
fn section3_ed_ratio_improves_per_device_performance() {
    // Fig. 4's monotonic claim via the roofline: decode MoE time per device
    // falls as EP rises because resident-expert weight traffic shrinks.
    let model = ModelConfig::deepseek_v3();
    let cost = moentwine::model::CostModel::new(DeviceSpec::b200());
    let time_at = |ep: usize| {
        cost.moe_device_time(&model, 64.0, model.num_experts as f64 / ep as f64)
            .total()
    };
    assert!(time_at(8) > time_at(32));
    assert!(time_at(32) > time_at(72));
    assert!(time_at(72) > time_at(256));
}

#[test]
fn section2_wsc_bandwidth_exceeds_nvlink() {
    // §II-B: wafer links deliver several-fold NVLink bandwidth.
    let p = PlatformParams::dojo_like();
    assert!(p.on_wafer_bw / p.nvlink_bw > 4.0);
}
