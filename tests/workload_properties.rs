//! Property-based tests for the workload realism layer: the thinning
//! arrival sampler (monotonicity, empirical-rate fidelity, behaviour as
//! the diurnal amplitude approaches its open bound) and per-tenant-class
//! request conservation through the serving queue and the engine.

use proptest::prelude::*;

use moentwine::prelude::*;
use moentwine::workload::serving::ServingQueue as Queue;
use moentwine::workload::{ArrivalProcess, ClassPolicy, RequestGenerator, WorkloadError};

/// A generous statistical tolerance: |observed − expected| ≤ 6σ + slack,
/// with σ = √expected (Poisson). Seeds are fixed per case, so this cannot
/// flake — it would only trip on a real sampler bias.
fn close_to_poisson(observed: f64, expected: f64) -> bool {
    (observed - expected).abs() <= 6.0 * expected.sqrt() + 3.0
}

proptest! {
    /// Thinning arrivals are strictly increasing and finite for any valid
    /// diurnal shape, including amplitudes just below the open bound at 1.
    #[test]
    fn diurnal_arrivals_strictly_increase(
        seed in 0u64..200,
        rate in 1.0f64..5.0e4,
        amp_milli in 0u32..1000,
        period in 0.001f64..100.0,
    ) {
        let amplitude = f64::from(amp_milli) / 1000.0; // [0, 0.999]
        let mut p = ArrivalProcess::try_new(rate, amplitude, period, seed)
            .expect("valid diurnal shape");
        let mut last = 0.0;
        for _ in 0..300 {
            let t = p.next_arrival();
            prop_assert!(t.is_finite());
            prop_assert!(t > last, "arrivals must strictly increase: {t} after {last}");
            last = t;
        }
    }

    /// Phase-schedule arrivals are strictly increasing, and the sampler's
    /// instantaneous rate honours the configured phase factors exactly.
    #[test]
    fn phase_arrivals_strictly_increase_and_rate_matches_schedule(
        seed in 0u64..200,
        rate in 10.0f64..1.0e4,
        d1 in 0.01f64..2.0,
        d2 in 0.01f64..2.0,
        f1 in 0.0f64..4.0,
        f2 in 0.1f64..4.0,
    ) {
        let phases = vec![
            Phase { duration: d1, rate_factor: f1 },
            Phase { duration: d2, rate_factor: f2 },
        ];
        let mut p = ArrivalProcess::try_with_phases(rate, phases, seed)
            .expect("valid phase schedule");
        // rate_at is piecewise-constant over the cycling schedule.
        let cycle = d1 + d2;
        for k in 0..8 {
            let in_p1 = k as f64 * cycle + d1 * 0.5;
            let in_p2 = k as f64 * cycle + d1 + d2 * 0.5;
            prop_assert!((p.rate_at(in_p1) - rate * f1).abs() < 1e-9 * rate.max(1.0));
            prop_assert!((p.rate_at(in_p2) - rate * f2).abs() < 1e-9 * rate.max(1.0));
        }
        let mut last = 0.0;
        for _ in 0..300 {
            let t = p.next_arrival();
            prop_assert!(t.is_finite());
            prop_assert!(t > last);
            last = t;
        }
    }

    /// Over whole diurnal periods the sinusoid integrates away, so the
    /// empirical arrival count must match `base_rate × horizon` — the
    /// thinning sampler may not bias the delivered rate at any amplitude,
    /// including amplitudes approaching the open bound at 1.
    #[test]
    fn empirical_diurnal_rate_matches_base_rate(
        seed in 0u64..50,
        amp_milli in 0u32..1000,
    ) {
        let base_rate = 2.0e3;
        let period = 0.5;
        let periods = 8.0;
        let amplitude = f64::from(amp_milli) / 1000.0;
        let mut p = ArrivalProcess::try_new(base_rate, amplitude, period, seed)
            .expect("valid diurnal shape");
        let horizon = periods * period;
        let mut count = 0u64;
        loop {
            if p.next_arrival() > horizon {
                break;
            }
            count += 1;
        }
        let expected = base_rate * horizon;
        prop_assert!(
            close_to_poisson(count as f64, expected),
            "amplitude {amplitude}: {count} arrivals over {horizon} s, expected ≈ {expected}"
        );
    }

    /// Over whole phase cycles the empirical count must match the
    /// schedule's mean rate `base_rate × Σ(duration × factor) / cycle`.
    #[test]
    fn empirical_phase_rate_matches_schedule_mean(
        seed in 0u64..50,
        f1 in 0.0f64..3.0,
        f2 in 0.5f64..3.0,
    ) {
        let base_rate = 4.0e3;
        let (d1, d2) = (0.3, 0.2);
        let phases = vec![
            Phase { duration: d1, rate_factor: f1 },
            Phase { duration: d2, rate_factor: f2 },
        ];
        let mut p = ArrivalProcess::try_with_phases(base_rate, phases, seed)
            .expect("valid phase schedule");
        let cycles = 10.0;
        let horizon = cycles * (d1 + d2);
        let mut count = 0u64;
        loop {
            if p.next_arrival() > horizon {
                break;
            }
            count += 1;
        }
        let expected = base_rate * cycles * (d1 * f1 + d2 * f2);
        prop_assert!(
            close_to_poisson(count as f64, expected),
            "{count} arrivals over {horizon} s, expected ≈ {expected}"
        );
    }
}

/// The diurnal amplitude bound is open at 1: 1 − ε is accepted, 1 and
/// anything beyond (or below 0, or non-finite) is a typed error — the
/// validation the legacy `assert!` constructors used to hide behind a
/// panic.
#[test]
fn amplitude_bound_is_open_at_one() {
    assert!(ArrivalProcess::try_new(100.0, 1.0 - 1e-9, 60.0, 7).is_ok());
    for bad in [1.0, 1.5, -0.1, f64::NAN, f64::INFINITY] {
        assert!(matches!(
            ArrivalProcess::try_new(100.0, bad, 60.0, 7),
            Err(WorkloadError::AmplitudeOutOfRange { .. })
        ));
    }
    // And the sampler stays sound arbitrarily close to the bound.
    let mut p = ArrivalProcess::try_new(1.0e4, 1.0 - 1e-12, 0.01, 11).expect("ok");
    let mut last = 0.0;
    for _ in 0..2000 {
        let t = p.next_arrival();
        assert!(t.is_finite() && t > last);
        last = t;
    }
}

/// Two-tenant workload profile used by the conservation properties:
/// 3:1 interactive:batch with a tight interactive shed deadline.
fn two_tenant_classes(shed_after: f64) -> Vec<ClassSpec> {
    vec![
        ClassSpec::interactive()
            .with_weight(3.0)
            .with_shed_after(shed_after),
        ClassSpec::batch(),
    ]
}

proptest! {
    /// Per-class request conservation through the serving queue: every
    /// request a class offered is either completed, rejected at admission,
    /// shed past its deadline, still waiting, or still resident — for any
    /// scheduling mode, queue sizing, and arrival stream.
    #[test]
    fn per_class_conservation_through_queue_drives(
        seed in 0u64..150,
        rate in 5.0e2f64..2.0e4,
        mode_tag in 0u8..3,
        max_active in 2usize..12,
        budget in 128u64..2048,
        shed_after in 0.05f64..2.0,
    ) {
        let mode = match mode_tag % 3 {
            0 => SchedulingMode::PrefillOnly,
            1 => SchedulingMode::DecodeOnly,
            _ => SchedulingMode::Hybrid,
        };
        let classes = two_tenant_classes(shed_after);
        let profile = WorkloadProfile {
            arrivals: ArrivalSpec::default(),
            classes: classes.clone(),
        };
        let mut generator = RequestGenerator::try_from_profile(
            &profile,
            rate,
            vec![(Scenario::Chat, 1.0)],
            seed,
            seed ^ 0xC0FFEE,
        )
        .expect("valid profile");
        let mut queue = Queue::new(mode, 256, max_active, budget)
            .with_class_policy(ClassPolicy::from_classes(&classes));

        // Offer a fixed number of generated requests as the clock sweeps
        // past their arrivals, then keep iterating a while (without
        // necessarily draining — conservation must hold mid-flight too).
        let mut offered_total = 0usize;
        let mut pending = generator.next_request();
        let mut now = 0.0f64;
        for _ in 0..600 {
            while offered_total < 120 {
                match pending.take() {
                    Some(r) if r.arrival <= now => {
                        queue.offer(r);
                        offered_total += 1;
                        pending = generator.next_request();
                    }
                    other => {
                        pending = other;
                        break;
                    }
                }
            }
            queue.next_batch(now);
            now += 0.05;
            queue.finish_iteration(now);
        }

        for &class in &[RequestClass::Interactive, RequestClass::Batch] {
            let completed = queue
                .completed()
                .iter()
                .filter(|r| r.class == class)
                .count() as u64;
            let accounted = completed
                + queue.rejected_for(class)
                + queue.shed_for(class)
                + queue.queue_depth_for(class) as u64
                + queue.num_active_for(class) as u64;
            prop_assert_eq!(
                queue.offered_for(class),
                accounted,
                "class {:?}: offered {} != accounted {}",
                class,
                queue.offered_for(class),
                accounted
            );
        }
        // Totals line up with the per-class split.
        let offered_sum: u64 = [RequestClass::Interactive, RequestClass::Batch]
            .iter()
            .map(|&c| queue.offered_for(c))
            .sum();
        prop_assert_eq!(offered_sum, offered_total as u64);
    }

    /// Per-class conservation through a full engine run: the per-class
    /// summary sections partition the aggregate counters, and nothing the
    /// scheduler routed vanishes — completed + rejected + shed + still
    /// in flight equals what the generator injected, per class.
    #[test]
    fn per_class_conservation_through_engine_runs(
        seed in 0u64..12,
        iterations in 150usize..350,
    ) {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 2)
            .unwrap()
            .plan();
        let config = EngineConfig::new(ModelConfig::tiny())
            .with_seed(seed)
            .with_batch(BatchMode::Scheduled {
                mode: SchedulingMode::Hybrid,
                max_batch_tokens: 1024,
                max_active: 32,
                request_rate: 8.0e3,
                iteration_period: 0.02,
            })
            .with_workload_profile(WorkloadProfile {
                arrivals: ArrivalSpec::default(),
                classes: two_tenant_classes(0.5),
            });
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        engine.run(iterations);
        let s = engine.serving_summary();
        prop_assert_eq!(s.classes.len(), 2);
        let by_class_completed: usize = s.classes.iter().map(|c| c.completed).sum();
        let by_class_rejected: u64 = s.classes.iter().map(|c| c.rejected).sum();
        let by_class_shed: u64 = s.classes.iter().map(|c| c.shed).sum();
        prop_assert_eq!(by_class_completed, s.completed);
        prop_assert_eq!(by_class_rejected, s.admission_rejects);
        prop_assert_eq!(by_class_shed, s.shed);
    }
}
