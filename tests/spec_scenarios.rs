//! Integration tests for the declarative scenario layer: the checked-in
//! example files stay canonical and runnable, and spec-driven runs are
//! exactly the hand-constructed ones (engine equivalence is pinned
//! bit-for-bit against the golden snapshot in `tests/golden_trace.rs`; the
//! fleet equivalence lives here).

use std::path::PathBuf;

use moentwine::prelude::*;
use moentwine::spec::Scenario as SpecScenario;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios")
}

fn example_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("examples/scenarios exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

/// Every checked-in example parses, carries the v1 schema, is in canonical
/// form (re-serializing reproduces the file byte for byte — regenerate
/// with `cargo run --example gen_scenarios` after codec changes), and
/// materializes a runnable scenario.
#[test]
fn example_specs_are_canonical_and_build() {
    let files = example_files();
    assert!(
        files.len() >= 4,
        "expected ≥ 4 example scenario files, found {files:?}"
    );
    let mut names = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path).expect("read example");
        let spec = ScenarioSpec::from_json_text(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            spec.to_json_text(),
            text,
            "{}: not in canonical form (run `cargo run --example gen_scenarios`)",
            path.display()
        );
        // Sweep specs build point-by-point (build() rejects a raw sweep).
        for (label, point) in spec
            .expand_sweep()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
        {
            let scenario: SpecScenario = point
                .build()
                .unwrap_or_else(|e| panic!("{} [{label}]: {e}", path.display()));
            scenario.engine_config().expect("engine config");
        }
        names.push(spec.name.clone());
        assert_eq!(
            path.file_stem().and_then(|s| s.to_str()),
            Some(spec.name.as_str()),
            "file stem must match the scenario name"
        );
    }
    // The acceptance set: single-wafer serving, multi-wafer, DGX baseline,
    // a multi-replica fleet, the 10M-request streaming mega-fleet, the
    // failure-injection chaos fleet, the workload-realism pair (trace
    // replay + bursty multi-tenant SLO classes), the disaggregated
    // prefill/decode fleet, and the speculative-dispatch burst fleet.
    for required in [
        "single_wafer_serving",
        "multi_wafer",
        "dgx_baseline",
        "fleet_p2c",
        "mega_fleet",
        "chaos_fleet",
        "trace_replay",
        "bursty_tenants",
        "disagg_fleet",
        "speculative_fleet",
    ] {
        assert!(names.iter().any(|n| n == required), "missing {required}");
    }
}

/// A fleet scenario run through the spec layer equals the hand-constructed
/// fleet exactly (same seeds, same routing, same summaries).
#[test]
fn spec_driven_fleet_matches_hand_construction() {
    let engine_spec = EngineSpec::default()
        .with_seed(23)
        .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
        .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 128, 0.0)))
        .with_kv_hbm_fraction(1.0e-3);
    let spec = ScenarioSpec::new("fleet_equiv", PlatformSpec::wsc(4))
        .with_mapping(MappingSpec::er(4))
        .with_model(ModelSpec::preset("tiny"))
        .with_engine(engine_spec.clone())
        .with_fleet(FleetSpec::new(3, RouterPolicy::LeastQueueDepth, 6.0e3))
        .with_iterations(150);
    let outcome = spec.build().unwrap().run().unwrap();
    let from_spec = outcome.as_fleet().unwrap();

    // Hand-construction of the identical deployment.
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let template = engine_spec.engine_config(ModelConfig::tiny()).unwrap();
    let config = FleetConfig::new(3, RouterPolicy::LeastQueueDepth, 6.0e3, template);
    let mut fleet = Fleet::new(&topo, &table, &plan, config);
    fleet.run(150);
    let by_hand = fleet.summary();

    assert_eq!(*from_spec, by_hand);
}

/// The example fleet spec runs deterministically: two builds of the same
/// file produce identical summaries.
#[test]
fn example_fleet_spec_is_deterministic() {
    let text = std::fs::read_to_string(scenarios_dir().join("fleet_p2c.json")).unwrap();
    let spec = ScenarioSpec::from_json_text(&text).unwrap();
    // Cap for test runtime; determinism is what's under test.
    let spec = spec.with_iterations(80);
    let a = spec.build().unwrap().run().unwrap();
    let b = spec.build().unwrap().run().unwrap();
    assert_eq!(a, b);
}

/// Spec-level misconfigurations surface as typed `ConfigError`s through
/// the whole stack (file text → spec → build).
#[test]
fn malformed_scenarios_fail_with_typed_errors() {
    assert!(matches!(
        ScenarioSpec::from_json_text("{"),
        Err(ConfigError::Json(_))
    ));
    assert!(matches!(
        ScenarioSpec::from_json_text(r#"{"schema": "moentwine/other/v1"}"#),
        Err(ConfigError::SchemaMismatch { .. })
    ));
    // An engine knob violation is caught at build() with the exact variant.
    let mut spec = ScenarioSpec::new("bad", PlatformSpec::wsc(4));
    spec.engine.load_ema = 0.0;
    assert_eq!(
        spec.build().unwrap_err(),
        ConfigError::LoadEmaOutOfRange { value: 0.0 }
    );
    // And an impossible mapping is a typed mapping error.
    let spec = ScenarioSpec::new("bad-tp", PlatformSpec::wsc(4)).with_mapping(MappingSpec::er(5));
    assert!(matches!(spec.build(), Err(ConfigError::Mapping(_))));
}
