//! Fleet event-scheduler and streaming-summary contracts (DESIGN.md §10):
//!
//! * **Round-driven equivalence** — under `run(rounds)` the event-heap
//!   scheduler executes each round as a heap-ordered wave over independent
//!   replicas, so its `FleetSummary` is bit-identical to the lock-step
//!   reference for every policy, rate, seed, and replica-pool interleaving.
//! * **Streaming error bounds** — P² percentile sketches track the exact
//!   oracle within documented rank windows: p50 inside the exact
//!   [p35, p65], p95 inside [p85, p100], p99 inside [p90, p100], and
//!   bit-exactly while ≤ 64 samples (the warm-up prefix).
//! * **Bounded memory** — the checked-in 10M-request mega-fleet scenario
//!   retains O(replicas) request records under streaming summaries.

use std::path::PathBuf;

use moentwine::prelude::*;
use proptest::prelude::*;

fn engine_template(seed: u64, summary: SummaryMode) -> EngineConfig {
    let mut config = EngineConfig::new(ModelConfig::tiny())
        .with_seed(seed)
        .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
        .with_batch(BatchMode::External {
            mode: SchedulingMode::Hybrid,
            max_batch_tokens: 2048,
            max_active: 128,
        })
        .with_summary(summary);
    config.kv_hbm_fraction = 1.0e-3;
    config
}

struct Fixture {
    topo: Topology,
    table: RouteTable,
    plan: MappingPlan,
}

fn fixture() -> Fixture {
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    Fixture { topo, table, plan }
}

fn policy_of(tag: u8) -> RouterPolicy {
    RouterPolicy::all()[tag as usize % RouterPolicy::all().len()]
}

/// A legal but adversarial replica pool: odd-indexed jobs first.
struct ScrambledPool;
impl ReplicaPool for ScrambledPool {
    fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
        let mut deferred = Vec::new();
        for (i, job) in jobs.into_iter().enumerate() {
            if i % 2 == 0 {
                deferred.push(job);
            } else {
                job();
            }
        }
        for job in deferred {
            job();
        }
    }
}

/// Nearest-rank percentile of an unsorted sample set (the exact oracle's
/// definition, re-derived here so the test does not share code with the
/// implementation under test).
fn nearest_rank(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if samples.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (samples.len() as f64 - 1.0)).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

proptest! {
    /// Event-order invariance: for round-driven runs the event-heap
    /// scheduler and the lock-step reference produce bit-identical
    /// summaries across random policies, rates, seeds, round counts, and
    /// scrambled replica-step interleavings.
    #[test]
    fn schedulers_and_pools_agree_bit_for_bit_on_rounds(
        seed in 0u64..1_000,
        policy_tag in 0u8..8,
        replicas in 1usize..5,
        rate_kilo in 2u32..16,
        rounds in 40usize..160,
    ) {
        let f = fixture();
        let rate = rate_kilo as f64 * 1.0e3;
        let policy = policy_of(policy_tag);
        let run = |scheduler: FleetScheduler, pool: &dyn ReplicaPool| {
            let config = FleetConfig::new(
                replicas,
                policy,
                rate,
                engine_template(seed, SummaryMode::Exact),
            )
            .with_scheduler(scheduler);
            let mut fleet = Fleet::new(&f.topo, &f.table, &f.plan, config);
            fleet.run_with(rounds, pool);
            fleet.summary()
        };
        let lockstep = run(FleetScheduler::Lockstep, &SerialReplicaPool);
        let event = run(FleetScheduler::EventHeap, &SerialReplicaPool);
        let event_scrambled = run(FleetScheduler::EventHeap, &ScrambledPool);
        prop_assert_eq!(&lockstep, &event);
        prop_assert_eq!(&event, &event_scrambled);
    }

    /// Streaming-vs-exact differential: beyond the bit-exact warm-up
    /// prefix, every sketched percentile stays inside its documented rank
    /// window of the exact sample distribution.
    #[test]
    fn streaming_percentiles_stay_inside_rank_windows(
        seed in 0u64..1_000,
        iterations in 600usize..1_000,
        rate_hundred_k in 1u32..3,
    ) {
        let f = fixture();
        let rate = rate_hundred_k as f64 * 1.0e5;
        let run = |summary: SummaryMode| {
            let mut config = EngineConfig::new(ModelConfig::tiny())
                .with_seed(seed)
                .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
                .with_batch(BatchMode::Scheduled {
                    mode: SchedulingMode::Hybrid,
                    max_batch_tokens: 2048,
                    max_active: 128,
                    request_rate: rate,
                    iteration_period: 0.02,
                })
                .with_summary(summary);
            config.kv_hbm_fraction = 1.0e-3;
            let mut engine = InferenceEngine::new(&f.topo, &f.table, &f.plan, config);
            engine.run(iterations);
            engine
        };
        let exact = run(SummaryMode::Exact);
        let streaming = run(SummaryMode::Streaming);
        // Identical trajectories: the summary mode must not perturb the
        // simulation itself.
        let exact_summary = exact.serving_summary();
        let streaming_summary = streaming.serving_summary();
        prop_assert_eq!(exact_summary.completed, streaming_summary.completed);
        prop_assert_eq!(exact_summary.sim_seconds, streaming_summary.sim_seconds);

        let records = exact.completed_requests();
        let mut ttft: Vec<f64> = records.iter().map(RequestRecord::ttft).collect();
        let mut e2e: Vec<f64> = records.iter().map(RequestRecord::e2e_latency).collect();
        // Rank windows (exact while ≤ 64 samples; the windows subsume
        // that case, so one check covers both regimes).
        let windows = [
            (streaming_summary.ttft_p50, nearest_rank(&mut ttft, 35.0), nearest_rank(&mut ttft, 65.0)),
            (streaming_summary.ttft_p95, nearest_rank(&mut ttft, 85.0), nearest_rank(&mut ttft, 100.0)),
            (streaming_summary.ttft_p99, nearest_rank(&mut ttft, 90.0), nearest_rank(&mut ttft, 100.0)),
            (streaming_summary.e2e_p50, nearest_rank(&mut e2e, 35.0), nearest_rank(&mut e2e, 65.0)),
            (streaming_summary.e2e_p99, nearest_rank(&mut e2e, 90.0), nearest_rank(&mut e2e, 100.0)),
        ];
        for (est, low, high) in windows {
            prop_assert!(
                (low..=high).contains(&est),
                "sketch estimate {est} outside exact rank window [{low}, {high}] \
                 over {} samples", records.len()
            );
        }
        // Within the warm-up prefix the contract sharpens to bit-equality.
        if records.len() <= 64 {
            prop_assert_eq!(exact_summary.ttft_p50, streaming_summary.ttft_p50);
            prop_assert_eq!(exact_summary.ttft_p99, streaming_summary.ttft_p99);
            prop_assert_eq!(exact_summary.e2e_p99, streaming_summary.e2e_p99);
        }
    }

    /// `run_until` sanity: both schedulers reach the horizon, conserve the
    /// arrival stream ordering (event-heap routes no more than lock-step,
    /// which polls arrivals every round), and the event heap prices far
    /// fewer replica steps than `rounds × replicas`.
    #[test]
    fn run_until_reaches_horizon_and_skips_idle_work(
        seed in 0u64..1_000,
        replicas in 2usize..6,
        rate_kilo in 1u32..8,
    ) {
        let f = fixture();
        let horizon = 1.0e-3;
        let run = |scheduler: FleetScheduler| {
            let config = FleetConfig::new(
                replicas,
                RouterPolicy::PowerOfTwoChoices,
                rate_kilo as f64 * 1.0e3,
                engine_template(seed, SummaryMode::Streaming),
            )
            .with_scheduler(scheduler);
            let mut fleet = Fleet::new(&f.topo, &f.table, &f.plan, config);
            fleet.run_until(horizon);
            (fleet.rounds(), fleet.summary())
        };
        let (lockstep_rounds, lockstep) = run(FleetScheduler::Lockstep);
        let (event_steps, event) = run(FleetScheduler::EventHeap);
        prop_assert!(lockstep.sim_seconds >= horizon);
        prop_assert!(event.sim_seconds >= horizon);
        // The lock-step reference pays one step per replica per round; the
        // event heap only pays for causal work.
        prop_assert!(event_steps <= lockstep_rounds * replicas as u64);
        let routed_e: u64 = event.routed.iter().sum();
        let routed_l: u64 = lockstep.routed.iter().sum();
        prop_assert!(routed_e <= routed_l);
    }
}

/// The checked-in mega-fleet scenario holds its O(1)-memory contract: run
/// (trimmed) through the same fleet layer the scenario bin drives, the
/// streaming fleet retains at most one record slot per replica while still
/// completing requests at scale.
#[test]
fn mega_fleet_scenario_retains_o_replicas_records() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios/mega_fleet.json");
    let text = std::fs::read_to_string(&path).expect("mega_fleet.json is checked in");
    let spec = ScenarioSpec::from_json_text(&text).expect("parses");
    let points = spec.expand_sweep().expect("sweep expands");
    assert_eq!(points.len(), 2, "two rate points");
    for (label, point) in points {
        let fleet_spec = point.fleet.clone().expect("mega_fleet is a fleet scenario");
        assert!(fleet_spec.replicas >= 64, "{label}: ≥64 replicas");
        assert_eq!(fleet_spec.scheduler, FleetScheduler::EventHeap);
        match &point.engine.batch {
            BatchSpec::Serving(s) => assert_eq!(s.summary, SummaryMode::Streaming),
            other => panic!("{label}: expected serving batch, got {other:?}"),
        }
        // ≥10M simulated requests at full scale: the largest point's rate
        // sustains the target over the spec's 300k-round horizon (~12 µs
        // of simulated time per round, pinned loosely here).
        assert_eq!(point.iterations, 300_000);

        // Run a trimmed slice through the real fleet and pin the memory
        // contract the full run relies on.
        let f = fixture();
        let engine = point
            .engine
            .engine_config(ModelConfig::tiny())
            .expect("valid engine template");
        let config = fleet_spec.fleet_config(engine);
        let mut fleet = Fleet::new(&f.topo, &f.table, &f.plan, config);
        fleet.run(120);
        let summary = fleet.summary();
        assert!(
            summary.aggregate.completed > 0,
            "{label}: trimmed run must complete requests"
        );
        assert!(
            fleet.retained_records() <= fleet_spec.replicas,
            "{label}: retained {} records on {} replicas",
            fleet.retained_records(),
            fleet_spec.replicas
        );
    }
}
