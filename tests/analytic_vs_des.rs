//! Validates the analytical bottleneck model against the flow-level DES —
//! the methodological contract of DESIGN.md §5.

use moentwine::collectives::cost::{backend_disagreement, schedule_time};
use moentwine::collectives::{all_to_all_concurrent, ring_all_reduce, Ring, Transfer};
use moentwine::core::comm::{A2aModel, ParallelLayout};
use moentwine::core::placement::ExpertPlacement;
use moentwine::prelude::*;
use moentwine::sim::AnalyticModel;
use moentwine::workload::LayerGating;

fn mesh(n: u16) -> Topology {
    Mesh::new(n, PlatformParams::dojo_like()).build()
}

#[test]
fn ring_all_reduce_exact_agreement() {
    // Phase-synchronous single-bottleneck schedules must match exactly.
    let topo = mesh(4);
    let ring = Ring::new(vec![
        topo.device_at_xy(0, 0).unwrap(),
        topo.device_at_xy(1, 0).unwrap(),
        topo.device_at_xy(1, 1).unwrap(),
        topo.device_at_xy(0, 1).unwrap(),
    ]);
    for bytes in [1.0e3, 1.0e6, 64.0e6] {
        let sched = ring_all_reduce(&topo, &ring, bytes);
        let des = sched.run(&topo).total_time;
        let est = AnalyticModel::new(&topo)
            .estimate_schedule(&sched)
            .total_time;
        assert!(
            (des - est).abs() / des < 1e-9,
            "bytes={bytes}: {des} vs {est}"
        );
    }
}

#[test]
fn mapping_all_reduce_agreement() {
    for (n, tp) in [(4u16, 4usize), (6, 4), (6, 6)] {
        let topo = mesh(n);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), tp)
            .unwrap()
            .plan();
        let sched = plan.all_reduce_schedule(&topo, 2.0e6);
        let des = sched.run(&topo).total_time;
        let est = AnalyticModel::new(&topo)
            .estimate_schedule(&sched)
            .total_time;
        let err = (des - est).abs() / des;
        assert!(err < 0.01, "n={n} tp={tp}: DES {des} vs analytic {est}");
    }
}

#[test]
fn dispatch_a2a_within_bounded_factor() {
    // The analytic estimate is a bottleneck bound: DES can be faster (flows
    // finish at different times, freeing bandwidth) but never catastrophically
    // different. Contract: within 2x either way on realistic patterns.
    let topo = mesh(6);
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let model = ModelConfig::qwen3_235b();
    let placement = ExpertPlacement::balanced(model.num_experts as usize, topo.num_devices(), 1);
    let per = 256 * model.experts_per_token / model.num_experts;
    let gating = LayerGating {
        counts: vec![vec![per.max(1); model.num_experts as usize]; plan.num_groups()],
    };
    let a2a = A2aModel::new(&topo, &table, &plan);
    let token_bytes = model.token_bytes(moentwine::model::Precision::Fp16);
    let est = a2a.estimate(&gating, &placement, token_bytes, 256);

    let transfers: Vec<Transfer> = a2a
        .dispatch_transfers(&gating, &placement, token_bytes)
        .into_iter()
        .map(|(s, d, b)| Transfer::new(s, d, b))
        .collect();
    let des = all_to_all_concurrent(&topo, &transfers)
        .run(&topo)
        .total_time;
    let ratio = des / est.dispatch.total_time;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "DES {des} vs analytic {} (ratio {ratio})",
        est.dispatch.total_time
    );
}

#[test]
fn congestion_model_trait_cross_validates_er_all_reduce() {
    // The mapping-agreement contract, restated through the pluggable
    // backend interface: swapping fidelity via `CongestionBackend` prices
    // the *same* ER all-reduce schedule to within 1% — for every backend in
    // the sweep, with the DES as the reference.
    for (n, tp) in [(4u16, 4usize), (6, 6)] {
        let topo = mesh(n);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), tp)
            .unwrap()
            .plan();
        let sched = plan.all_reduce_schedule(&topo, 2.0e6);
        let des = CongestionBackend::FlowSim.build(&topo);
        for kind in CongestionBackend::all() {
            let candidate = kind.build(&topo);
            let gap = backend_disagreement(candidate.as_ref(), des.as_ref(), &sched);
            assert!(
                gap < 0.01,
                "n={n} tp={tp} {kind}: disagrees by {gap:.4} ({} vs {})",
                schedule_time(candidate.as_ref(), &sched),
                schedule_time(des.as_ref(), &sched)
            );
        }
    }
}

#[test]
fn cached_backend_is_bit_identical_to_flow_sim() {
    // The memoizing tier is a pure decorator: on any schedule — priced cold
    // (miss) or replayed (hit) — the estimate is the DES's own, bit for bit.
    let topo = mesh(6);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let sched = plan.all_reduce_schedule(&topo, 2.0e6);
    let des = CongestionBackend::FlowSim.build(&topo);
    let cached = CongestionBackend::FlowSimCached.build(&topo);
    let reference = des.price_schedule(&sched);
    let cold = cached.price_schedule(&sched);
    let replay = cached.price_schedule(&sched);
    assert_eq!(reference, cold);
    assert_eq!(reference, replay);
}

#[test]
fn engine_scope_backends_within_bounded_factor() {
    // Engine-scope cross-validation: the same inference run priced at both
    // fidelities. All-reduce schedules are phase-synchronous rings (near
    // exact agreement); the all-to-all is a bottleneck bound (DES may be
    // faster, bounded either way).
    let topo = mesh(4);
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let model = ModelConfig {
        name: "tiny".into(),
        total_params_b: 1.0,
        num_layers: 4,
        num_sparse_layers: 4,
        hidden_size: 1024,
        moe_intermediate_size: 512,
        num_experts: 16,
        experts_per_token: 2,
        num_shared_experts: 0,
        num_attention_heads: 8,
        num_kv_heads: 2,
        head_dim: 128,
    };
    let run = |backend: CongestionBackend| {
        let config = EngineConfig::new(model.clone())
            .with_seed(12)
            .with_backend(backend);
        InferenceEngine::new(&topo, &table, &plan, config).run(5)
    };
    let analytic = run(CongestionBackend::Analytic);
    let des = run(CongestionBackend::FlowSim);
    let ar_err = (analytic.mean_all_reduce - des.mean_all_reduce).abs() / des.mean_all_reduce;
    assert!(ar_err < 0.02, "all-reduce disagreement {ar_err:.4}");
    let a2a_ratio = des.mean_all_to_all / analytic.mean_all_to_all;
    assert!(
        (0.2..=1.5).contains(&a2a_ratio),
        "a2a ratio {a2a_ratio}: DES {} vs analytic {}",
        des.mean_all_to_all,
        analytic.mean_all_to_all
    );

    // The cached DES must not change any reported engine figure beyond
    // 1e-9 relative to the uncached DES on the same sweep.
    let cached = run(CongestionBackend::FlowSimCached);
    let figures = [
        (des.mean_iteration_time, cached.mean_iteration_time),
        (des.mean_all_reduce, cached.mean_all_reduce),
        (des.mean_all_to_all, cached.mean_all_to_all),
        (des.mean_load_ratio, cached.mean_load_ratio),
    ];
    for (i, (d, c)) in figures.into_iter().enumerate() {
        assert!(
            (d - c).abs() <= 1e-9 * d.abs().max(1e-30),
            "figure {i}: flow-sim {d} vs cached {c}"
        );
    }
}

#[test]
fn analytic_is_conservative_on_uniform_mesh_a2a() {
    // For uniform all-to-all the bottleneck link is continuously busy, so
    // the analytic *serialization* term is a strict lower bound on DES (the
    // latency term is not — flows pay their own, shorter, route latencies).
    let topo = mesh(4);
    let transfers: Vec<Transfer> =
        moentwine::collectives::alltoall::uniform_all_to_all_matrix(&topo, 1.0e6);
    let des = all_to_all_concurrent(&topo, &transfers)
        .run(&topo)
        .total_time;
    let est = AnalyticModel::new(&topo).estimate_flows(
        &transfers
            .iter()
            .map(|t| moentwine::sim::FlowSpec::new(topo.route(t.src, t.dst), t.bytes))
            .collect::<Vec<_>>(),
    );
    assert!(
        des >= est.serialization_time * 0.999,
        "DES {des} beats the serialization bound {}",
        est.serialization_time
    );
    assert!(
        des <= est.total_time * 2.0,
        "DES {des} too far above estimate {}",
        est.total_time
    );
}

#[test]
fn serving_metrics_cross_validate_across_backends() {
    // The serving extension of the cross-validation contract: the same
    // request-level serving run priced at every fidelity tier.
    //
    // * FlowSimCached vs FlowSim: pricing is bit-identical per schedule, so
    //   every serving percentile and the goodput must agree to 1e-9
    //   relative — the cache must never change what a request experienced.
    // * Analytic vs FlowSim: iteration durations differ by the bounded
    //   pricing gap (a2a within [0.2, 1.5] at engine scope, all-reduce
    //   within 2%), and serving latencies are sums of iteration durations
    //   plus queueing that depends on how many arrivals the clock sweeps
    //   in. Documented bound: p50/p99 TTFT and goodput within 3x either
    //   way. Batch composition itself is backend-independent, so completion
    //   *counts* may shift only by arrivals near the horizon.
    let topo = mesh(4);
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let model = ModelConfig {
        name: "tiny".into(),
        total_params_b: 1.0,
        num_layers: 4,
        num_sparse_layers: 4,
        hidden_size: 1024,
        moe_intermediate_size: 512,
        num_experts: 16,
        experts_per_token: 2,
        num_shared_experts: 0,
        num_attention_heads: 8,
        num_kv_heads: 2,
        head_dim: 128,
    };
    let run = |backend: CongestionBackend| {
        let mut config = EngineConfig::new(model.clone())
            .with_seed(77)
            .with_backend(backend)
            .with_workload(moentwine::workload::WorkloadMix::Fixed(
                moentwine::workload::Scenario::Privacy,
            ))
            .with_batch(moentwine::core::engine::BatchMode::Scheduled {
                mode: moentwine::workload::SchedulingMode::Hybrid,
                max_batch_tokens: 2048,
                max_active: 128,
                request_rate: 8.0e3,
                iteration_period: 0.02,
            });
        config.kv_hbm_fraction = 1.0e-3;
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        engine.run(400);
        engine.serving_summary()
    };
    let des = run(CongestionBackend::FlowSim);
    let cached = run(CongestionBackend::FlowSimCached);
    let analytic = run(CongestionBackend::Analytic);
    assert!(des.completed > 0, "scenario must complete requests");

    // Cached tier: ≤ 1e-9 relative drift on every serving figure.
    let figures = [
        ("ttft_p50", des.ttft_p50, cached.ttft_p50),
        ("ttft_p99", des.ttft_p99, cached.ttft_p99),
        ("tpot_p50", des.tpot_p50, cached.tpot_p50),
        ("e2e_p99", des.e2e_p99, cached.e2e_p99),
        ("goodput_rps", des.goodput_rps, cached.goodput_rps),
        (
            "goodput_tokens_per_s",
            des.goodput_tokens_per_s,
            cached.goodput_tokens_per_s,
        ),
    ];
    for (name, d, c) in figures {
        assert!(
            (d - c).abs() <= 1e-9 * d.abs().max(1e-30),
            "{name}: flow-sim {d} vs cached {c}"
        );
    }
    assert_eq!(des.completed, cached.completed);
    assert_eq!(des.admission_rejects, cached.admission_rejects);

    // Analytic tier: within the documented 3x bound either way.
    for (name, d, a) in [
        ("ttft_p50", des.ttft_p50, analytic.ttft_p50),
        ("ttft_p99", des.ttft_p99, analytic.ttft_p99),
        ("goodput_rps", des.goodput_rps, analytic.goodput_rps),
    ] {
        let ratio = a / d;
        assert!(
            (1.0 / 3.0..=3.0).contains(&ratio),
            "{name}: analytic {a} vs flow-sim {d} (ratio {ratio})"
        );
    }
}
