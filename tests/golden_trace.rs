//! Golden-trace regression suite: the engine runs a fixed serving scenario
//! at a fixed seed for each `CongestionBackend` tier, and the resulting
//! `RunSummary` + `ServingSummary` must match the snapshot checked in under
//! `tests/golden/<backend>.json` to 1e-9 relative tolerance.
//!
//! A drifting metric fails with a per-field diff naming every divergent
//! value. To regenerate the snapshots after an *intentional* behavior
//! change (the `--bless` path):
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test --test golden_trace
//! ```
//!
//! then commit the rewritten `tests/golden/*.json` and call out the metric
//! shift in the PR. CI runs this suite in both debug and `--release` to
//! catch float-path divergence between the two profiles.

use std::path::PathBuf;

use moentwine::prelude::*;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn small_model() -> ModelConfig {
    ModelConfig::tiny()
}

/// The pinned scenario: a 4×4 wafer serving a bursty mixed workload in
/// hybrid mode with the non-invasive balancer — every subsystem the serving
/// loop touches (admission, chunked prefill, clock, trigger, migration) is
/// on the trace.
fn run_scenario(backend: CongestionBackend) -> (RunSummary, ServingSummary) {
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let mut config = EngineConfig::new(small_model())
        .with_seed(4242)
        .with_backend(backend)
        .with_balancer(BalancerKind::NonInvasive)
        .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
        .with_batch(BatchMode::Scheduled {
            mode: SchedulingMode::Hybrid,
            max_batch_tokens: 2048,
            max_active: 128,
            request_rate: 8.0e3,
            iteration_period: 0.02,
        });
    config.kv_hbm_fraction = 1.0e-3;
    let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
    let run = engine.run(400);
    (run, engine.serving_summary())
}

/// Flattens the two summaries into an ordered `name → value` object.
fn snapshot(run: &RunSummary, serving: &ServingSummary) -> Vec<(String, f64)> {
    vec![
        ("run.iterations".into(), run.iterations as f64),
        ("run.mean_iteration_time".into(), run.mean_iteration_time),
        (
            "run.mean_attention_compute".into(),
            run.mean_attention_compute,
        ),
        ("run.mean_all_reduce".into(), run.mean_all_reduce),
        ("run.mean_all_to_all".into(), run.mean_all_to_all),
        ("run.mean_moe_compute".into(), run.mean_moe_compute),
        ("run.mean_migration_stall".into(), run.mean_migration_stall),
        ("run.mean_load_ratio".into(), run.mean_load_ratio),
        (
            "run.migrations_started".into(),
            run.migrations_started as f64,
        ),
        (
            "run.migrations_completed".into(),
            run.migrations_completed as f64,
        ),
        (
            "run.mean_tokens_per_group".into(),
            run.mean_tokens_per_group,
        ),
        (
            "run.tokens_per_second_per_device".into(),
            run.tokens_per_second_per_device,
        ),
        ("serving.completed".into(), serving.completed as f64),
        (
            "serving.admission_rejects".into(),
            serving.admission_rejects as f64,
        ),
        ("serving.sim_seconds".into(), serving.sim_seconds),
        ("serving.goodput_rps".into(), serving.goodput_rps),
        (
            "serving.goodput_tokens_per_s".into(),
            serving.goodput_tokens_per_s,
        ),
        ("serving.ttft_p50".into(), serving.ttft_p50),
        ("serving.ttft_p95".into(), serving.ttft_p95),
        ("serving.ttft_p99".into(), serving.ttft_p99),
        ("serving.tpot_p50".into(), serving.tpot_p50),
        ("serving.tpot_p95".into(), serving.tpot_p95),
        ("serving.tpot_p99".into(), serving.tpot_p99),
        ("serving.e2e_p50".into(), serving.e2e_p50),
        ("serving.e2e_p99".into(), serving.e2e_p99),
        ("serving.queueing_p50".into(), serving.queueing_p50),
        ("serving.queueing_p99".into(), serving.queueing_p99),
        ("serving.mean_queue_depth".into(), serving.mean_queue_depth),
        (
            "serving.max_queue_depth".into(),
            serving.max_queue_depth as f64,
        ),
        (
            "serving.mean_active_requests".into(),
            serving.mean_active_requests,
        ),
        (
            "serving.peak_kv_tokens".into(),
            serving.peak_kv_tokens as f64,
        ),
    ]
}

fn check_golden(backend: CongestionBackend) {
    let (run, serving) = run_scenario(backend);
    moentwine_bench::golden::check_or_bless(
        &golden_dir().join(format!("{}.json", backend.name())),
        &snapshot(&run, &serving),
        &format!("backend {}", backend.name()),
        "GOLDEN_BLESS=1 cargo test --test golden_trace",
    );
}

#[test]
fn golden_trace_analytic() {
    check_golden(CongestionBackend::Analytic);
}

#[test]
fn golden_trace_flow_sim() {
    check_golden(CongestionBackend::FlowSim);
}

#[test]
fn golden_trace_flow_sim_cached() {
    check_golden(CongestionBackend::FlowSimCached);
}

/// The declarative spec layer reproduces the hand-constructed golden
/// scenario **bit for bit**: `examples/scenarios/single_wafer_serving.json`
/// encodes exactly the pinned scenario above, and its spec-driven run is
/// checked against the same `tests/golden/analytic.json` snapshot — plus an
/// exact in-process equality against the hand-wired run (stronger than the
/// file's 1e-9 tolerance).
#[test]
fn golden_scenario_via_spec_file_matches_hand_construction() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/scenarios/single_wafer_serving.json");
    let text = std::fs::read_to_string(&path).expect("read example spec");
    let spec = moentwine::spec::ScenarioSpec::from_json_text(&text).expect("parse example spec");
    let outcome = spec.build().expect("build").run().expect("run");
    let (run, serving) = outcome.as_engine().expect("engine scenario");

    let (hand_run, hand_serving) = run_scenario(CongestionBackend::Analytic);
    assert_eq!(
        *run, hand_run,
        "spec-driven RunSummary must match hand-built"
    );
    assert_eq!(
        *serving, hand_serving,
        "spec-driven ServingSummary must match hand-built"
    );

    moentwine_bench::golden::check_or_bless(
        &golden_dir().join("analytic.json"),
        &snapshot(run, serving),
        "spec-driven analytic scenario",
        "GOLDEN_BLESS=1 cargo test --test golden_trace",
    );
}

/// The scenario itself is deterministic: two in-process runs at the same
/// seed produce identical snapshots bit for bit (stronger than the 1e-9
/// cross-toolchain tolerance used against the files).
#[test]
fn golden_scenario_is_deterministic_in_process() {
    let (r1, s1) = run_scenario(CongestionBackend::Analytic);
    let (r2, s2) = run_scenario(CongestionBackend::Analytic);
    assert_eq!(
        moentwine_bench::golden::fields_to_json(&snapshot(&r1, &s1)).pretty(),
        moentwine_bench::golden::fields_to_json(&snapshot(&r2, &s2)).pretty()
    );
}
