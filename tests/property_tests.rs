//! Property-based tests (proptest) on the core data structures and
//! invariants.

use proptest::prelude::*;

use moentwine::core::balancer::{BalanceAction, BalanceContext, Balancer, TopologyAwareBalancer};
use moentwine::core::migration::{decompose_route, MigrationPhase};
use moentwine::core::placement::ExpertPlacement;
use moentwine::prelude::*;
use moentwine::sim::fairshare::max_min_rates;
use moentwine::sim::{FlowSpec, IncrementalMaxMin, NetworkSim};
use moentwine::workload::sample_gating_counts;

/// Relative-tolerance comparison with an absolute floor, as the incremental
/// fair-share contract specifies (1e-9 relative).
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-30)
}

proptest! {
    /// Max-min fairness never oversubscribes a link and never assigns a
    /// negative rate.
    #[test]
    fn fairshare_respects_capacities(
        seed in 0u64..1000,
        num_flows in 1usize..20,
        num_links in 1usize..10,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let capacity: Vec<f64> =
            (0..num_links).map(|_| rng.gen_range(1.0..100.0)).collect();
        let routes: Vec<Vec<usize>> = (0..num_flows)
            .map(|_| {
                let len = rng.gen_range(0..=num_links.min(4));
                let mut ls: Vec<usize> =
                    (0..len).map(|_| rng.gen_range(0..num_links)).collect();
                ls.sort_unstable();
                ls.dedup();
                ls
            })
            .collect();
        let rates = max_min_rates(&routes, &capacity);
        let mut used = vec![0.0; num_links];
        for (f, route) in routes.iter().enumerate() {
            prop_assert!(rates[f] >= 0.0);
            for &l in route {
                used[l] += rates[f];
            }
        }
        for l in 0..num_links {
            prop_assert!(used[l] <= capacity[l] * (1.0 + 1e-9));
        }
    }

    /// Max-min fairness is work-conserving: every non-empty flow is
    /// bottlenecked somewhere (some link on its route is ~saturated).
    #[test]
    fn fairshare_is_work_conserving(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let num_links = 6;
        let capacity: Vec<f64> = (0..num_links).map(|_| rng.gen_range(1.0..50.0)).collect();
        let routes: Vec<Vec<usize>> = (0..8)
            .map(|_| {
                let a: usize = rng.gen_range(0..num_links);
                let b: usize = rng.gen_range(0..num_links);
                if a == b { vec![a] } else { vec![a.min(b), a.max(b)] }
            })
            .collect();
        let rates = max_min_rates(&routes, &capacity);
        let mut used = vec![0.0; num_links];
        for (f, route) in routes.iter().enumerate() {
            for &l in route {
                used[l] += rates[f];
            }
        }
        for (f, route) in routes.iter().enumerate() {
            if route.is_empty() { continue; }
            let bottlenecked = route
                .iter()
                .any(|&l| used[l] >= capacity[l] * (1.0 - 1e-6));
            prop_assert!(bottlenecked, "flow {f} rate {} unconstrained", rates[f]);
        }
    }

    /// Incremental fair-share contract: after any arrival/completion churn,
    /// the incremental allocator's rates equal the full-recompute
    /// water-filling oracle over the surviving flow set, to 1e-9 relative
    /// tolerance, on random link sets and random routes.
    #[test]
    fn incremental_fairshare_matches_oracle(
        seed in 0u64..1000,
        num_flows in 1usize..24,
        num_links in 1usize..12,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFA1B);
        let capacity: Vec<f64> =
            (0..num_links).map(|_| rng.gen_range(1.0..100.0)).collect();
        let routes: Vec<Vec<usize>> = (0..num_flows)
            .map(|_| {
                let len = rng.gen_range(0..=num_links.min(4));
                let mut ls: Vec<usize> =
                    (0..len).map(|_| rng.gen_range(0..num_links)).collect();
                ls.sort_unstable();
                ls.dedup();
                ls
            })
            .collect();
        let mut alloc = IncrementalMaxMin::new(capacity.clone());
        let ids: Vec<u32> = routes
            .iter()
            .map(|r| {
                let links: Vec<u32> = r.iter().map(|&l| l as u32).collect();
                alloc.register(&links)
            })
            .collect();
        // Arrive one by one, rebalancing after each arrival.
        for &id in &ids {
            alloc.activate(id);
            alloc.rebalance();
        }
        // Retire a random subset, rebalancing after each completion.
        let mut active: Vec<usize> = (0..num_flows).collect();
        let retire = rng.gen_range(0..num_flows);
        for _ in 0..retire {
            let pos = rng.gen_range(0..active.len());
            let f = active.swap_remove(pos);
            alloc.deactivate(ids[f]);
            alloc.rebalance();
        }
        // Oracle over the survivors.
        let surviving: Vec<Vec<usize>> =
            active.iter().map(|&f| routes[f].clone()).collect();
        let oracle = max_min_rates(&surviving, &capacity);
        for (&f, &expect) in active.iter().zip(&oracle) {
            let got = alloc.rate(ids[f]);
            if expect.is_infinite() {
                prop_assert!(got.is_infinite(), "flow {f}: {got} vs inf");
            } else {
                prop_assert!(close(got, expect), "flow {f}: {got} vs {expect}");
            }
        }
    }

    /// Event-order invariance: permuting the submission order of a flow set
    /// changes neither the makespan nor any flow's completion time beyond
    /// floating-point tolerance.
    #[test]
    fn network_sim_is_event_order_invariant(seed in 0u64..200) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x0DE5);
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let n = topo.num_devices() as u32;
        let num_flows = rng.gen_range(2usize..24);
        let flows: Vec<(f64, FlowSpec)> = (0..num_flows)
            .map(|_| {
                let src = DeviceId(rng.gen_range(0..n));
                let dst = DeviceId(rng.gen_range(0..n));
                let bytes = rng.gen_range(1.0e5..5.0e7);
                let start = rng.gen_range(0.0..2.0e-4);
                (start, FlowSpec::new(topo.route(src, dst), bytes))
            })
            .collect();
        // A seed-derived permutation.
        let mut perm: Vec<usize> = (0..num_flows).collect();
        for i in (1..num_flows).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let shuffled: Vec<(f64, FlowSpec)> =
            perm.iter().map(|&i| flows[i].clone()).collect();
        let base = NetworkSim::new(&topo).run_at(&flows);
        let permuted = NetworkSim::new(&topo).run_at(&shuffled);
        prop_assert!(
            close(base.total_time, permuted.total_time),
            "makespan {} vs {}",
            base.total_time,
            permuted.total_time
        );
        for (k, &i) in perm.iter().enumerate() {
            prop_assert!(
                close(base.completion_times[i], permuted.completion_times[k]),
                "flow {i}: {} vs {}",
                base.completion_times[i],
                permuted.completion_times[k]
            );
        }
    }

    /// Gating counts always sum to tokens × top_k and respect the per-token
    /// cap, for arbitrary normalized distributions.
    #[test]
    fn gating_counts_conserved(
        seed in 0u64..1000,
        tokens in 1u32..512,
        raw in proptest::collection::vec(0.01f64..10.0, 2..32),
    ) {
        use rand::SeedableRng;
        let total: f64 = raw.iter().sum();
        let dist: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let top_k = 1 + (seed % (dist.len() as u64).min(4)) as u32;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let counts = sample_gating_counts(&mut rng, &dist, tokens, top_k);
        let sum: u64 = counts.iter().map(|&c| c as u64).sum();
        prop_assert_eq!(sum, tokens as u64 * top_k as u64);
        prop_assert!(counts.iter().all(|&c| c <= tokens));
    }

    /// ER-Mapping partitions: every device is in exactly one TP group and
    /// exactly one FTD; each FTD holds one device per group.
    #[test]
    fn er_mapping_partitions(case in 0usize..6) {
        let configs = [
            (4u16, 2u16, 2u16),
            (4, 2, 1),
            (6, 2, 3),
            (6, 3, 2),
            (8, 2, 2),
            (8, 4, 2),
        ];
        let (n, tpx, tpy) = configs[case];
        let topo = Mesh::new(n, PlatformParams::dojo_like()).build();
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(tpx, tpy))
            .unwrap()
            .plan();
        let mut group_seen = vec![0usize; topo.num_devices()];
        for (g, members) in plan.groups().iter().enumerate() {
            prop_assert_eq!(members.len(), (tpx * tpy) as usize);
            for &d in members {
                group_seen[d.index()] += 1;
                prop_assert_eq!(plan.group_of(d).0, g);
            }
        }
        prop_assert!(group_seen.iter().all(|&c| c == 1));
        let mut ftd_seen = vec![0usize; topo.num_devices()];
        for ftd in plan.ftds() {
            let mut groups: Vec<usize> =
                ftd.devices().iter().map(|&d| plan.group_of(d).0).collect();
            groups.sort_unstable();
            groups.dedup();
            prop_assert_eq!(groups.len(), plan.num_groups());
            for &d in ftd.devices() {
                ftd_seen[d.index()] += 1;
            }
        }
        prop_assert!(ftd_seen.iter().all(|&c| c == 1));
    }

    /// Migration route decomposition: segments alternate phases and cover
    /// the route for arbitrary device pairs.
    #[test]
    fn migration_segments_alternate(src in 0u32..36, dst in 0u32..36) {
        let topo = Mesh::new(6, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let segs = decompose_route(
            &topo, &table, &plan,
            DeviceId(src), DeviceId(dst), 1.0e6,
        );
        if src == dst {
            prop_assert!(segs.is_empty());
        } else {
            prop_assert!(!segs.is_empty());
            for w in segs.windows(2) {
                prop_assert_ne!(w[0].phase, w[1].phase);
            }
            // Same-FTD pairs decompose to Local-only.
            if plan.ftd_of(DeviceId(src)) == plan.ftd_of(DeviceId(dst)) {
                prop_assert!(segs.iter().all(|s| s.phase == MigrationPhase::Local));
            } else {
                prop_assert!(segs.iter().any(|s| s.phase == MigrationPhase::Global));
            }
        }
    }

    /// Placement stays consistent under arbitrary add/remove sequences:
    /// replica lists and shadow slots always agree, and device loads always
    /// sum to the total expert load.
    #[test]
    fn placement_consistency(ops in proptest::collection::vec((0usize..16, 0u32..8), 0..40)) {
        let mut p = ExpertPlacement::balanced(16, 8, 2);
        for (e, d) in ops {
            let d = DeviceId(d);
            if p.hosts(d, e) {
                p.remove_replica(e, d);
            } else {
                let _ = p.add_replica(e, d);
            }
            // Consistency: every replica of e is either primary or in a
            // shadow list.
            for &dev in p.replicas(e) {
                let is_primary = p.primary_experts(dev).contains(&e);
                let is_shadow = p.shadow_experts(dev).contains(&e);
                prop_assert!(is_primary || is_shadow);
            }
            prop_assert!(p.shadow_experts(d).len() <= p.slots_per_device());
        }
        let loads: Vec<f64> = (0..16).map(|e| (e + 1) as f64).collect();
        let device_total: f64 = p.device_loads(&loads).iter().sum();
        let expert_total: f64 = loads.iter().sum();
        prop_assert!((device_total - expert_total).abs() < 1e-9);
    }

    /// The topology-aware balancer never increases the peak device heat.
    #[test]
    fn balancer_never_worsens_peak(seed in 0u64..200) {
        use rand::{Rng, SeedableRng};
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let loads: Vec<f64> = (0..16).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut placement = ExpertPlacement::balanced(16, 16, 1);
        let before = placement
            .device_loads(&loads)
            .into_iter()
            .fold(0.0, f64::max);
        let mut balancer = TopologyAwareBalancer::new(4);
        let actions = balancer.plan_layer(&BalanceContext {
            layer: 0,
            expert_loads: &loads,
            placement: &placement,
            table: &table,
        });
        for a in actions {
            match a {
                BalanceAction::Replicate { expert, target, .. } => {
                    placement.add_replica(expert, target).unwrap();
                }
                BalanceAction::Release { expert, device, .. } => {
                    placement.remove_replica(expert, device);
                }
            }
        }
        let after = placement
            .device_loads(&loads)
            .into_iter()
            .fold(0.0, f64::max);
        prop_assert!(after <= before * (1.0 + 1e-9), "{after} > {before}");
    }
}
