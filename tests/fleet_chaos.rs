//! Request conservation under failure injection (DESIGN.md §11): across
//! random seeds, policies, rates, timeline shapes, scheduler drives, and
//! replica-pool interleavings, every request the router ever dispatched is
//! — at any synchronization point — in exactly one place: waiting in a
//! queue, resident in a batch, rejected, completed, or re-offered to the
//! router by a drain/crash (each re-offer increments the routed count
//! again, so the ledger stays exact without tracking identities twice).

use moentwine::prelude::*;
use proptest::prelude::*;

fn engine_template(seed: u64) -> EngineConfig {
    let mut config = EngineConfig::new(ModelConfig::tiny())
        .with_seed(seed)
        .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
        .with_batch(BatchMode::External {
            mode: SchedulingMode::Hybrid,
            max_batch_tokens: 2048,
            max_active: 128,
        })
        .with_summary(SummaryMode::Exact);
    config.kv_hbm_fraction = 1.0e-3;
    config
}

struct Fixture {
    topo: Topology,
    table: RouteTable,
    plan: MappingPlan,
}

fn fixture() -> Fixture {
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    Fixture { topo, table, plan }
}

fn policy_of(tag: u8) -> RouterPolicy {
    RouterPolicy::all()[tag as usize % RouterPolicy::all().len()]
}

/// A legal but adversarial replica pool: odd-indexed jobs first.
struct ScrambledPool;
impl ReplicaPool for ScrambledPool {
    fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
        let mut deferred = Vec::new();
        for (i, job) in jobs.into_iter().enumerate() {
            if i % 2 == 0 {
                deferred.push(job);
            } else {
                job();
            }
        }
        for job in deferred {
            job();
        }
    }
}

/// A crash→recover→drain→scale-up arc whose targets stay legal for any
/// `replicas ≥ 2` (the recover restores the crashed replica before the
/// drain retires its neighbour, so an admitting replica always remains)
/// and whose times are scaled by `stretch` so runs catch the timeline in
/// every stage of application: not yet fired, mid-arc, and fully applied.
fn chaos_timeline(replicas: usize, crash_tag: u8, stretch: f64) -> Vec<FleetEvent> {
    let crashed = crash_tag as usize % replicas;
    let drained = (crashed + 1) % replicas;
    vec![
        FleetEvent {
            time: 8.0e-5 * stretch,
            kind: FleetEventKind::Crash { replica: crashed },
        },
        FleetEvent {
            time: 1.6e-4 * stretch,
            kind: FleetEventKind::Recover { replica: crashed },
        },
        FleetEvent {
            time: 2.4e-4 * stretch,
            kind: FleetEventKind::Drain { replica: drained },
        },
        FleetEvent {
            time: 3.2e-4 * stretch,
            kind: FleetEventKind::ScaleUp { count: 1 },
        },
    ]
}

/// The conservation ledger of a finished (or mid-flight) chaos fleet:
/// `routed == queued + resident + rejected + completed + re-offered`.
fn assert_conserved(fleet: &Fleet<'_>, summary: &FleetSummary) {
    let routed: u64 = summary.routed.iter().sum();
    let mut accounted = 0u64;
    for (engine, s) in fleet.engines().iter().zip(&summary.per_replica) {
        let snap = engine.replica_snapshot().expect("serving mode");
        accounted +=
            snap.queue_depth as u64 + snap.active as u64 + s.admission_rejects + s.completed as u64;
    }
    let a = &summary.availability;
    let reoffered = a.drain_rerouted + a.crash_rerouted + a.crash_interruptions;
    assert_eq!(
        routed,
        accounted + reoffered,
        "requests lost or double-counted under chaos: {accounted} accounted \
         + {reoffered} re-offered ({a:?})"
    );
}

proptest! {
    /// Exactly-once accounting under chaos: for every timeline stretch
    /// (events not yet fired / mid-arc / fully applied), both scheduler
    /// drives and a scrambled replica pool agree bit-for-bit, and the
    /// routed ledger balances against queues, batches, rejects,
    /// completions, and re-offers.
    #[test]
    fn chaos_conserves_every_admitted_request(
        seed in 0u64..1_000,
        policy_tag in 0u8..8,
        replicas in 2usize..5,
        crash_tag in 0u8..8,
        rate_ten_kilo in 2u32..20,
        rounds in 40usize..160,
        stretch_tenths in 2u32..30,
    ) {
        let f = fixture();
        let rate = rate_ten_kilo as f64 * 1.0e4;
        let policy = policy_of(policy_tag);
        let events = chaos_timeline(replicas, crash_tag, stretch_tenths as f64 * 0.1);
        prop_assert!(validate_fleet_events(replicas, &events).is_ok());
        let run = |scheduler: FleetScheduler, pool: &dyn ReplicaPool| {
            let config = FleetConfig::new(replicas, policy, rate, engine_template(seed))
                .with_scheduler(scheduler)
                .with_events(events.clone());
            let mut fleet = Fleet::new(&f.topo, &f.table, &f.plan, config);
            fleet.run_with(rounds, pool);
            let summary = fleet.summary();
            (fleet, summary)
        };
        let (lockstep_fleet, lockstep) = run(FleetScheduler::Lockstep, &SerialReplicaPool);
        let (_, event) = run(FleetScheduler::EventHeap, &SerialReplicaPool);
        let (scrambled_fleet, scrambled) = run(FleetScheduler::EventHeap, &ScrambledPool);
        prop_assert_eq!(&lockstep, &event);
        prop_assert_eq!(&event, &scrambled);
        assert_conserved(&lockstep_fleet, &lockstep);
        assert_conserved(&scrambled_fleet, &scrambled);

        // Whatever fired so far left a coherent fleet: a recovered or
        // never-crashed replica is active, applied events are monotone,
        // and the availability integral stays a fraction.
        let a = &lockstep.availability;
        prop_assert!(a.events_applied <= events.len() as u64);
        prop_assert!(a.available_fraction > 0.0 && a.available_fraction <= 1.0);
        prop_assert!(lockstep_fleet.states().contains(&ReplicaState::Active));
        // Crash interruptions always carry their re-admission price.
        if a.crash_interruptions > 0 {
            prop_assert!(a.requeued_tokens > 0);
        }
    }
}
