//! Explores the mapping design space: for every TP shape that tiles a
//! wafer, compare baseline vs ER-Mapping on FTD geometry and measured
//! communication latency (flow-level simulation).
//!
//! Run with: `cargo run --release --example er_mapping_explorer [n]`
//! where `n` is the wafer side (default 6).

use moentwine::collectives::stagger::{phases_are_link_disjoint, staggered_ring_all_reduce};
use moentwine::core::comm::{A2aModel, ParallelLayout};
use moentwine::core::placement::ExpertPlacement;
use moentwine::prelude::*;
use moentwine::workload::LayerGating;

fn balanced_gating(groups: usize, experts: usize, tokens: u32, top_k: u32) -> LayerGating {
    let per = (tokens as u64 * top_k as u64 / experts as u64).max(1) as u32;
    LayerGating {
        counts: vec![vec![per; experts]; groups],
    }
}

fn main() {
    let n: u16 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let topo = Mesh::new(n, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let dims = topo.mesh_dims().expect("wafer");
    let model = ModelConfig::qwen3_235b();
    let token_bytes = model.token_bytes(moentwine::model::Precision::Fp16);

    println!("{:-^100}", format!(" {}x{} wafer mapping explorer ", n, n));
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "TP", "hops base", "hops ER", "AR base", "AR ER", "A2A base", "A2A ER", "ER gain"
    );

    for tp in [2usize, 4, 8, 9, 12, 16, 18, 36] {
        let Ok(shape) = TpShape::factor(tp, n) else {
            continue;
        };
        let (Ok(b), Ok(e)) = (
            BaselineMapping::new(dims, shape),
            ErMapping::new(dims, shape),
        ) else {
            continue;
        };
        let (base, er) = (b.plan(), e.plan());

        // Verify the entwined rings really are conflict-free.
        let staggered = staggered_ring_all_reduce(&topo, er.rings(), 1.0e6);
        assert!(phases_are_link_disjoint(&staggered, &topo));

        let measure = |plan: &MappingPlan| {
            let ar_bytes = 256.0 * token_bytes;
            let ar = plan
                .all_reduce_schedule(&topo, ar_bytes)
                .run(&topo)
                .total_time;
            let placement =
                ExpertPlacement::balanced(model.num_experts as usize, topo.num_devices(), 1);
            let gating = balanced_gating(
                plan.num_groups(),
                model.num_experts as usize,
                256,
                model.experts_per_token,
            );
            let est =
                A2aModel::new(&topo, &table, plan).estimate(&gating, &placement, token_bytes, 256);
            (ar, est.total_time())
        };
        let (ar_b, a2a_b) = measure(&base);
        let (ar_e, a2a_e) = measure(&er);
        let gain = ((ar_b + a2a_b) - (ar_e + a2a_e)) / (ar_b + a2a_b) * 100.0;
        println!(
            "{:>8} {:>10.2} {:>10.2} {:>11.2}µs {:>11.2}µs {:>11.2}µs {:>11.2}µs {:>+9.0}%",
            format!("{}", shape),
            base.average_ftd_hops(&topo),
            er.average_ftd_hops(&topo),
            ar_b * 1e6,
            ar_e * 1e6,
            a2a_b * 1e6,
            a2a_e * 1e6,
            gain,
        );
    }
    println!(
        "\nEvery ER configuration passed the link-disjointness check \
         (paper Fig. 8d: staggered rings never conflict)."
    );
}
