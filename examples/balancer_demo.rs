//! Watches the NI-Balancer fight a drifting workload: a production-style
//! scenario mixture rotates from Chat-heavy to Math-heavy while four
//! balancing strategies try to keep device loads flat.
//!
//! Run with: `cargo run --release --example balancer_demo`

use moentwine::core::balancer::BalancerKind;
use moentwine::core::engine::{BatchMode, EngineConfig, InferenceEngine};
use moentwine::model::InferencePhase;
use moentwine::prelude::*;
use moentwine::workload::WorkloadMix;

fn main() {
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
        .unwrap()
        .plan();
    let model = ModelConfig::qwen3_235b();
    let iterations = 120;

    println!("Qwen3 on a 4x4 wafer, scenario mixture rotating every 60 iterations\n");
    for kind in [
        BalancerKind::None,
        BalancerKind::Greedy,
        BalancerKind::TopologyAware,
        BalancerKind::NonInvasive,
    ] {
        let mut config = EngineConfig::new(model.clone())
            .with_workload(WorkloadMix::mixed(60.0))
            .with_balancer(kind)
            .with_batch(BatchMode::Fixed {
                tokens_per_group: 768,
                avg_context: 4096.0,
                phase: InferencePhase::Decode,
            })
            .with_seed(23);
        config.comm_layer_stride = 8;
        config.slots_per_device = 2;
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        let summary = engine.run(iterations);

        println!("=== {kind} ===");
        // A coarse trace: max/avg device load every 20 iterations.
        print!("  load trace (max/avg): ");
        for (i, m) in engine.history.iter().enumerate() {
            if i % 20 == 0 {
                print!("{:.2} ", m.load_ratio);
            }
        }
        println!();
        println!(
            "  mean load ratio {:.2} | interrupted iters {} | stall {:.1} µs | \
             migrations {} | mean iter {:.3} ms",
            summary.mean_load_ratio,
            engine.history.iter().filter(|m| m.interrupted()).count(),
            summary.mean_migration_stall * 1e6,
            summary.migrations_completed,
            summary.mean_iteration_time * 1e3,
        );
        println!();
    }
    println!(
        "Expected shape (paper Fig. 15): greedy fixes imbalance but interrupts; \
         topology-aware interrupts less; non-invasive never interrupts and \
         keeps the ratio low continuously."
    );
}
