//! Scales a DeepSeek-V3 deployment from one wafer to a four-wafer system
//! and compares the three mappings — the headline scenario of the paper's
//! multi-WSC evaluation (Figs. 13d / 17).
//!
//! Run with: `cargo run --release --example multi_wafer_scaling`

use moentwine::core::balancer::BalancerKind;
use moentwine::core::engine::{EngineConfig, InferenceEngine};
use moentwine::prelude::*;

fn run_case(
    topo: &Topology,
    table: &RouteTable,
    plan: &MappingPlan,
    balancer: BalancerKind,
    label: &str,
) {
    let model = ModelConfig::deepseek_v3();
    let mut config = EngineConfig::new(model)
        .with_balancer(balancer)
        .with_seed(9);
    config.comm_layer_stride = 8;
    let mut engine = InferenceEngine::new(topo, table, plan, config);
    let s = engine.run(10);
    println!(
        "{label:<28} a2a {:>8.1} µs | moe {:>8.1} µs | stall {:>6.1} µs | iter {:>8.2} ms | {:>7.0} tok/s/dev",
        s.mean_all_to_all * 1e6,
        s.mean_moe_compute * 1e6,
        s.mean_migration_stall * 1e6,
        s.mean_iteration_time * 1e3,
        s.tokens_per_second_per_device,
    );
}

fn main() {
    println!("DeepSeek-V3, 256 tokens/group decode, 10 iterations each\n");

    // Single 8x8 wafer (EP=64, E/D=4).
    let single = Mesh::new(8, PlatformParams::dojo_like()).build();
    let single_table = RouteTable::build(&single);
    let dims = single.mesh_dims().unwrap();
    println!("-- single {} --", single.name());
    for (label, plan) in [
        (
            "baseline mapping",
            BaselineMapping::with_tp_degree(dims, 8).unwrap().plan(),
        ),
        (
            "ER-Mapping",
            ErMapping::with_tp_degree(dims, 8).unwrap().plan(),
        ),
    ] {
        run_case(&single, &single_table, &plan, BalancerKind::None, label);
    }

    // 4x(8x8) multi-wafer system (EP=256, E/D=1).
    let multi = MultiWafer::grid(2, 2, 8, PlatformParams::dojo_like()).build();
    let multi_table = RouteTable::build(&multi);
    let mdims = multi.mesh_dims().unwrap();
    println!("\n-- multi-wafer {} --", multi.name());
    for (label, plan) in [
        (
            "baseline mapping",
            BaselineMapping::with_tp_degree(mdims, 8).unwrap().plan(),
        ),
        (
            "pure ER-Mapping",
            ErMapping::with_tp_degree(mdims, 8).unwrap().plan(),
        ),
        (
            "HER-Mapping",
            HierarchicalErMapping::with_tp_degree(mdims, 8)
                .unwrap()
                .plan(),
        ),
    ] {
        run_case(&multi, &multi_table, &plan, BalancerKind::None, label);
    }
    let her = HierarchicalErMapping::with_tp_degree(mdims, 8)
        .unwrap()
        .plan();
    run_case(
        &multi,
        &multi_table,
        &her,
        BalancerKind::NonInvasive,
        "HER + NI-Balancer",
    );

    println!(
        "\nExpected shape: multi-wafer baseline drowns in cross-border \
         all-to-all; HER confines it within wafers; the NI-Balancer then \
         removes the load-imbalance tail without any migration stall."
    );
}
