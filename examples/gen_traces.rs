//! Regenerates the canonical trace-replay request files under
//! `examples/traces/` (schema `moentwine/trace/v1`).
//!
//! ```sh
//! cargo run --example gen_traces
//! ```
//!
//! Real serving traces (the Azure production arrivals the paper mixes its
//! benchmarks with, §VI-C) are not redistributable, so these are synthetic
//! equivalents with the structure trace replay is meant to exercise:
//! clustered interarrivals, scenario mixtures, and interleaved tenant
//! classes. Generation is fully deterministic (a hand-rolled SplitMix64
//! stream, no ambient randomness), so rerunning this binary reproduces the
//! checked-in files byte for byte; `tests/spec_scenarios.rs` pins that.

use moentwine::spec::trace_to_json;
use moentwine::workload::{RequestClass, Scenario, TraceRequest};

/// SplitMix64: a tiny deterministic stream, same construction the
/// workspace's seed-splitting uses.
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` (53-bit mantissa).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with the given mean (inverse-CDF; input clamped away
    /// from 0 so ln is finite).
    fn next_exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.next_f64()).max(1.0e-12).ln()
    }

    fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[(self.next_u64() % items.len() as u64) as usize]
    }
}

/// Rounds to 9 decimal places (nanosecond grid) so the JSON encoding is
/// compact and exactly round-trippable.
fn grid(t: f64) -> f64 {
    (t * 1.0e9).round() / 1.0e9
}

/// A bursty chat-heavy trace: 50 µs quiet phases (mean gap 10 µs)
/// alternating with 25 µs bursts (mean gap 1.25 µs), short interactive
/// requests with occasional batch coding jobs mixed in. Timescales are
/// matched to the tiny-preset serving engine (~4 µs simulated per
/// iteration), so even a `--quick`-capped 250-iteration smoke run replays
/// a few hundred requests.
fn bursty_chat(rows: usize) -> Vec<TraceRequest> {
    let mut rng = SplitMix(0xB0_05_7E_D0);
    let mut t = 0.0_f64;
    let mut out = Vec::with_capacity(rows);
    while out.len() < rows {
        let in_burst = (t / 5.0e-5) as u64 % 3 == 2;
        let mean_gap = if in_burst { 1.25e-6 } else { 1.0e-5 };
        t += rng.next_exp(mean_gap);
        let batch_job = rng.next_f64() < 0.2;
        let (scenario, class) = if batch_job {
            (Scenario::Coding, RequestClass::Batch)
        } else {
            (
                rng.pick(&[Scenario::Chat, Scenario::Privacy]),
                RequestClass::Interactive,
            )
        };
        out.push(TraceRequest {
            arrival: grid(t),
            scenario,
            input_len: 32 + (rng.next_u64() % 96) as u32,
            output_len: 8 + (rng.next_u64() % 24) as u32,
            class,
        });
    }
    out
}

/// A steady mixed-tenant trace: Poisson arrivals at ~125k req/s across
/// all four benchmark scenarios, one third batch traffic with longer
/// outputs.
fn steady_mixed(rows: usize) -> Vec<TraceRequest> {
    let mut rng = SplitMix(0x57_EA_D7_12);
    let mut t = 0.0_f64;
    let mut out = Vec::with_capacity(rows);
    while out.len() < rows {
        t += rng.next_exp(8.0e-6);
        let class = if rng.next_f64() < 1.0 / 3.0 {
            RequestClass::Batch
        } else {
            RequestClass::Interactive
        };
        let output_len = match class {
            RequestClass::Interactive => 8 + (rng.next_u64() % 16) as u32,
            RequestClass::Batch => 24 + (rng.next_u64() % 40) as u32,
        };
        out.push(TraceRequest {
            arrival: grid(t),
            scenario: rng.pick(&[
                Scenario::Chat,
                Scenario::Coding,
                Scenario::Math,
                Scenario::Privacy,
            ]),
            input_len: 48 + (rng.next_u64() % 144) as u32,
            output_len,
            class,
        });
    }
    out
}

fn main() -> std::io::Result<()> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/traces");
    std::fs::create_dir_all(&dir)?;
    for (name, rows) in [
        ("bursty_chat", bursty_chat(1500)),
        ("steady_mixed", steady_mixed(1200)),
    ] {
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, trace_to_json(name, &rows).pretty())?;
        println!("wrote {} ({} requests)", path.display(), rows.len());
    }
    Ok(())
}
