//! Regenerates the canonical scenario files under `examples/scenarios/`.
//!
//! ```sh
//! cargo run --example gen_scenarios
//! ```
//!
//! Each file is the exact `ScenarioSpec::to_json_text` form, so
//! `tests/spec_scenarios.rs` can pin that the checked-in files parse back
//! to these specs (and stay in canonical formatting). Run this after
//! changing the specs below or the JSON codec, then commit the diff.

use moentwine::spec::{
    ArrivalSourceSpec, BatchSpec, EngineSpec, FleetSpec, MappingSpec, ModelSpec, PlatformSpec,
    ScenarioSpec, ServingSpec, SweepSpec, WorkloadSpec,
};
use moentwine::workload::{ClassSpec, RouterPolicy, Scenario, WorkloadMix};
use moentwine_core::balancer::BalancerKind;
use moentwine_core::engine::SummaryMode;
use moentwine_core::fleet::{FleetEvent, FleetEventKind, ReplicaRole};

/// The canonical example scenarios, in README order.
/// `tests/spec_scenarios.rs` pins the *files* this generator writes
/// (canonical byte form, buildable, required names) — after adding a
/// scenario here, run the generator and add its name to that test's
/// required list so the new file stays covered.
pub fn canonical_scenarios() -> Vec<ScenarioSpec> {
    // Exactly the golden-trace scenario (tests/golden_trace.rs), so the
    // spec-driven run is pinned bit-for-bit against tests/golden/*.json.
    let single_wafer = ScenarioSpec::new("single_wafer_serving", PlatformSpec::wsc(4))
        .with_mapping(MappingSpec::er(4))
        .with_model(ModelSpec::preset("tiny"))
        .with_engine(
            EngineSpec::default()
                .with_seed(4242)
                .with_balancer(BalancerKind::NonInvasive)
                .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
                .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 128, 8.0e3)))
                .with_kv_hbm_fraction(1.0e-3),
        )
        .with_iterations(400);

    // Short-output traffic (chat + privacy) so even the quick-capped run
    // completes requests on the two-wafer pod.
    let multi_wafer = ScenarioSpec::new("multi_wafer", PlatformSpec::multi_wsc(2, 1, 4))
        .with_mapping(MappingSpec::her(4))
        .with_model(ModelSpec::preset("tiny"))
        .with_engine(
            EngineSpec::default()
                .with_seed(7)
                .with_workload(WorkloadMix::Blend(vec![
                    (Scenario::Chat, 1.0),
                    (Scenario::Privacy, 1.0),
                ]))
                .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 128, 6.0e3)))
                .with_kv_hbm_fraction(1.0e-3),
        )
        .with_iterations(400);

    let dgx_baseline = ScenarioSpec::new("dgx_baseline", PlatformSpec::dgx(2))
        .with_mapping(MappingSpec::cluster(8))
        .with_model(ModelSpec::preset("tiny"))
        .with_engine(
            EngineSpec::default()
                .with_seed(11)
                .with_batch(BatchSpec::fixed_decode(256)),
        )
        .with_iterations(60);

    let fleet_p2c = ScenarioSpec::new("fleet_p2c", PlatformSpec::wsc(4))
        .with_mapping(MappingSpec::er(4))
        .with_model(ModelSpec::preset("tiny"))
        .with_engine(
            EngineSpec::default()
                .with_seed(23)
                .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
                .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 128, 0.0)))
                .with_kv_hbm_fraction(1.0e-3),
        )
        .with_fleet(FleetSpec::new(2, RouterPolicy::PowerOfTwoChoices, 6.0e3))
        .with_iterations(200);

    let rate_sweep = ScenarioSpec::new("rate_sweep", PlatformSpec::wsc(4))
        .with_mapping(MappingSpec::er(4))
        .with_model(ModelSpec::preset("tiny"))
        .with_engine(
            EngineSpec::default()
                .with_seed(97)
                .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
                .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 256, 0.0)))
                .with_kv_hbm_fraction(1.0e-3),
        )
        .with_sweep(SweepSpec::default().with_rates(vec![4.0e3, 12.0e3]))
        .with_iterations(300);

    // The million-request scale scenario (README "10M-request scenario"):
    // 64 replicas behind power-of-two-choices with streaming summaries, so
    // the full run retains O(replicas) records instead of one per request.
    // The arrival sweep is scaled so the largest point generates ≥10M
    // arrivals over the full 300k-round run (~3.6 s of simulated time at
    // ~12 µs/round × 4e6 req/s ≈ 14M requests), while staying under the
    // fleet's ~4.8M req/s saturation capacity so pending queues stay
    // shallow and memory bounded (measured: mean queue depth 0 at both
    // rates). CI smokes it with `--quick` (rounds capped at 250); the
    // full run is a minutes-scale batch job.
    let mega_fleet = ScenarioSpec::new("mega_fleet", PlatformSpec::wsc(4))
        .with_mapping(MappingSpec::er(4))
        .with_model(ModelSpec::preset("tiny"))
        .with_engine(
            EngineSpec::default()
                .with_seed(131)
                .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
                .with_batch(BatchSpec::Serving(
                    ServingSpec::hybrid(2048, 128, 0.0).with_summary(SummaryMode::Streaming),
                ))
                .with_kv_hbm_fraction(1.0e-3),
        )
        .with_fleet(FleetSpec::new(64, RouterPolicy::PowerOfTwoChoices, 2.0e6))
        .with_sweep(SweepSpec::default().with_rates(vec![2.0e6, 4.0e6]))
        .with_iterations(300_000);

    // The failure-injection scenario (README "chaos quickstart" /
    // DESIGN.md §11): the mega-fleet shape under an elasticity timeline —
    // crash one replica under load, gracefully drain another, scale up by
    // two, then recover the crashed replica. Event times sit in the first
    // millisecond of simulated time so the whole arc (including the
    // in-flight interruptions and KV re-admission) fires even in the
    // `--quick`-capped 250-round smoke run (~2 ms simulated); the run
    // manifest then carries the `availability` section with the
    // interruption counts and per-window goodput.
    let chaos_fleet = ScenarioSpec::new("chaos_fleet", PlatformSpec::wsc(4))
        .with_mapping(MappingSpec::er(4))
        .with_model(ModelSpec::preset("tiny"))
        .with_engine(
            EngineSpec::default()
                .with_seed(151)
                .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
                .with_batch(BatchSpec::Serving(
                    ServingSpec::hybrid(2048, 128, 0.0).with_summary(SummaryMode::Streaming),
                ))
                .with_kv_hbm_fraction(1.0e-3),
        )
        .with_fleet(
            FleetSpec::new(64, RouterPolicy::PowerOfTwoChoices, 2.0e6).with_events(vec![
                FleetEvent {
                    time: 2.0e-4,
                    kind: FleetEventKind::Crash { replica: 1 },
                },
                FleetEvent {
                    time: 4.0e-4,
                    kind: FleetEventKind::Drain { replica: 2 },
                },
                FleetEvent {
                    time: 6.0e-4,
                    kind: FleetEventKind::ScaleUp { count: 2 },
                },
                FleetEvent {
                    time: 8.0e-4,
                    kind: FleetEventKind::Recover { replica: 1 },
                },
            ]),
        )
        .with_iterations(2000);

    // Trace replay (README "trace replay quickstart" / DESIGN.md §12):
    // arrivals come from the checked-in `examples/traces/bursty_chat.json`
    // file (regenerate with `cargo run --example gen_traces`) instead of a
    // sampled process — the trace owns every arrival instant, scenario,
    // length, and tenant class, so the run is reproducible down to the
    // individual request. The serving spec's request rate is ignored. Both
    // tenant classes are declared so the run manifest reports per-class
    // TTFT/TPOT SLO attainment.
    let trace_replay = ScenarioSpec::new("trace_replay", PlatformSpec::wsc(4))
        .with_mapping(MappingSpec::er(4))
        .with_model(ModelSpec::preset("tiny"))
        .with_engine(
            EngineSpec::default()
                .with_seed(211)
                .with_workload(WorkloadMix::Blend(vec![
                    (Scenario::Chat, 2.0),
                    (Scenario::Privacy, 1.0),
                ]))
                .with_batch(BatchSpec::Serving(
                    ServingSpec::hybrid(2048, 128, 0.0).with_workload(
                        WorkloadSpec::new(ArrivalSourceSpec::Trace {
                            path: "examples/traces/bursty_chat.json".into(),
                        })
                        .with_classes(vec![ClassSpec::interactive(), ClassSpec::batch()]),
                    ),
                ))
                .with_kv_hbm_fraction(1.0e-3),
        )
        .with_iterations(400);

    // Bursty multi-tenant overload (README / DESIGN.md §12): 4× arrival
    // bursts a quarter of each 200 µs cycle, an impatient interactive
    // tenant (3:1 traffic share, 100 µs shed deadline) ahead of a patient
    // batch tenant at every admission barrier. Timescales match the
    // tiny-preset engine (~4 µs simulated per iteration) and the rate is
    // pushed far past the 128-slot decode capacity, so even the
    // quick-capped CI smoke run observes deadline sheds (the smoke step
    // asserts shed ≥ 1) and distinct per-class attainment.
    let bursty_tenants = ScenarioSpec::new("bursty_tenants", PlatformSpec::wsc(4))
        .with_mapping(MappingSpec::er(4))
        .with_model(ModelSpec::preset("tiny"))
        .with_engine(
            EngineSpec::default()
                .with_seed(227)
                .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
                .with_batch(BatchSpec::Serving(
                    ServingSpec::hybrid(2048, 128, 2.0e6).with_workload(
                        WorkloadSpec::new(ArrivalSourceSpec::Burst {
                            period: 2.0e-4,
                            burst_duration: 5.0e-5,
                            quiet_factor: 0.5,
                            burst_factor: 4.0,
                        })
                        .with_classes(vec![
                            ClassSpec::interactive()
                                .with_weight(3.0)
                                .with_shed_after(1.0e-4),
                            ClassSpec::batch(),
                        ]),
                    ),
                ))
                .with_kv_hbm_fraction(1.0e-3),
        )
        .with_iterations(400);

    // Disaggregated prefill/decode serving (README "disaggregation
    // quickstart" / DESIGN.md §13): two wafer-scale prefill pods feed two
    // DGX decode replicas; each finished prefill's KV footprint is priced
    // as an explicit transfer through the congestion model before the
    // request enters a decode replica's continuous-batching queue. The
    // arrival rate is sized so even the `--quick`-capped 250-round smoke
    // run completes hand-offs end to end (the CI smoke step asserts ≥ 1
    // priced KV transfer in the manifest's `handoff` section).
    let disagg_fleet = ScenarioSpec::new("disagg_fleet", PlatformSpec::wsc(4))
        .with_mapping(MappingSpec::er(4))
        .with_model(ModelSpec::preset("tiny"))
        .with_engine(
            EngineSpec::default()
                .with_seed(241)
                .with_workload(WorkloadMix::Blend(vec![
                    (Scenario::Chat, 1.0),
                    (Scenario::Privacy, 1.0),
                ]))
                .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 128, 0.0)))
                .with_kv_hbm_fraction(1.0e-3),
        )
        .with_fleet(
            FleetSpec::new(4, RouterPolicy::LeastQueueDepth, 2.0e4)
                .with_roles(vec![
                    ReplicaRole::Prefill,
                    ReplicaRole::Prefill,
                    ReplicaRole::Decode,
                    ReplicaRole::Decode,
                ])
                .with_decode_platform(PlatformSpec::dgx(1), MappingSpec::cluster(8)),
        )
        .with_iterations(400);

    // Speculative dispatch at fleet scale (README "routing quickstart" /
    // DESIGN.md §14): the mega-fleet shape under 4× arrival bursts, with
    // every request raced as `speculative:k=2` — two copies dispatched to
    // the two least-loaded replicas, the first first-token wins, and the
    // loser copy is cancelled through the eviction path with its KV
    // released. The burst cycle (200 µs period, 50 µs burst) fits several
    // cycles inside even the `--quick`-capped 250-round smoke run (~1 ms
    // simulated), so the manifest always carries the `speculative` section
    // with non-zero race and cancellation counts (the CI smoke step
    // asserts ≥ 1 dispatched group).
    let speculative_fleet = ScenarioSpec::new("speculative_fleet", PlatformSpec::wsc(4))
        .with_mapping(MappingSpec::er(4))
        .with_model(ModelSpec::preset("tiny"))
        .with_engine(
            EngineSpec::default()
                .with_seed(263)
                .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
                .with_batch(BatchSpec::Serving(
                    ServingSpec::hybrid(2048, 128, 0.0)
                        .with_summary(SummaryMode::Streaming)
                        .with_workload(WorkloadSpec::new(ArrivalSourceSpec::Burst {
                            period: 2.0e-4,
                            burst_duration: 5.0e-5,
                            quiet_factor: 0.5,
                            burst_factor: 4.0,
                        })),
                ))
                .with_kv_hbm_fraction(1.0e-3),
        )
        .with_fleet(FleetSpec::new(
            64,
            RouterPolicy::Speculative { k: 2 },
            1.0e6,
        ))
        .with_iterations(2000);

    vec![
        single_wafer,
        multi_wafer,
        dgx_baseline,
        fleet_p2c,
        rate_sweep,
        mega_fleet,
        chaos_fleet,
        trace_replay,
        bursty_tenants,
        disagg_fleet,
        speculative_fleet,
    ]
}

fn main() -> std::io::Result<()> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios");
    std::fs::create_dir_all(&dir)?;
    for spec in canonical_scenarios() {
        let path = dir.join(format!("{}.json", spec.name));
        std::fs::write(&path, spec.to_json_text())?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
