//! Quickstart: build a wafer, map a model onto it with ER-Mapping, and
//! simulate a few inference iterations with the NI-Balancer.
//!
//! Run with: `cargo run --release --example quickstart`

use moentwine::core::balancer::BalancerKind;
use moentwine::core::engine::{EngineConfig, InferenceEngine};
use moentwine::prelude::*;

fn main() {
    // 1. A 4x4 wafer of B200-class dies with Dojo-like interconnect.
    let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
    let table = RouteTable::build(&topo);
    println!("platform: {} ({} devices)", topo.name(), topo.num_devices());

    // 2. Co-design the attention/MoE mapping: Entwined Ring Mapping with a
    //    2x2 TP shape (TP=4, DP=4, EP=16).
    let dims = topo.mesh_dims().expect("wafer topology");
    let baseline = BaselineMapping::new(dims, TpShape::new(2, 2))
        .expect("shape tiles the wafer")
        .plan();
    let er = ErMapping::new(dims, TpShape::new(2, 2))
        .expect("shape tiles the wafer")
        .plan();
    println!(
        "average token-fetch hops: baseline {:.2} vs ER {:.2} (paper: 2.7 vs 1.3)",
        baseline.average_ftd_hops(&topo),
        er.average_ftd_hops(&topo),
    );
    println!(
        "FTD intersections: baseline {} vs ER {}",
        baseline.ftd_intersections(&topo),
        er.ftd_intersections(&topo),
    );

    // 3. Simulate DeepSeek-V3 decode iterations with the NI-Balancer.
    let model = ModelConfig::deepseek_v3();
    let config = EngineConfig::new(model).with_balancer(BalancerKind::NonInvasive);
    let mut engine = InferenceEngine::new(&topo, &table, &er, config);
    let summary = engine.run(20);

    println!("\nafter 20 iterations:");
    println!(
        "  mean iteration time : {:.3} ms",
        summary.mean_iteration_time * 1e3
    );
    println!(
        "  all-to-all per iter : {:.3} ms",
        summary.mean_all_to_all * 1e3
    );
    println!(
        "  MoE compute per iter: {:.3} ms",
        summary.mean_moe_compute * 1e3
    );
    println!(
        "  migration stall     : {:.3} ms (non-invasive: always 0)",
        summary.mean_migration_stall * 1e3
    );
    println!("  load ratio (max/avg): {:.2}", summary.mean_load_ratio);
    println!("  migrations completed: {}", summary.migrations_completed);
}
