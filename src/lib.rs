//! # MoEntwine
//!
//! A reproduction of *"MoEntwine: Unleashing the Potential of Wafer-Scale
//! Chips for Large-Scale Expert Parallel Inference"* (HPCA 2026): a complete
//! simulation stack for studying mixture-of-experts (MoE) inference on
//! wafer-scale chips (WSCs), plus the paper's two contributions —
//! **ER-Mapping** (entwined-ring co-mapping of attention and MoE layers) and
//! the **NI-Balancer** (non-invasive expert-migration load balancer).
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`topology`] — meshes, multi-wafer grids, DGX/NVL72 clusters, routing.
//! * [`sim`] — flow-level discrete-event network simulator and the fast
//!   analytical congestion estimator.
//! * [`collectives`] — all-reduce / reduce-scatter / all-gather / all-to-all
//!   schedules, including entwined multi-hop rings and hierarchical variants.
//! * [`model`] — MoE model configurations (Table I of the paper) and the
//!   roofline compute/memory cost model.
//! * [`workload`] — scenario-driven expert-selection traces, request arrival
//!   processes, and batch schedulers.
//! * [`core`] — Full Token Domain analysis, ER/HER-Mapping, the NI-Balancer,
//!   and the end-to-end inference engine.
//!
//! # Quickstart
//!
//! ```
//! use moentwine::prelude::*;
//!
//! // A 4x4 wafer (Mesh::new takes the square side length) with TP=4
//! // attention groups shaped 2x2 and EP=16 MoE.
//! let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
//! let mapping = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2)).unwrap();
//! let plan = mapping.plan();
//! assert_eq!(plan.ftds().len(), 4);
//! // ER-Mapping's compact FTDs average 1.33 token-fetch hops (paper Fig. 8c).
//! let hops = plan.average_ftd_hops(&topo);
//! assert!((hops - 4.0 / 3.0).abs() < 1e-9);
//!
//! // Communication pricing is pluggable (DESIGN.md §5): the same all-reduce
//! // schedule priced at all three fidelity tiers — closed form, memoizing
//! // cached DES, and full flow-level DES.
//! let sched = plan.all_reduce_schedule(&topo, 2.0e6);
//! let fast = CongestionBackend::Analytic.build(&topo).price_schedule(&sched);
//! let full = CongestionBackend::FlowSim.build(&topo).price_schedule(&sched);
//! assert!((fast.total_time - full.total_time).abs() / full.total_time < 0.01);
//! // The cached tier replays DES estimates for repeated schedule shapes:
//! // identical numbers, priced once ("flow-sim-cached" also parses).
//! let cached = "flow-sim-cached".parse::<CongestionBackend>().unwrap().build(&topo);
//! assert_eq!(cached.price_schedule(&sched), full);
//! assert_eq!(cached.price_schedule(&sched), full); // cache hit: no re-simulation
//! ```

pub use moe_model as model;
pub use moe_workload as workload;
pub use moentwine_core as core;
pub use moentwine_spec as spec;
pub use wsc_collectives as collectives;
pub use wsc_sim as sim;
pub use wsc_topology as topology;

/// Commonly used items from across the workspace.
pub mod prelude {
    pub use moe_model::{DeviceSpec, ModelConfig, Precision};
    pub use moe_workload::{
        ArrivalSpec, BatchScheduler, ClassSpec, Phase, ReplicaSnapshot, Request, RequestClass,
        RequestId, RequestRecord, Router, RouterPolicy, Scenario, SchedulingMode, ServingQueue,
        TraceGenerator, TraceRequest, WorkloadMix, WorkloadProfile,
    };
    pub use moentwine_core::balancer::{
        BalancerKind, GreedyBalancer, TopologyAwareBalancer, Trigger,
    };
    pub use moentwine_core::comm::{A2aModel, ClusterLayout, ParallelLayout};
    pub use moentwine_core::engine::{
        BatchMode, EngineConfig, InferenceEngine, P2Quantile, RunSummary, ServingSummary,
        StreamingSummary, SummaryMode,
    };
    pub use moentwine_core::fleet::{
        validate_fleet_events, validate_fleet_events_for_roles, Fleet, FleetAvailability,
        FleetConfig, FleetEvent, FleetEventKind, FleetHandoff, FleetScheduler, FleetSummary,
        PlatformRefs, ReplicaPool, ReplicaRole, ReplicaState, SerialReplicaPool,
    };
    pub use moentwine_core::mapping::{
        BaselineMapping, ErMapping, HierarchicalErMapping, MappingKind, MappingPlan, TpShape,
    };
    pub use moentwine_core::ConfigError;
    // The declarative scenario layer (DESIGN.md §9). The materialized
    // runner `moentwine_spec::Scenario` is deliberately not re-exported
    // here: `Scenario` already names the workload enum in this prelude —
    // reach it as `moentwine::spec::Scenario`.
    pub use moentwine_spec::{
        BatchSpec, EngineSpec, FleetSpec, MappingSpec, ModelSpec, PlatformSpec, ScenarioOutcome,
        ScenarioSpec, ServingSpec, SweepSpec,
    };
    pub use wsc_sim::{
        AnalyticModel, CachedBackend, CongestionBackend, CongestionModel, FlowSchedule,
        FlowSimBackend, NetworkSim,
    };
    pub use wsc_topology::RouteTable;
    pub use wsc_topology::{
        DeviceId, DgxCluster, FlatSwitch, Mesh, MeshDims, MultiWafer, PlatformParams, Topology,
    };
}
