#!/usr/bin/env bash
# Byte-determinism gate for figure/manifest-producing binaries.
#
# Runs CMD once per entry in RUNS (default: twice), after each run copies
# every file matched by the --output globs into a per-run snapshot
# directory, and byte-compares each snapshot against the first with cmp.
# Any divergence — a differing byte, a manifest present in one run but
# not another — fails the gate.
#
# Usage:
#   ci/determinism_gate.sh --output GLOB [--output GLOB ...] \
#       [--runs "LABEL[:ARGS],LABEL[:ARGS],..."] -- CMD [ARGS ...]
#
# Each comma-separated RUNS entry is LABEL or LABEL:EXTRA_ARGS; the extra
# args are appended to CMD for that run only. The default
#   --runs "first,second"
# is the plain "run twice, cmp" pattern. The serial-vs-parallel
# worker-pool contract is one flag away:
#   --runs "serial:--threads 1,parallel:--threads 4"
#
# Examples (as used by .github/workflows/ci.yml):
#   ci/determinism_gate.sh --output target/figs/serve_sweep.json -- \
#       cargo run --release -p moentwine-bench --bin serve_sweep -- --quick
#   ci/determinism_gate.sh --output 'target/figs/scenario/*.json' \
#       --runs "serial:--threads 1 parallel:--threads 4" -- \
#       cargo run --release -p moentwine-bench --bin scenario -- \
#       examples/scenarios/*.json --quick
set -euo pipefail

outputs=()
runs="first,second"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --output)
      [[ $# -ge 2 ]] || { echo "determinism_gate: --output needs a glob" >&2; exit 2; }
      outputs+=("$2")
      shift 2
      ;;
    --runs)
      [[ $# -ge 2 ]] || { echo "determinism_gate: --runs needs a spec" >&2; exit 2; }
      runs="$2"
      shift 2
      ;;
    --)
      shift
      break
      ;;
    *)
      echo "determinism_gate: unknown option $1 (expected --output/--runs/--)" >&2
      exit 2
      ;;
  esac
done
[[ ${#outputs[@]} -ge 1 ]] || { echo "determinism_gate: at least one --output glob required" >&2; exit 2; }
[[ $# -ge 1 ]] || { echo "determinism_gate: no command after --" >&2; exit 2; }

snapdir="$(mktemp -d "${TMPDIR:-/tmp}/determinism_gate.XXXXXX")"
trap 'rm -rf "$snapdir"' EXIT

# Collect the files matching every --output glob into dest/, flattening
# paths (slashes become double underscores) so globs across directories
# cannot collide. A glob matching nothing is a gate failure: the run was
# supposed to produce these files.
snapshot() {
  local dest="$1" matched glob file
  mkdir -p "$dest"
  for glob in "${outputs[@]}"; do
    matched=0
    for file in $glob; do
      [[ -f "$file" ]] || continue
      matched=1
      cp "$file" "$dest/${file//\//__}"
    done
    if [[ "$matched" -eq 0 ]]; then
      echo "determinism_gate: --output '$glob' matched no files after the run" >&2
      exit 1
    fi
  done
}

IFS=',' read -ra run_specs <<<"$runs"
first_label=""
for spec in "${run_specs[@]}"; do
  label="${spec%%:*}"
  extra=""
  [[ "$spec" == *:* ]] && extra="${spec#*:}"
  echo "determinism_gate: run '$label'${extra:+ (extra args: $extra)}"
  # shellcheck disable=SC2086 -- extra is intentionally word-split
  "$@" $extra
  snapshot "$snapdir/$label"
  if [[ -z "$first_label" ]]; then
    first_label="$label"
    continue
  fi
  # Byte-compare this run's snapshot against the first, both directions
  # (a file present in one snapshot but not the other is also a failure).
  for dir_a in "$snapdir/$first_label" "$snapdir/$label"; do
    dir_b="$snapdir/$label"
    [[ "$dir_a" == "$dir_b" ]] && dir_b="$snapdir/$first_label"
    for file in "$dir_a"/*; do
      name="$(basename "$file")"
      if [[ ! -f "$dir_b/$name" ]]; then
        echo "determinism_gate: ${name//__//} produced by run '$(basename "$dir_a")' only" >&2
        exit 1
      fi
    done
  done
  for file in "$snapdir/$first_label"/*; do
    name="$(basename "$file")"
    if ! cmp "$file" "$snapdir/$label/$name"; then
      echo "determinism_gate: ${name//__//} differs between runs '$first_label' and '$label'" >&2
      exit 1
    fi
  done
  echo "determinism_gate: run '$label' byte-identical to '$first_label'"
done
