#!/usr/bin/env python3
"""Perf-baseline regression gate.

Compares the speedup ratios in freshly-written `--quick` manifests
(target/figs/bench_backend.json, target/figs/BENCH_fleet.json) against the
committed baseline `results/bench_baseline.json` and fails when any gated
ratio regresses by more than 2x (fresh < baseline / 2). The bins' own
absolute floors (cached >= 5x, heap >= 2x) still apply; this gate catches
relative drift long before a ratio falls through those floors.

The ratios are wall-over-wall on the same machine, so they transfer
across hosts far better than absolute times — but they are still noisy,
hence the generous 2x slack. Writes the full comparison (every gate,
fresh vs baseline, margin) to target/figs/baseline_diff.json so CI can
upload it alongside the figure manifests.

Usage: python3 ci/check_perf_baseline.py [baseline.json]
"""

import json
import sys
from pathlib import Path

REGRESSION_FACTOR = 2.0
DIFF_PATH = Path("target/figs/baseline_diff.json")


def main() -> int:
    baseline_path = Path(sys.argv[1] if len(sys.argv) > 1 else "results/bench_baseline.json")
    with open(baseline_path) as f:
        baseline = json.load(f)
    if baseline.get("schema") != "moentwine/bench_baseline/v1":
        sys.exit(f"{baseline_path}: unexpected schema {baseline.get('schema')!r}")
    gates = baseline.get("gates", [])
    if not gates:
        sys.exit(f"{baseline_path}: no gates to check")

    diff = {
        "schema": "moentwine/baseline_diff/v1",
        "baseline": str(baseline_path),
        "regression_factor": REGRESSION_FACTOR,
        "gates": [],
    }
    failures = []
    manifests = {}
    for gate in gates:
        name, manifest_path, field = gate["name"], gate["manifest"], gate["field"]
        old = float(gate["baseline"])
        if manifest_path not in manifests:
            with open(manifest_path) as f:
                manifests[manifest_path] = json.load(f)
        fresh = manifests[manifest_path].get(field)
        if not isinstance(fresh, (int, float)):
            sys.exit(f"{manifest_path}: gated field {field!r} missing or non-numeric: {fresh!r}")
        floor = old / REGRESSION_FACTOR
        ok = fresh >= floor
        entry = {
            "name": name,
            "manifest": manifest_path,
            "field": field,
            "baseline": old,
            "fresh": fresh,
            "floor": floor,
            "ratio_vs_baseline": fresh / old if old else None,
            "ok": ok,
        }
        diff["gates"].append(entry)
        verdict = "ok" if ok else "REGRESSED"
        print(
            f"[baseline] {name}: fresh {fresh:.2f}x vs baseline {old:.2f}x "
            f"(floor {floor:.2f}x) — {verdict}"
        )
        if not ok:
            failures.append(name)

    DIFF_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(DIFF_PATH, "w") as f:
        json.dump(diff, f, indent=2)
        f.write("\n")
    print(f"[baseline] wrote {DIFF_PATH}")

    if failures:
        print(
            f"[baseline] FAIL: {', '.join(failures)} regressed more than "
            f"{REGRESSION_FACTOR}x vs {baseline_path}; see {DIFF_PATH}. If the "
            "slowdown is intentional, re-bless the baseline from fresh --quick runs.",
            file=sys.stderr,
        )
        return 1
    print(f"[baseline] OK: {len(gates)} gates within {REGRESSION_FACTOR}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
