//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real serde
//! derive macros are unavailable. This proc-macro crate accepts the same
//! derive syntax — including `#[serde(...)]` helper attributes — and emits
//! nothing: the sibling `serde` shim blanket-implements the `Serialize` /
//! `Deserialize` marker traits for every type, so no per-type impl is
//! needed. Swapping in the real serde later requires only replacing the two
//! shim path dependencies.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and produces no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and produces no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
