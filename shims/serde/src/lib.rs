//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this shim keeps the
//! workspace compiling without the real serde. `Serialize` / `Deserialize`
//! are marker traits blanket-implemented for every type, and the derive
//! macros (re-exported from the sibling `serde_derive` shim) expand to
//! nothing. Code that only *derives* the traits — all of this workspace —
//! builds unchanged; actual serialization goes through the hand-rolled JSON
//! layer in `moentwine-bench` (`moentwine_bench::json`). Replacing the shim
//! with the real serde is a two-line manifest change.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization sub-module stand-ins.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}

/// Serialization sub-module stand-ins.
pub mod ser {
    pub use crate::Serialize;
}
