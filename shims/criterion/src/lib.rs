//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this shim keeps the
//! workspace's `benches/` targets compiling and runnable without the real
//! criterion. It implements the API subset the benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::{iter, iter_batched}`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — as a
//! plain wall-clock harness: each benchmark is calibrated to a short target
//! duration, then timed over a handful of samples, and the median per-call
//! time is printed. No statistics, plots, or baselines; swap the path
//! dependency for the real criterion to get those back.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints (accepted for API compatibility; batches are always
/// per-iteration here).
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Throughput annotation (accepted and ignored).
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes, decimal multiple variant.
    BytesDecimal(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier carrying only a parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing engine handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    target: Duration,
    /// Median per-call time of the last `iter*` run, for reporting.
    last_estimate: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples: samples.max(3),
            target: Duration::from_millis(20),
            last_estimate: None,
        }
    }

    /// Times `routine`, calibrating the per-sample iteration count to the
    /// target sample duration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibration: one untimed call, then estimate calls per sample.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (self.target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed() / per_sample as u32);
        }
        samples.sort_unstable();
        self.last_estimate = Some(samples[samples.len() / 2]);
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.samples);
        // Calibrate with one untimed call.
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        self.last_estimate = Some(samples[samples.len() / 2]);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(full_id: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    match b.last_estimate {
        Some(est) => println!("bench {full_id:<50} {:>12}/iter", fmt_duration(est)),
        None => println!("bench {full_id:<50} (no measurement)"),
    }
}

/// Top-level benchmark registry/driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// No-op CLI integration (the real crate parses criterion flags).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Runs a named benchmark over an input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.id, self.sample_size, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates throughput (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs a benchmark over an input within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_an_estimate() {
        let mut c = Criterion::default();
        c.sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
