//! Offline stand-in for `rand` (0.8-era API subset).
//!
//! The build environment cannot reach crates.io. This shim provides the
//! surface the workspace uses — `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::shuffle` — backed by xoshiro256++ seeded through
//! SplitMix64. Streams are deterministic per seed but are **not** bit-for-bit
//! identical to the real `StdRng` (ChaCha12); all workspace tests assert
//! behavioural properties, not golden random values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly from an entire type (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f32::from_rng(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(u64, u32, u16, u8, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                if span == 0 {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
signed_sample_range!(i64, i32, i16, i8, isize);

/// The user-facing sampling interface; blanket-implemented for every core
/// source.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution (`[0, 1)` for
    /// floats, full width for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Sr: SampleRange<T>>(&mut self, range: Sr) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for the real
    /// ChaCha12-based `StdRng`; same API, different stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro
            // authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..=4);
            assert!(y <= 4);
            let z = rng.gen_range(-1.0f64 + 2.0..5.0);
            assert!((1.0..5.0).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
