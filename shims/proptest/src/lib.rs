//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io. This shim keeps the
//! workspace's property tests compiling and *meaningful*: the `proptest!`
//! macro expands each property into a `#[test]` that samples a fixed number
//! of seeded random cases from the declared strategies (ranges, tuples,
//! `collection::vec`). Failing inputs are reported through the panic message
//! via a case banner, but there is **no shrinking** — swap the path
//! dependency for the real proptest to get minimal counterexamples.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each property runs.
pub const DEFAULT_CASES: usize = 64;

/// The deterministic source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for one test case.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // Mix the test name so different properties see different streams.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.rng().gen_range(self.clone())
    }
}

/// A strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vector of `elem` values with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.rng().gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy, TestRng,
    };
}

/// Expands properties into seeded multi-case `#[test]` functions.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::DEFAULT_CASES as u64 {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` that names the failing property style of proptest.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(pair in (0usize..4, 1u32..9), v in crate::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(pair.0 < 4);
            prop_assert!((1..9).contains(&pair.1));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn distinct_cases_see_distinct_inputs() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 1);
        let x = (0u64..u64::MAX).sample(&mut a);
        let y = (0u64..u64::MAX).sample(&mut b);
        assert_ne!(x, y);
    }
}
