//! Mixture-of-experts model configurations and accelerator cost models.
//!
//! This crate substitutes for the paper's profile-driven methodology
//! (§VI-A2: vLLM request profiles + FlashInfer kernel measurements on a
//! B200). Instead of measured kernel tables we use a **roofline** model over
//! a B200-parameter device: an operation's time is the maximum of its
//! compute time (FLOPs over achievable throughput) and its memory time
//! (bytes over achievable HBM bandwidth). This reproduces the
//! compute/memory-bound crossover that drives the paper's E/D-ratio analysis
//! (Fig. 4): at high expert-to-device ratios decode iterations are dominated
//! by expert-weight reads.
//!
//! The five evaluation models of Table I are provided as presets whose
//! single-expert sizes match the paper exactly (42 / 18 / 23 / 189 / 288 MiB
//! at INT8).
//!
//! # Example
//!
//! ```
//! use moe_model::{ModelConfig, Precision};
//!
//! let ds = ModelConfig::deepseek_v3();
//! let mib = ds.expert_bytes(Precision::Int8) / (1024.0 * 1024.0);
//! assert_eq!(mib.round(), 42.0);
//! assert_eq!(ds.experts_per_token, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod device;
pub mod precision;
pub mod roofline;

pub use config::ModelConfig;
pub use device::DeviceSpec;
pub use precision::Precision;
pub use roofline::{CostModel, Efficiency, InferencePhase, TimeBreakdown};
