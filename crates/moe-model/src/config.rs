//! Model configurations (the paper's Table I).

use serde::{Deserialize, Serialize};

use crate::precision::Precision;

/// Architecture of an MoE large language model.
///
/// Dimensions are chosen so that derived quantities match the paper's
/// Table I (single-expert size, expert counts, layer counts) and the public
/// model cards of the five evaluation models.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model name, e.g. `"DeepSeek-V3"`.
    pub name: String,
    /// Total parameter count (informational), in billions.
    pub total_params_b: f64,
    /// Total transformer layers.
    pub num_layers: u32,
    /// Layers whose MLP is a sparse MoE layer.
    pub num_sparse_layers: u32,
    /// Model (residual stream) hidden size.
    pub hidden_size: u32,
    /// Per-expert FFN intermediate size.
    pub moe_intermediate_size: u32,
    /// Number of routed experts per MoE layer.
    pub num_experts: u32,
    /// Experts activated per token (top-k).
    pub experts_per_token: u32,
    /// Shared (always-active) experts per MoE layer.
    pub num_shared_experts: u32,
    /// Attention heads.
    pub num_attention_heads: u32,
    /// Key/value heads (GQA; MLA models approximated by an equivalent
    /// compressed KV width).
    pub num_kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
}

impl ModelConfig {
    /// A scaled-down 1B/16-expert configuration for tests and smoke
    /// sweeps: serving and routing dynamics are model-size independent,
    /// and this shape prices hundreds of engine iterations in
    /// milliseconds. The golden-trace suites pin their snapshots against
    /// exactly these values — changing them invalidates every golden.
    pub fn tiny() -> Self {
        ModelConfig {
            name: "tiny".into(),
            total_params_b: 1.0,
            num_layers: 4,
            num_sparse_layers: 4,
            hidden_size: 1024,
            moe_intermediate_size: 512,
            num_experts: 16,
            experts_per_token: 2,
            num_shared_experts: 0,
            num_attention_heads: 8,
            num_kv_heads: 2,
            head_dim: 128,
        }
    }

    /// DeepSeek-V3 / R1: 671B, 256 experts, 8 active, 42 MiB/expert.
    pub fn deepseek_v3() -> Self {
        ModelConfig {
            name: "DeepSeek-V3".into(),
            total_params_b: 671.0,
            num_layers: 61,
            num_sparse_layers: 58,
            hidden_size: 7168,
            moe_intermediate_size: 2048,
            num_experts: 256,
            experts_per_token: 8,
            num_shared_experts: 1,
            num_attention_heads: 128,
            num_kv_heads: 16, // MLA compressed-KV equivalent
            head_dim: 128,
        }
    }

    /// Qwen3-235B-A22B: 128 experts, 8 active, 18 MiB/expert.
    pub fn qwen3_235b() -> Self {
        ModelConfig {
            name: "Qwen3".into(),
            total_params_b: 235.0,
            num_layers: 94,
            num_sparse_layers: 94,
            hidden_size: 4096,
            moe_intermediate_size: 1536,
            num_experts: 128,
            experts_per_token: 8,
            num_shared_experts: 0,
            num_attention_heads: 64,
            num_kv_heads: 4,
            head_dim: 128,
        }
    }

    /// DeepSeek-V2: 236B, 160 experts, 6 active, 23 MiB/expert.
    pub fn deepseek_v2() -> Self {
        ModelConfig {
            name: "DeepSeek-V2".into(),
            total_params_b: 236.0,
            num_layers: 60,
            num_sparse_layers: 59,
            hidden_size: 5120,
            moe_intermediate_size: 1536,
            num_experts: 160,
            experts_per_token: 6,
            num_shared_experts: 2,
            num_attention_heads: 128,
            num_kv_heads: 16,
            head_dim: 128,
        }
    }

    /// DBRX-Instruct: 132B, 16 experts, 4 active, 189 MiB/expert.
    pub fn dbrx() -> Self {
        ModelConfig {
            name: "DBRX".into(),
            total_params_b: 132.0,
            num_layers: 40,
            num_sparse_layers: 40,
            hidden_size: 6144,
            moe_intermediate_size: 10752,
            num_experts: 16,
            experts_per_token: 4,
            num_shared_experts: 0,
            num_attention_heads: 48,
            num_kv_heads: 8,
            head_dim: 128,
        }
    }

    /// Mixtral-8x22B: 141B, 8 experts, 2 active, 288 MiB/expert.
    pub fn mixtral_8x22b() -> Self {
        ModelConfig {
            name: "Mixtral".into(),
            total_params_b: 141.0,
            num_layers: 56,
            num_sparse_layers: 56,
            hidden_size: 6144,
            moe_intermediate_size: 16384,
            num_experts: 8,
            experts_per_token: 2,
            num_shared_experts: 0,
            num_attention_heads: 48,
            num_kv_heads: 8,
            head_dim: 128,
        }
    }

    /// All five evaluation models of Table I, in the paper's order.
    pub fn evaluation_suite() -> Vec<ModelConfig> {
        vec![
            Self::deepseek_v3(),
            Self::qwen3_235b(),
            Self::deepseek_v2(),
            Self::dbrx(),
            Self::mixtral_8x22b(),
        ]
    }

    /// Parameters in one routed expert: gate, up, and down projections.
    pub fn expert_params(&self) -> f64 {
        3.0 * self.hidden_size as f64 * self.moe_intermediate_size as f64
    }

    /// Bytes of one routed expert's weights at `precision`.
    pub fn expert_bytes(&self, precision: Precision) -> f64 {
        self.expert_params() * precision.bytes()
    }

    /// FLOPs to push one token through one expert (2 FLOPs per MAC).
    pub fn expert_flops_per_token(&self) -> f64 {
        2.0 * self.expert_params()
    }

    /// Parameters in the attention block (Q, K, V, O projections).
    pub fn attention_params(&self) -> f64 {
        let h = self.hidden_size as f64;
        let q = h * (self.num_attention_heads * self.head_dim) as f64;
        let kv = 2.0 * h * (self.num_kv_heads * self.head_dim) as f64;
        let o = (self.num_attention_heads * self.head_dim) as f64 * h;
        q + kv + o
    }

    /// Bytes of KV-cache appended per token at `precision`.
    pub fn kv_bytes_per_token(&self, precision: Precision) -> f64 {
        2.0 * (self.num_kv_heads * self.head_dim) as f64 * precision.bytes()
    }

    /// Bytes of one token's hidden-state activation at `precision` (the unit
    /// of dispatch/combine communication volume).
    pub fn token_bytes(&self, precision: Precision) -> f64 {
        self.hidden_size as f64 * precision.bytes()
    }

    /// Bytes of KV-cache one resident token occupies across **all** layers
    /// at `precision` — the unit of the serving layer's admission budget
    /// (every layer caches its own K/V for every attended token).
    pub fn kv_bytes_per_token_all_layers(&self, precision: Precision) -> f64 {
        self.kv_bytes_per_token(precision) * self.num_layers as f64
    }

    /// How many KV-cache tokens fit in `budget_bytes` of memory at
    /// `precision` — the capacity that gates request admission in the
    /// serving layer (`moe_workload::ServingQueue`).
    ///
    /// Returns 0 for non-positive budgets.
    pub fn kv_token_capacity(&self, budget_bytes: f64, precision: Precision) -> u64 {
        let per_token = self.kv_bytes_per_token_all_layers(precision);
        if budget_bytes <= 0.0 || per_token <= 0.0 {
            return 0;
        }
        (budget_bytes / per_token).floor() as u64
    }

    /// The expert-to-device ratio `E/D` for a given device count.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0`.
    pub fn ed_ratio(&self, devices: usize) -> f64 {
        assert!(devices > 0, "device count must be positive");
        self.num_experts as f64 / devices as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: f64 = 1024.0 * 1024.0;

    #[test]
    fn expert_sizes_match_table_one() {
        // Paper Table I: 42 / 18 / 23 / 189 / 288 MB per expert (INT8).
        let cases = [
            (ModelConfig::deepseek_v3(), 42.0),
            (ModelConfig::qwen3_235b(), 18.0),
            (ModelConfig::deepseek_v2(), 23.0),
            (ModelConfig::dbrx(), 189.0),
            (ModelConfig::mixtral_8x22b(), 288.0),
        ];
        for (config, expect_mib) in cases {
            let mib = config.expert_bytes(Precision::Int8) / MIB;
            assert!(
                (mib - expect_mib).abs() <= 0.5,
                "{}: {mib:.1} MiB != {expect_mib}",
                config.name
            );
        }
    }

    #[test]
    fn activation_ratios_match_table_one() {
        let cases = [
            (ModelConfig::deepseek_v3(), 8, 256),
            (ModelConfig::qwen3_235b(), 8, 128),
            (ModelConfig::deepseek_v2(), 6, 160),
            (ModelConfig::dbrx(), 4, 16),
            (ModelConfig::mixtral_8x22b(), 2, 8),
        ];
        for (config, active, total) in cases {
            assert_eq!(config.experts_per_token, active, "{}", config.name);
            assert_eq!(config.num_experts, total, "{}", config.name);
        }
    }

    #[test]
    fn sparse_layer_counts_match_table_one() {
        let cases = [
            (ModelConfig::deepseek_v3(), 58, 61),
            (ModelConfig::qwen3_235b(), 94, 94),
            (ModelConfig::deepseek_v2(), 59, 60),
            (ModelConfig::dbrx(), 40, 40),
            (ModelConfig::mixtral_8x22b(), 56, 56),
        ];
        for (config, sparse, total) in cases {
            assert_eq!(config.num_sparse_layers, sparse, "{}", config.name);
            assert_eq!(config.num_layers, total, "{}", config.name);
        }
    }

    #[test]
    fn ed_ratio() {
        let ds = ModelConfig::deepseek_v3();
        assert_eq!(ds.ed_ratio(32), 8.0);
        assert_eq!(ds.ed_ratio(256), 1.0);
        assert!((ds.ed_ratio(72) - 256.0 / 72.0).abs() < 1e-12);
    }

    #[test]
    fn token_bytes_fp16() {
        let q = ModelConfig::qwen3_235b();
        assert_eq!(q.token_bytes(Precision::Fp16), 8192.0);
    }

    #[test]
    fn evaluation_suite_order() {
        let names: Vec<String> = ModelConfig::evaluation_suite()
            .into_iter()
            .map(|m| m.name)
            .collect();
        assert_eq!(
            names,
            ["DeepSeek-V3", "Qwen3", "DeepSeek-V2", "DBRX", "Mixtral"]
        );
    }

    #[test]
    #[should_panic(expected = "device count must be positive")]
    fn ed_ratio_zero_devices_panics() {
        ModelConfig::deepseek_v3().ed_ratio(0);
    }

    #[test]
    fn kv_capacity_scales_with_budget() {
        let q = ModelConfig::qwen3_235b();
        // 4 KV heads × 128 dim × 2 (K+V) × 2 bytes × 94 layers per token.
        let per_token = q.kv_bytes_per_token_all_layers(Precision::Fp16);
        assert_eq!(per_token, 4.0 * 128.0 * 2.0 * 2.0 * 94.0);
        assert_eq!(
            q.kv_token_capacity(per_token * 1000.0, Precision::Fp16),
            1000
        );
        // Fractional tokens round down; degenerate budgets hold nothing.
        assert_eq!(q.kv_token_capacity(per_token * 2.5, Precision::Fp16), 2);
        assert_eq!(q.kv_token_capacity(0.0, Precision::Fp16), 0);
        assert_eq!(q.kv_token_capacity(-1.0, Precision::Fp16), 0);
    }
}
