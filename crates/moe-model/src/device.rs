//! Accelerator device specifications.

use serde::{Deserialize, Serialize};

use crate::precision::Precision;

/// Peak capabilities of one accelerator device (a GPU or an equivalent
/// wafer die).
///
/// The paper assumes every WSC die is equivalent to an NVIDIA B200
/// (§VI-A1): 2250 TFLOPS FP16 dense, 180 GB HBM at 8 TB/s. INT8 throughput
/// is taken as 2× FP16, per B200 specifications.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: String,
    /// Peak dense FP16 throughput, FLOP/s.
    pub fp16_flops: f64,
    /// Peak dense INT8 throughput, OP/s.
    pub int8_ops: f64,
    /// HBM capacity, bytes.
    pub hbm_bytes: f64,
    /// HBM bandwidth, bytes/s.
    pub hbm_bandwidth: f64,
}

impl DeviceSpec {
    /// The paper's B200-equivalent device.
    pub fn b200() -> Self {
        DeviceSpec {
            name: "B200".to_string(),
            fp16_flops: 2250.0e12,
            int8_ops: 4500.0e12,
            hbm_bytes: 180.0e9,
            hbm_bandwidth: 8.0e12,
        }
    }

    /// Peak math throughput at a given precision, OP/s.
    pub fn peak_ops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fp16 => self.fp16_flops,
            Precision::Int8 => self.int8_ops,
        }
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::b200()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b200_matches_paper() {
        let d = DeviceSpec::b200();
        assert_eq!(d.fp16_flops, 2250.0e12);
        assert_eq!(d.hbm_bytes, 180.0e9);
        assert_eq!(d.hbm_bandwidth, 8.0e12);
    }

    #[test]
    fn int8_is_double_fp16() {
        let d = DeviceSpec::b200();
        assert_eq!(
            d.peak_ops(Precision::Int8),
            2.0 * d.peak_ops(Precision::Fp16)
        );
    }
}
