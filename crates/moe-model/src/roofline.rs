//! Roofline compute/memory cost model.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;
use crate::device::DeviceSpec;
use crate::precision::Precision;

/// Fraction of peak hardware capability that kernels actually achieve.
///
/// Real GEMM/attention kernels reach 40–70 % of peak math and 70–90 % of
/// peak HBM bandwidth; the defaults (0.5 / 0.8) sit in the middle of those
/// ranges. Absolute times shift with these knobs but every paper-shape
/// comparison is a ratio, so the conclusions are insensitive to them.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Efficiency {
    /// Achievable fraction of peak math throughput, in `(0, 1]`.
    pub compute: f64,
    /// Achievable fraction of peak memory bandwidth, in `(0, 1]`.
    pub memory: f64,
}

impl Default for Efficiency {
    fn default() -> Self {
        Efficiency {
            compute: 0.5,
            memory: 0.8,
        }
    }
}

/// Which serving stage an iteration belongs to.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum InferencePhase {
    /// Prompt processing: long sequences, compute-bound.
    Prefill,
    /// Token generation: one token per sequence per iteration, memory-bound.
    Decode,
}

/// A roofline time estimate: the compute and memory components of an
/// operation, assumed perfectly overlapped.
#[derive(Copy, Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Math time, seconds.
    pub compute_time: f64,
    /// Memory-traffic time, seconds.
    pub memory_time: f64,
}

impl TimeBreakdown {
    /// Roofline total: `max(compute, memory)`.
    pub fn total(&self) -> f64 {
        self.compute_time.max(self.memory_time)
    }

    /// Fraction of the total attributable to memory traffic, in `[0, 1]`.
    /// Zero-duration breakdowns report 0.
    pub fn memory_fraction(&self) -> f64 {
        let t = self.compute_time + self.memory_time;
        if t == 0.0 {
            0.0
        } else {
            self.memory_time / t
        }
    }

    /// Element-wise sum (for composing independent operations that execute
    /// back-to-back).
    pub fn plus(&self, other: TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            compute_time: self.compute_time + other.compute_time,
            memory_time: self.memory_time + other.memory_time,
        }
    }
}

/// Roofline cost model over a device specification.
///
/// Precisions follow the paper (§VI-A1): FP16 attention, INT8 linear
/// (expert) operations.
///
/// # Example
///
/// ```
/// use moe_model::{CostModel, DeviceSpec, ModelConfig};
///
/// let cost = CostModel::new(DeviceSpec::b200());
/// let ds = ModelConfig::deepseek_v3();
/// // One expert serving very few tokens is memory-bound...
/// let few = cost.expert_time(&ds, 4.0);
/// assert!(few.memory_time > few.compute_time);
/// // ...but compute-bound at prefill-scale token counts.
/// let many = cost.expert_time(&ds, 16384.0);
/// assert!(many.compute_time > many.memory_time);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CostModel {
    device: DeviceSpec,
    efficiency: Efficiency,
    /// Precision of expert / MLP weights and math.
    pub linear_precision: Precision,
    /// Precision of attention math, KV cache, and activations.
    pub attention_precision: Precision,
}

impl CostModel {
    /// Creates a cost model with default efficiency and the paper's
    /// precision assignment.
    pub fn new(device: DeviceSpec) -> Self {
        CostModel {
            device,
            efficiency: Efficiency::default(),
            linear_precision: Precision::Int8,
            attention_precision: Precision::Fp16,
        }
    }

    /// Replaces the efficiency assumptions.
    ///
    /// # Panics
    ///
    /// Panics if either efficiency is outside `(0, 1]`.
    pub fn with_efficiency(mut self, efficiency: Efficiency) -> Self {
        assert!(
            efficiency.compute > 0.0
                && efficiency.compute <= 1.0
                && efficiency.memory > 0.0
                && efficiency.memory <= 1.0,
            "efficiencies must be in (0, 1]"
        );
        self.efficiency = efficiency;
        self
    }

    /// The device this model prices.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    fn math_rate(&self, precision: Precision) -> f64 {
        self.device.peak_ops(precision) * self.efficiency.compute
    }

    fn mem_rate(&self) -> f64 {
        self.device.hbm_bandwidth * self.efficiency.memory
    }

    /// Time for `tokens` tokens through one expert instance whose weights
    /// are read from HBM once.
    pub fn expert_time(&self, config: &ModelConfig, tokens: f64) -> TimeBreakdown {
        self.moe_device_time(config, tokens, 1.0)
    }

    /// Time for one device's MoE work in one iteration: `tokens` total
    /// routed tokens across `activated_experts` resident experts whose
    /// weights must each be streamed from HBM.
    ///
    /// This is the quantity whose memory term shrinks as EP grows (fewer
    /// experts per device), reproducing the paper's Fig. 4.
    pub fn moe_device_time(
        &self,
        config: &ModelConfig,
        tokens: f64,
        activated_experts: f64,
    ) -> TimeBreakdown {
        let act_bytes = 2.0 * tokens * config.token_bytes(self.attention_precision)
            + tokens * config.moe_intermediate_size as f64 * self.attention_precision.bytes();
        TimeBreakdown {
            compute_time: tokens * config.expert_flops_per_token()
                / self.math_rate(self.linear_precision),
            memory_time: (activated_experts * config.expert_bytes(self.linear_precision)
                + act_bytes)
                / self.mem_rate(),
        }
    }

    /// Attention time for one device in a TP group processing
    /// `batch_tokens` new tokens whose average attended context length is
    /// `avg_context`, with the heads split `tp` ways.
    ///
    /// # Panics
    ///
    /// Panics if `tp == 0`.
    pub fn attention_time(
        &self,
        config: &ModelConfig,
        batch_tokens: f64,
        avg_context: f64,
        tp: usize,
        phase: InferencePhase,
    ) -> TimeBreakdown {
        assert!(tp > 0, "tensor parallel degree must be positive");
        let tp = tp as f64;
        let prec = self.attention_precision;

        // Projection math: Q, K, V, O GEMMs.
        let proj_flops = 2.0 * config.attention_params() * batch_tokens / tp;
        // Score/value math: 2 GEMMs of (heads/tp × head_dim) against context.
        let qk_dim = (config.num_attention_heads * config.head_dim) as f64 / tp;
        let attn_flops = 4.0 * batch_tokens * qk_dim * avg_context;
        // Weights are streamed once per iteration; KV cache is read for
        // decode (for prefill it is produced, and FlashAttention keeps the
        // working set on-chip, so only the write traffic counts).
        let weight_bytes = config.attention_params() * prec.bytes() / tp;
        let kv_per_token = config.kv_bytes_per_token(prec) / tp;
        let kv_bytes = match phase {
            InferencePhase::Decode => batch_tokens * kv_per_token * avg_context,
            InferencePhase::Prefill => batch_tokens * kv_per_token,
        };
        let act_bytes = 2.0 * batch_tokens * config.token_bytes(prec) / tp;

        TimeBreakdown {
            compute_time: (proj_flops + attn_flops) / self.math_rate(prec),
            memory_time: (weight_bytes + kv_bytes + act_bytes) / self.mem_rate(),
        }
    }

    /// Time to read an expert's weights from HBM (the device-local cost of
    /// sourcing an expert migration).
    pub fn expert_read_time(&self, config: &ModelConfig) -> f64 {
        config.expert_bytes(self.linear_precision) / self.mem_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::new(DeviceSpec::b200())
    }

    #[test]
    fn decode_is_memory_bound_prefill_compute_bound() {
        let ds = ModelConfig::deepseek_v3();
        let c = cost();
        // Decode-like: 8 tokens onto one expert.
        let decode = c.moe_device_time(&ds, 8.0, 1.0);
        assert!(decode.memory_fraction() > 0.5);
        // Prefill-like: 16k tokens onto one expert.
        let prefill = c.moe_device_time(&ds, 16384.0, 1.0);
        assert!(prefill.memory_fraction() < 0.5);
    }

    #[test]
    fn memory_time_scales_with_resident_experts() {
        let ds = ModelConfig::deepseek_v3();
        let c = cost();
        let one = c.moe_device_time(&ds, 64.0, 1.0);
        let eight = c.moe_device_time(&ds, 64.0, 8.0);
        assert!(eight.memory_time > 4.0 * one.memory_time);
        assert_eq!(eight.compute_time, one.compute_time);
    }

    #[test]
    fn attention_tp_scales_down_per_device_work() {
        let q = ModelConfig::qwen3_235b();
        let c = cost();
        let tp1 = c.attention_time(&q, 256.0, 4096.0, 1, InferencePhase::Decode);
        let tp4 = c.attention_time(&q, 256.0, 4096.0, 4, InferencePhase::Decode);
        assert!(tp4.compute_time < tp1.compute_time / 3.0);
        assert!(tp4.memory_time < tp1.memory_time / 3.0);
    }

    #[test]
    fn decode_kv_traffic_dominates_prefill_kv_traffic() {
        let q = ModelConfig::qwen3_235b();
        let c = cost();
        let decode = c.attention_time(&q, 256.0, 8192.0, 4, InferencePhase::Decode);
        let prefill = c.attention_time(&q, 256.0, 8192.0, 4, InferencePhase::Prefill);
        assert!(decode.memory_time > prefill.memory_time);
    }

    #[test]
    fn totals_are_max_of_components() {
        let t = TimeBreakdown {
            compute_time: 2.0,
            memory_time: 3.0,
        };
        assert_eq!(t.total(), 3.0);
        assert_eq!(t.memory_fraction(), 0.6);
        let sum = t.plus(t);
        assert_eq!(sum.compute_time, 4.0);
        assert_eq!(sum.memory_time, 6.0);
    }

    #[test]
    fn expert_read_time_positive() {
        let c = cost();
        let t = c.expert_read_time(&ModelConfig::mixtral_8x22b());
        // 288 MiB at 6.4 TB/s effective ≈ 47 µs.
        assert!(t > 30e-6 && t < 80e-6, "{t}");
    }

    #[test]
    #[should_panic(expected = "efficiencies must be in (0, 1]")]
    fn invalid_efficiency_rejected() {
        let _ = cost().with_efficiency(Efficiency {
            compute: 0.0,
            memory: 0.5,
        });
    }

    #[test]
    fn zero_breakdown_memory_fraction_is_zero() {
        assert_eq!(TimeBreakdown::default().memory_fraction(), 0.0);
    }
}
