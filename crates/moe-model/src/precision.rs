//! Numeric precisions used by the inference stack.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Numeric precision of weights or activations.
///
/// The paper's configuration (§VI-A1): FP16 for attention and all
/// communication, INT8 for the remaining linear operations (expert FFNs).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Precision {
    /// 16-bit floating point (2 bytes/element).
    Fp16,
    /// 8-bit integer (1 byte/element).
    Int8,
}

impl Precision {
    /// Bytes per element.
    pub fn bytes(self) -> f64 {
        match self {
            Precision::Fp16 => 2.0,
            Precision::Int8 => 1.0,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Fp16 => f.write_str("fp16"),
            Precision::Int8 => f.write_str("int8"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(Precision::Fp16.bytes(), 2.0);
        assert_eq!(Precision::Int8.bytes(), 1.0);
    }

    #[test]
    fn display() {
        assert_eq!(Precision::Fp16.to_string(), "fp16");
        assert_eq!(Precision::Int8.to_string(), "int8");
    }
}
