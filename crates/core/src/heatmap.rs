//! Hot/cold link analysis (paper Fig. 11).
//!
//! The NI-Balancer's correctness argument rests on the observation that the
//! attention all-reduce and the MoE all-to-all stress **complementary**
//! subsets of the mesh links under ER-Mapping: all-reduce traffic
//! concentrates on the multi-hop ring legs crossing FTD boundaries, while
//! all-to-all traffic is confined within FTDs. This module measures that
//! complementarity for any mapping.

use moe_workload::LayerGating;
use wsc_sim::AnalyticModel;
use wsc_topology::{LinkId, RouteTable, Topology};

use crate::comm::{A2aModel, ParallelLayout};
use crate::mapping::MappingPlan;
use crate::placement::ExpertPlacement;

/// Fraction of the per-phase maximum link volume above which a link counts
/// as **hot**. The paper's Fig. 11 distinguishes links with "constant
/// activity" (e.g. entwined-ring legs used in *both* parity sub-phases,
/// carrying 2× the volume of single-parity legs) from links that "work for
/// one cycle and then remain idle for the next" — a 0.75 threshold cleanly
/// separates the two populations.
pub const HOT_FRACTION: f64 = 0.75;

/// Per-phase link volumes and their overlap statistics.
#[derive(Clone, Debug)]
pub struct PhaseHeatmaps {
    /// Bytes per link during the attention all-reduce.
    pub all_reduce: Vec<f64>,
    /// Bytes per link during MoE dispatch + combine.
    pub all_to_all: Vec<f64>,
    /// `|hot_AR ∩ hot_A2A| / |hot_AR ∪ hot_A2A|` (Jaccard overlap of the
    /// hot-link sets).
    pub overlap: f64,
}

impl PhaseHeatmaps {
    /// `1 − overlap`: 1.0 means the phases' hot links are perfectly
    /// complementary (the property NI-Balancer exploits).
    pub fn complementarity(&self) -> f64 {
        1.0 - self.overlap
    }

    /// Links at least half-idle during the all-reduce phase (candidates for
    /// Local migration).
    pub fn cold_in_all_reduce(&self) -> Vec<LinkId> {
        cold_links(&self.all_reduce)
    }

    /// Links at least half-idle during the all-to-all phase (candidates for
    /// Global migration).
    pub fn cold_in_all_to_all(&self) -> Vec<LinkId> {
        cold_links(&self.all_to_all)
    }
}

fn hot_mask(volume: &[f64]) -> Vec<bool> {
    let max = volume.iter().copied().fold(0.0, f64::max);
    if max <= 0.0 {
        return vec![false; volume.len()];
    }
    volume.iter().map(|&v| v > HOT_FRACTION * max).collect()
}

fn cold_links(volume: &[f64]) -> Vec<LinkId> {
    hot_mask(volume)
        .into_iter()
        .enumerate()
        .filter(|&(_, hot)| !hot)
        .map(|(i, _)| LinkId(i as u32))
        .collect()
}

/// Measures both phases' link volumes for `plan` with balanced gating of
/// `tokens_per_group` tokens per group (`top_k` selections each).
pub fn phase_heatmaps(
    topo: &Topology,
    table: &RouteTable,
    plan: &MappingPlan,
    tokens_per_group: u32,
    top_k: u32,
    token_bytes: f64,
    num_experts: usize,
) -> PhaseHeatmaps {
    // All-reduce volumes from the schedule.
    let ar_bytes = tokens_per_group as f64 * token_bytes;
    let sched = plan.all_reduce_schedule(topo, ar_bytes);
    let ar = AnalyticModel::new(topo)
        .estimate_schedule(&sched)
        .link_volume;

    // All-to-all volumes from a balanced gating outcome.
    let placement = ExpertPlacement::balanced(num_experts, topo.num_devices(), 1);
    let per_expert = (tokens_per_group as u64 * top_k as u64 / num_experts as u64).max(1) as u32;
    let gating = LayerGating {
        counts: vec![vec![per_expert; num_experts]; plan.num_groups()],
    };
    let model = A2aModel::new(topo, table, plan);
    let est = model.estimate(&gating, &placement, token_bytes, tokens_per_group);
    let a2a: Vec<f64> = est
        .dispatch
        .link_volume
        .iter()
        .zip(&est.combine.link_volume)
        .map(|(a, b)| a + b)
        .collect();

    let mut both = 0usize;
    let mut either = 0usize;
    for (bx, by) in hot_mask(&ar).into_iter().zip(hot_mask(&a2a)) {
        if bx && by {
            both += 1;
        }
        if bx || by {
            either += 1;
        }
    }
    let overlap = if either == 0 {
        0.0
    } else {
        both as f64 / either as f64
    };
    PhaseHeatmaps {
        all_reduce: ar,
        all_to_all: a2a,
        overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{BaselineMapping, ErMapping, TpShape};
    use wsc_topology::{Mesh, PlatformParams};

    fn heatmap_for(er: bool) -> (Topology, PhaseHeatmaps) {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let dims = topo.mesh_dims().unwrap();
        let plan = if er {
            ErMapping::new(dims, TpShape::new(2, 2)).unwrap().plan()
        } else {
            BaselineMapping::new(dims, TpShape::new(2, 2))
                .unwrap()
                .plan()
        };
        let hm = phase_heatmaps(&topo, &table, &plan, 256, 8, 2048.0, 16);
        (topo, hm)
    }

    #[test]
    fn er_phases_are_mostly_complementary() {
        let (_, hm) = heatmap_for(true);
        assert!(
            hm.complementarity() > 0.5,
            "ER overlap too high: {}",
            hm.overlap
        );
    }

    #[test]
    fn er_more_complementary_than_baseline() {
        let (_, er) = heatmap_for(true);
        let (_, base) = heatmap_for(false);
        assert!(
            er.complementarity() >= base.complementarity(),
            "er {} vs baseline {}",
            er.complementarity(),
            base.complementarity()
        );
    }

    #[test]
    fn cold_sets_exist_in_both_phases() {
        let (topo, hm) = heatmap_for(true);
        assert!(!hm.cold_in_all_reduce().is_empty());
        assert!(!hm.cold_in_all_to_all().is_empty());
        assert!(hm.cold_in_all_reduce().len() < topo.num_links());
    }
}
