//! Fleet-level serving: N replica engines behind a front-end router.
//!
//! The ROADMAP north star is heavy traffic from millions of users, which in
//! practice means scale-*out*: a fleet of wafer (or multi-wafer pod)
//! replicas, each running its own continuous-batching
//! [`InferenceEngine`], behind a router that owns the global arrival
//! stream. [`Fleet`] models exactly that deployment shape (see DESIGN.md
//! §8):
//!
//! * **Replicas** are homogeneous engines sharing one immutable
//!   [`Topology`] / [`RouteTable`] / [`ParallelLayout`] by reference —
//!   single-wafer meshes and `wsc_topology::MultiWafer` pods both work —
//!   each in [`BatchMode::External`] with its own seed-split RNG streams
//!   and (optionally) its own congestion-pricing backend.
//! * **The router** ([`moe_workload::Router`]) dispatches every arrival to
//!   a replica's serving queue under a pluggable
//!   [`RouterPolicy`](moe_workload::RouterPolicy).
//! * **The clock** advances in lock-step rounds: at each synchronization
//!   point the fleet routes all arrivals up to the fleet clock (the
//!   *minimum* of the replicas' simulated times, so no replica is ever fed
//!   an arrival from its own future), then every replica executes exactly
//!   one iteration. Between synchronization points replicas share no
//!   mutable state, so the per-replica steps can run on worker threads —
//!   [`Fleet::step_round_with`] takes any [`ReplicaPool`] — and the result
//!   is byte-identical to serial stepping by construction: routing is
//!   serial at the barrier, and each engine's iteration is a pure function
//!   of its own state.
//!
//! [`Fleet::summary`] reports per-replica and aggregate
//! [`ServingSummary`]s plus the load-imbalance ratios a capacity planner
//! reads ("how many wafers for this arrival rate at p99 TTFT ≤ X?").

use moe_workload::{
    ArrivalProcess, ReplicaSnapshot, Request, RequestGenerator, Router, RouterPolicy,
};
use wsc_sim::CongestionBackend;
use wsc_topology::{RouteTable, Topology};

use crate::comm::ParallelLayout;
use crate::engine::{BatchMode, EngineConfig, InferenceEngine, ServingSummary};

/// Executes a batch of independent replica-step jobs. The contract is
/// *completion*, not order: when [`ReplicaPool::run`] returns, every job
/// has run exactly once. Jobs touch disjoint state (one engine each), so
/// any execution order — serial, or spread over a worker pool like
/// `moentwine_bench::perf::pool::WorkerPool` — produces identical fleet
/// state.
pub trait ReplicaPool {
    /// Runs every job to completion.
    fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>);
}

/// The trivial in-thread executor: runs jobs in replica order.
#[derive(Copy, Clone, Debug, Default)]
pub struct SerialReplicaPool;

impl ReplicaPool for SerialReplicaPool {
    fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
        for job in jobs {
            job();
        }
    }
}

/// SplitMix64 stream splitting: replica `stream` of master seed `master`.
/// Each replica's engine (gating trace, request-length draws) gets an
/// independent, reproducible stream; the arrival process and router draw
/// from further streams of the same master.
fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of a [`Fleet`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of replica engines.
    pub replicas: usize,
    /// Front-end dispatch policy.
    pub policy: RouterPolicy,
    /// Global arrival rate (requests/second across the whole fleet).
    pub request_rate: f64,
    /// Per-replica engine template. Its `batch` must be a serving mode
    /// ([`BatchMode::Scheduled`] or [`BatchMode::External`]); the fleet
    /// converts it to [`BatchMode::External`] and replaces the seed with a
    /// per-replica stream split from `engine.seed`.
    pub engine: EngineConfig,
    /// Per-replica congestion-backend overrides: empty uses the template's
    /// backend everywhere; otherwise replica `i` gets `overrides[i % len]`
    /// (so a two-entry list alternates fidelity tiers across the fleet).
    pub backend_overrides: Vec<CongestionBackend>,
}

impl FleetConfig {
    /// A fleet of `replicas` engines dispatched by `policy` under a global
    /// arrival stream of `request_rate` requests/second.
    pub fn new(
        replicas: usize,
        policy: RouterPolicy,
        request_rate: f64,
        engine: EngineConfig,
    ) -> Self {
        FleetConfig {
            replicas,
            policy,
            request_rate,
            engine,
            backend_overrides: Vec::new(),
        }
    }

    /// Sets per-replica backend overrides (builder style).
    pub fn with_backend_overrides(mut self, overrides: Vec<CongestionBackend>) -> Self {
        self.backend_overrides = overrides;
        self
    }
}

/// Fleet-level serving statistics: per-replica and aggregate SLO
/// percentiles plus cross-replica balance. See [`Fleet::summary`].
#[derive(Clone, PartialEq, Debug)]
pub struct FleetSummary {
    /// Number of replicas.
    pub replicas: usize,
    /// Synchronization rounds executed (iterations per replica).
    pub rounds: u64,
    /// Fleet simulated time, seconds (minimum over replica clocks — the
    /// time up to which all routing decisions have been made).
    pub sim_seconds: f64,
    /// Requests routed to each replica.
    pub routed: Vec<u64>,
    /// Per-replica serving summaries, in replica order.
    pub per_replica: Vec<ServingSummary>,
    /// Fleet-wide summary: percentiles over the union of all completed
    /// requests; mean queue depth, mean active requests, rejects, and peak
    /// KV are fleet-wide sums (peak KV sums per-replica peaks, an upper
    /// bound since they need not coincide in time), while
    /// `max_queue_depth` is the worst single replica's high-water mark;
    /// goodput is measured against `sim_seconds`.
    pub aggregate: ServingSummary,
    /// Max/mean ratio of per-replica routed-request counts (1.0 when
    /// balanced or empty).
    pub routing_imbalance: f64,
    /// Max/mean ratio of per-replica completed-request counts (1.0 when
    /// balanced or empty).
    pub completion_imbalance: f64,
}

/// N replica engines behind a router on a shared simulated clock. See the
/// [module docs](self).
pub struct Fleet<'a> {
    engines: Vec<InferenceEngine<'a>>,
    router: Router,
    generator: RequestGenerator,
    /// First generated arrival beyond the fleet clock.
    lookahead: Option<Request>,
    /// Fleet clock: min over replica clocks at the last synchronization.
    clock: f64,
    rounds: u64,
}

impl<'a> Fleet<'a> {
    /// Builds a homogeneous fleet: every replica borrows the same
    /// `topo`/`table`/`layout` and gets its own engine with a seed-split
    /// RNG stream (and backend override, if configured).
    ///
    /// This is a thin wrapper over [`Fleet::try_new`] for call sites that
    /// treat an inconsistent config as a programming error.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas` is zero, the engine template's batch
    /// mode is [`BatchMode::Fixed`] (no request lifecycle to route), or the
    /// template fails [`EngineConfig::validate`] — the panic message is the
    /// [`ConfigError`](crate::config::ConfigError)'s display text.
    pub fn new(
        topo: &'a Topology,
        table: &'a RouteTable,
        layout: &'a dyn ParallelLayout,
        config: FleetConfig,
    ) -> Self {
        Self::try_new(topo, table, layout, config)
            .unwrap_or_else(|e| panic!("invalid fleet config: {e}"))
    }

    /// Builds a homogeneous fleet, reporting configuration inconsistencies
    /// as typed errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ReplicasZero`](crate::config::ConfigError)
    /// for an empty fleet,
    /// [`ConfigError::FleetNeedsServingBatch`](crate::config::ConfigError)
    /// for a [`BatchMode::Fixed`] template, or whatever
    /// [`EngineConfig::validate`] rejects about the replica template.
    pub fn try_new(
        topo: &'a Topology,
        table: &'a RouteTable,
        layout: &'a dyn ParallelLayout,
        config: FleetConfig,
    ) -> Result<Self, crate::config::ConfigError> {
        if config.replicas == 0 {
            return Err(crate::config::ConfigError::ReplicasZero);
        }
        config.engine.validate()?;
        let (mode, max_batch_tokens, max_active) = match config.engine.batch {
            BatchMode::Scheduled {
                mode,
                max_batch_tokens,
                max_active,
                ..
            }
            | BatchMode::External {
                mode,
                max_batch_tokens,
                max_active,
            } => (mode, max_batch_tokens, max_active),
            BatchMode::Fixed { .. } => {
                return Err(crate::config::ConfigError::FleetNeedsServingBatch)
            }
        };
        let master = config.engine.seed;
        let engines: Vec<InferenceEngine<'a>> = (0..config.replicas)
            .map(|i| {
                let mut cfg = config.engine.clone();
                cfg.batch = BatchMode::External {
                    mode,
                    max_batch_tokens,
                    max_active,
                };
                cfg.seed = split_seed(master, i as u64);
                if !config.backend_overrides.is_empty() {
                    cfg.backend = config.backend_overrides[i % config.backend_overrides.len()];
                }
                InferenceEngine::new(topo, table, layout, cfg)
            })
            .collect();
        // The global arrival stream mirrors the single-engine scheduled
        // mode (diurnal Poisson, scenario blend from the workload mix) but
        // draws from fleet-level seed streams.
        let arrivals = ArrivalProcess::new(
            config.request_rate,
            crate::engine::ARRIVAL_DIURNAL_AMPLITUDE,
            crate::engine::ARRIVAL_DIURNAL_PERIOD_SECS,
            split_seed(master, 0x0A5E_11A1),
        );
        let generator = RequestGenerator::new(
            arrivals,
            config.engine.workload.weights(0),
            split_seed(master, 0x0A5E_11A2),
        );
        let router = Router::new(
            config.policy,
            config.replicas,
            split_seed(master, 0x0A5E_11A3),
        );
        Ok(Fleet {
            engines,
            router,
            generator,
            lookahead: None,
            clock: 0.0,
            rounds: 0,
        })
    }

    /// The replica engines, in replica order.
    pub fn engines(&self) -> &[InferenceEngine<'a>] {
        &self.engines
    }

    /// The front-end router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Fleet simulated time: the minimum over replica clocks, i.e. the
    /// time up to which every routing decision has been made.
    pub fn sim_time(&self) -> f64 {
        self.clock
    }

    /// Synchronization rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Routes every arrival up to the fleet clock. Serial by design: the
    /// router observes each offer it makes (snapshots are refreshed per
    /// request), so load-aware policies see their own decisions within a
    /// burst.
    fn route_arrivals(&mut self) {
        let mut snapshots: Vec<ReplicaSnapshot> = self
            .engines
            .iter()
            .map(|e| e.replica_snapshot().expect("replicas run a serving mode"))
            .collect();
        // Bound the pull (as `BatchScheduler::pull_arrivals` does) so an
        // extreme configured rate cannot stall a round; the overflow stays
        // in the generator and drains over subsequent rounds.
        for _ in 0..moe_workload::MAX_ARRIVALS_PER_PULL {
            let request = match self.lookahead.take() {
                Some(r) => r,
                None => self.generator.next_request(),
            };
            if request.arrival > self.clock {
                self.lookahead = Some(request);
                break;
            }
            let choice = self.router.route(&request, &snapshots);
            self.engines[choice].offer_request(request);
            snapshots[choice] = self.engines[choice]
                .replica_snapshot()
                .expect("replicas run a serving mode");
        }
    }

    /// One synchronization round on the in-thread executor.
    pub fn step_round(&mut self) {
        self.step_round_with(&SerialReplicaPool);
    }

    /// One synchronization round: route arrivals up to the fleet clock,
    /// advance every replica by one iteration on `pool`, then resynchronize
    /// the fleet clock. Output is identical for every [`ReplicaPool`].
    pub fn step_round_with(&mut self, pool: &dyn ReplicaPool) {
        self.route_arrivals();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = self
            .engines
            .iter_mut()
            .map(|engine| {
                Box::new(move || {
                    engine.step();
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        self.clock = self
            .engines
            .iter()
            .map(InferenceEngine::sim_time)
            .fold(f64::INFINITY, f64::min);
        self.rounds += 1;
    }

    /// Runs `rounds` synchronization rounds serially.
    pub fn run(&mut self, rounds: usize) {
        self.run_with(rounds, &SerialReplicaPool);
    }

    /// Runs `rounds` synchronization rounds, stepping replicas on `pool`.
    pub fn run_with(&mut self, rounds: usize, pool: &dyn ReplicaPool) {
        for _ in 0..rounds {
            self.step_round_with(pool);
        }
    }

    /// Fleet-level serving statistics over the run so far.
    pub fn summary(&self) -> FleetSummary {
        let per_replica: Vec<ServingSummary> = self
            .engines
            .iter()
            .map(InferenceEngine::serving_summary)
            .collect();

        // Aggregate percentiles over the union of completed requests.
        let all_records: Vec<moe_workload::RequestRecord> = self
            .engines
            .iter()
            .flat_map(|e| e.completed_requests().iter().cloned())
            .collect();
        let total_rejects: u64 = per_replica.iter().map(|s| s.admission_rejects).sum();
        let mut aggregate = ServingSummary::from_records(&all_records, &[], total_rejects, 0);
        aggregate.sim_seconds = self.clock;
        if self.clock > 0.0 {
            aggregate.goodput_rps = all_records.len() as f64 / self.clock;
            aggregate.goodput_tokens_per_s = all_records
                .iter()
                .map(|r| r.input_len as f64 + r.output_len as f64)
                .sum::<f64>()
                / self.clock;
        }
        // Occupancy aggregates are fleet-wide sums (max over replicas for
        // the depth high-water mark).
        for s in &per_replica {
            aggregate.mean_queue_depth += s.mean_queue_depth;
            aggregate.mean_active_requests += s.mean_active_requests;
            aggregate.max_queue_depth = aggregate.max_queue_depth.max(s.max_queue_depth);
            aggregate.peak_kv_tokens += s.peak_kv_tokens;
        }

        let completed = per_replica.iter().map(|s| s.completed as f64);

        FleetSummary {
            replicas: self.engines.len(),
            rounds: self.rounds,
            sim_seconds: self.clock,
            routed: self.router.routed().to_vec(),
            routing_imbalance: self.router.routing_imbalance(),
            completion_imbalance: moe_workload::max_mean_imbalance(completed),
            per_replica,
            aggregate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ErMapping;
    use moe_model::ModelConfig;
    use moe_workload::{Scenario, SchedulingMode, WorkloadMix};
    use wsc_topology::{Mesh, MultiWafer, PlatformParams};

    fn engine_template(seed: u64) -> EngineConfig {
        let mut config = EngineConfig::new(ModelConfig::tiny())
            .with_seed(seed)
            .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
            .with_batch(BatchMode::Scheduled {
                mode: SchedulingMode::Hybrid,
                max_batch_tokens: 2048,
                max_active: 128,
                request_rate: 0.0, // ignored: the fleet owns arrivals
                iteration_period: 0.02,
            });
        config.kv_hbm_fraction = 1.0e-3;
        config
    }

    /// Compile-time guarantee the worker pool relies on: engines move
    /// across threads.
    #[test]
    fn inference_engine_is_send() {
        fn require_send<T: Send>() {}
        require_send::<InferenceEngine<'static>>();
        require_send::<Fleet<'static>>();
    }

    #[test]
    fn fleet_serves_and_conserves_requests() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(3, RouterPolicy::LeastQueueDepth, 6.0e3, engine_template(11));
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(300);
        let summary = fleet.summary();
        assert_eq!(summary.replicas, 3);
        assert_eq!(summary.rounds, 300);
        assert!(summary.sim_seconds > 0.0);
        assert!(summary.aggregate.completed > 0, "no request completed");
        // Conservation: every routed request is waiting, resident,
        // rejected, or completed on exactly one replica.
        let routed: u64 = summary.routed.iter().sum();
        let accounted: u64 = fleet
            .engines()
            .iter()
            .zip(&summary.per_replica)
            .map(|(e, s)| {
                let snap = e.replica_snapshot().unwrap();
                snap.queue_depth as u64
                    + snap.active as u64
                    + s.admission_rejects
                    + s.completed as u64
            })
            .sum();
        assert_eq!(routed, accounted, "requests lost or double-counted");
        // Aggregate completions match the per-replica sum.
        let sum: usize = summary.per_replica.iter().map(|s| s.completed).sum();
        assert_eq!(summary.aggregate.completed, sum);
        assert!(summary.routing_imbalance >= 1.0);
        assert!(summary.completion_imbalance >= 1.0);
    }

    #[test]
    fn fleet_clock_is_min_replica_clock() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(2, RouterPolicy::RoundRobin, 4.0e3, engine_template(5));
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(50);
        let min = fleet
            .engines()
            .iter()
            .map(|e| e.sim_time())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(fleet.sim_time(), min);
        for e in fleet.engines() {
            assert!(e.sim_time() >= fleet.sim_time());
        }
    }

    #[test]
    fn pooled_round_matches_serial_round() {
        // A deliberately out-of-order executor: reversing job order must
        // not change fleet state (replicas are independent in a round).
        struct ReversedPool;
        impl ReplicaPool for ReversedPool {
            fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
                for job in jobs.into_iter().rev() {
                    job();
                }
            }
        }
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = |pool: &dyn ReplicaPool| {
            let config = FleetConfig::new(
                3,
                RouterPolicy::PowerOfTwoChoices,
                6.0e3,
                engine_template(17),
            );
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run_with(120, pool);
            fleet.summary()
        };
        let serial = run(&SerialReplicaPool);
        let reversed = run(&ReversedPool);
        assert_eq!(serial.routed, reversed.routed);
        assert_eq!(serial.aggregate, reversed.aggregate);
        assert_eq!(serial.per_replica, reversed.per_replica);
    }

    #[test]
    fn seed_split_gives_replicas_distinct_streams() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(2, RouterPolicy::RoundRobin, 4.0e3, engine_template(23));
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(30);
        // Round-robin feeds both replicas nearly identical load; distinct
        // gating streams mean their priced iteration times diverge.
        let [a, b] = &fleet.engines() else {
            panic!("two replicas")
        };
        assert_ne!(
            a.history.iter().map(|m| m.iteration_time).sum::<f64>(),
            b.history.iter().map(|m| m.iteration_time).sum::<f64>(),
        );
    }

    #[test]
    fn multiwafer_pods_and_backend_overrides_work() {
        let topo = MultiWafer::grid(2, 1, 4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan =
            crate::mapping::HierarchicalErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
                .unwrap()
                .plan();
        let config = FleetConfig::new(2, RouterPolicy::LeastKvPressure, 2.0e3, engine_template(31))
            .with_backend_overrides(vec![
                CongestionBackend::Analytic,
                CongestionBackend::FlowSimCached,
            ]);
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        assert_eq!(fleet.engines()[0].backend().name(), "analytic");
        assert_eq!(fleet.engines()[1].backend().name(), "flow-sim-cached");
        fleet.run(40);
        assert!(fleet.sim_time() > 0.0);
    }

    #[test]
    fn try_new_reports_exact_variants() {
        use crate::config::ConfigError;
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();

        let config = FleetConfig::new(0, RouterPolicy::RoundRobin, 1.0e3, engine_template(3));
        let err = Fleet::try_new(&topo, &table, &plan, config).err();
        assert_eq!(err, Some(ConfigError::ReplicasZero));

        let config = FleetConfig::new(
            2,
            RouterPolicy::RoundRobin,
            1.0e3,
            EngineConfig::new(ModelConfig::tiny()),
        );
        let err = Fleet::try_new(&topo, &table, &plan, config).err();
        assert_eq!(err, Some(ConfigError::FleetNeedsServingBatch));

        // Template validation runs before replica construction.
        let mut template = engine_template(3);
        template.load_ema = 0.0;
        let config = FleetConfig::new(2, RouterPolicy::RoundRobin, 1.0e3, template);
        let err = Fleet::try_new(&topo, &table, &plan, config).err();
        assert_eq!(err, Some(ConfigError::LoadEmaOutOfRange { value: 0.0 }));
    }

    #[test]
    #[should_panic(expected = "serving batch mode")]
    fn fixed_batch_template_is_rejected() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(
            1,
            RouterPolicy::RoundRobin,
            1.0e3,
            EngineConfig::new(ModelConfig::tiny()),
        );
        let _ = Fleet::new(&topo, &table, &plan, config);
    }
}
