//! Fleet-level serving: N replica engines behind a front-end router.
//!
//! The ROADMAP north star is heavy traffic from millions of users, which in
//! practice means scale-*out*: a fleet of wafer (or multi-wafer pod)
//! replicas, each running its own continuous-batching
//! [`InferenceEngine`], behind a router that owns the global arrival
//! stream. [`Fleet`] models exactly that deployment shape (see DESIGN.md
//! §8):
//!
//! * **Replicas** are homogeneous engines sharing one immutable
//!   [`Topology`] / [`RouteTable`] / [`ParallelLayout`] by reference —
//!   single-wafer meshes and `wsc_topology::MultiWafer` pods both work —
//!   each in [`BatchMode::External`] with its own seed-split RNG streams
//!   and (optionally) its own congestion-pricing backend.
//! * **The router** ([`moe_workload::Router`]) dispatches every arrival to
//!   a replica's serving queue under a pluggable
//!   [`RouterPolicy`](moe_workload::RouterPolicy).
//! * **The clock** advances either in lock-step rounds or on an event
//!   heap, selected by [`FleetScheduler`]. Round-driven stepping
//!   ([`Fleet::run`]) routes all arrivals up to the fleet clock (the
//!   *minimum* of the replicas' simulated times, so no replica is ever fed
//!   an arrival from its own future), then every replica executes exactly
//!   one iteration. Between synchronization points replicas share no
//!   mutable state, so the per-replica steps can run on worker threads —
//!   [`Fleet::step_round_with`] takes any [`ReplicaPool`] — and the result
//!   is byte-identical to serial stepping by construction: routing is
//!   serial at the barrier, and each engine's iteration is a pure function
//!   of its own state. Under [`FleetScheduler::EventHeap`] the round is
//!   executed as a heap-ordered wave — replicas step in
//!   `(sim_time, replica index)` order — which, by the same independence
//!   argument, is byte-identical to lock-step rounds; the goldens pin this.
//! * **Time-horizon runs** ([`Fleet::run_until`]) are where the schedulers
//!   diverge in cost: lock-step loops whole rounds until the fleet clock
//!   reaches the horizon, pricing an idle iteration on every drained
//!   replica every round, while the event heap advances each replica only
//!   when it has work — idle replicas *park* (no phantom iterations) and
//!   are woken by the next routed arrival. See DESIGN.md §10 for the heap
//!   invariants and the determinism / tie-break contract.
//!
//! [`Fleet::summary`] reports per-replica and aggregate
//! [`ServingSummary`]s plus the load-imbalance ratios a capacity planner
//! reads ("how many wafers for this arrival rate at p99 TTFT ≤ X?").

use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};

use moe_workload::{
    CopyStatus, Decision, ReplicaSnapshot, Request, RequestGenerator, RequestRecord, Router,
    RouterPolicy, SchedulingMode,
};
use wsc_sim::{CongestionBackend, CongestionModel};
use wsc_topology::{DeviceId, RouteTable, Topology};

use crate::comm::ParallelLayout;
use crate::config::ConfigError;
use crate::engine::{
    BatchMode, EngineConfig, InferenceEngine, ServingSummary, StreamingSummary, SummaryMode,
};

/// Executes a batch of independent replica-step jobs. The contract is
/// *completion*, not order: when [`ReplicaPool::run`] returns, every job
/// has run exactly once. Jobs touch disjoint state (one engine each), so
/// any execution order — serial, or spread over a worker pool like
/// `moentwine_bench::perf::pool::WorkerPool` — produces identical fleet
/// state.
pub trait ReplicaPool {
    /// Runs every job to completion.
    fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>);
}

/// The trivial in-thread executor: runs jobs in replica order.
#[derive(Copy, Clone, Debug, Default)]
pub struct SerialReplicaPool;

impl ReplicaPool for SerialReplicaPool {
    fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
        for job in jobs {
            job();
        }
    }
}

/// SplitMix64 stream splitting: replica `stream` of master seed `master`.
/// Each replica's engine (gating trace, request-length draws) gets an
/// independent, reproducible stream; the arrival process and router draw
/// from further streams of the same master.
fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How the fleet advances its replicas through simulated time.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum FleetScheduler {
    /// Barrier every round: route, then step every replica exactly once.
    /// The retained reference semantics — [`FleetScheduler::EventHeap`]
    /// must match it bit for bit in round-driven runs.
    Lockstep,
    /// Replicas advance in next-event-time order. Round-driven runs
    /// execute each round as a heap-ordered wave (byte-identical to
    /// lock-step); time-horizon runs ([`Fleet::run_until`]) park idle
    /// replicas and wake them on arrival, skipping the idle iterations
    /// lock-step prices at every barrier.
    #[default]
    EventHeap,
}

impl FleetScheduler {
    /// Stable lowercase name (`"lockstep"` / `"event-heap"`), matching the
    /// `FromStr` spelling and the scenario-spec JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            FleetScheduler::Lockstep => "lockstep",
            FleetScheduler::EventHeap => "event-heap",
        }
    }
}

impl std::fmt::Display for FleetScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FleetScheduler {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lockstep" => Ok(FleetScheduler::Lockstep),
            "event-heap" => Ok(FleetScheduler::EventHeap),
            other => Err(format!(
                "unknown fleet scheduler {other:?} (expected \"lockstep\" or \"event-heap\")"
            )),
        }
    }
}

/// Serving role of one fleet replica (DESIGN.md §13). The default
/// [`ReplicaRole::Colocated`] runs prefill and decode on the same engine —
/// the pre-disaggregation fleet, byte-identical to fleets that never
/// mention roles. `Prefill`/`Decode` split the phases
/// Mooncake/DistServe-style: arrivals route to prefill-capable replicas
/// only, and every finished prefill hands its KV footprint to a
/// decode-capable replica over a transfer priced through the congestion
/// model before it joins that replica's continuous-batching queue.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum ReplicaRole {
    /// Prefill and decode on the same replica (the default).
    #[default]
    Colocated,
    /// Prefill-only: completes at KV hand-off, serves no decode.
    Prefill,
    /// Decode-only: admits hand-offs with their prefill already done
    /// (KV admission still reserves input + output tokens).
    Decode,
}

impl ReplicaRole {
    /// Stable lowercase name (`"colocated"` / `"prefill"` / `"decode"`),
    /// matching the `FromStr` spelling and the scenario-spec JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            ReplicaRole::Colocated => "colocated",
            ReplicaRole::Prefill => "prefill",
            ReplicaRole::Decode => "decode",
        }
    }

    /// Whether arrivals (fresh or re-routed) may be dispatched here.
    pub fn prefill_capable(self) -> bool {
        matches!(self, ReplicaRole::Colocated | ReplicaRole::Prefill)
    }

    /// Whether KV hand-offs may be delivered here.
    pub fn decode_capable(self) -> bool {
        matches!(self, ReplicaRole::Colocated | ReplicaRole::Decode)
    }
}

impl std::fmt::Display for ReplicaRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ReplicaRole {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "colocated" => Ok(ReplicaRole::Colocated),
            "prefill" => Ok(ReplicaRole::Prefill),
            "decode" => Ok(ReplicaRole::Decode),
            other => Err(format!(
                "unknown replica role {other:?} (expected \"colocated\", \"prefill\", or \"decode\")"
            )),
        }
    }
}

/// The immutable platform a replica engine borrows: topology, routes, and
/// parallel layout. Disaggregated fleets carry one of these per role so
/// prefill pods and decode replicas can run on heterogeneous hardware
/// (e.g. multi-wafer prefill + DGX decode); see
/// [`Fleet::try_new_disaggregated`].
#[derive(Copy, Clone)]
pub struct PlatformRefs<'a> {
    /// Device topology.
    pub topo: &'a Topology,
    /// Precomputed routes over `topo`.
    pub table: &'a RouteTable,
    /// Expert/parallelism placement on `topo`.
    pub layout: &'a dyn ParallelLayout,
}

/// What a [`FleetEvent`] does to the fleet when it fires.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum FleetEventKind {
    /// Add `count` fresh replicas (fast-forwarded to the event time, seeded
    /// from the next replica streams of the master seed).
    ScaleUp {
        /// Replicas to add (≥ 1).
        count: usize,
    },
    /// Graceful drain: `replica` stops admitting, its waiting requests
    /// re-route through the router, and its in-flight prefill/decode runs
    /// to completion; the replica retires once empty.
    Drain {
        /// Replica to drain (must be active).
        replica: usize,
    },
    /// Hard failure: `replica`'s waiting *and* resident requests re-route
    /// fleet-wide; resident requests lose their progress and replay their
    /// prefill on the re-admitting replica (counted as interruptions).
    Crash {
        /// Replica to crash (must be active or draining).
        replica: usize,
    },
    /// Return a failed `replica` to service with an empty queue.
    Recover {
        /// Replica to recover (must be failed).
        replica: usize,
    },
}

impl FleetEventKind {
    /// Stable lowercase name (`"scale-up"` / `"drain"` / `"crash"` /
    /// `"recover"`), matching the scenario-spec JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            FleetEventKind::ScaleUp { .. } => "scale-up",
            FleetEventKind::Drain { .. } => "drain",
            FleetEventKind::Crash { .. } => "crash",
            FleetEventKind::Recover { .. } => "recover",
        }
    }
}

/// One entry of a fleet elasticity/failure timeline: `kind` fires at
/// simulated time `time`. Round-driven runs apply an event at the first
/// synchronization barrier whose fleet clock has reached it (identically
/// under both [`FleetScheduler`]s, preserving bit-identity); event-driven
/// [`Fleet::run_until`] applies it at exactly `time`.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct FleetEvent {
    /// Simulated firing time, seconds (timeline must be sorted).
    pub time: f64,
    /// What happens.
    pub kind: FleetEventKind,
}

/// Lifecycle state of one fleet replica (DESIGN.md §11):
/// `Active → Draining → Retired` on drain, `Active → Failed → Active` on
/// crash + recover.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ReplicaState {
    /// Serving and admitting new requests.
    Active,
    /// Finishing in-flight work; admits nothing new.
    Draining,
    /// Drained to empty; prices no further iterations.
    Retired,
    /// Crashed; prices no iterations until recovered.
    Failed,
}

impl ReplicaState {
    /// Whether the router may dispatch new work here.
    pub fn admits(self) -> bool {
        matches!(self, ReplicaState::Active)
    }

    /// Whether the replica still prices iterations.
    pub fn steppable(self) -> bool {
        matches!(self, ReplicaState::Active | ReplicaState::Draining)
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ReplicaState::Active => "active",
            ReplicaState::Draining => "draining",
            ReplicaState::Retired => "retired",
            ReplicaState::Failed => "failed",
        }
    }
}

/// Validates a fleet event timeline against an initial replica count by
/// simulating the projected lifecycle states: times must be finite,
/// non-negative, and sorted; replica indices must be in range at their
/// point in the timeline (scale-ups extend it); transitions must be legal
/// and meaningful (no draining a drained replica, no zero scale-up); and
/// at least one replica must remain active after every event, so the
/// router always has somewhere to send arrivals.
///
/// Shared by [`Fleet::try_new`], the `moentwine-spec` scenario builder,
/// and the spec codec, so a bad timeline fails with the same typed
/// [`ConfigError`] wherever it enters the stack.
///
/// # Errors
///
/// The first violated
/// [`ConfigError::FleetEventsUnsorted`] /
/// [`ConfigError::FleetEventReplicaOutOfRange`] /
/// [`ConfigError::FleetEventNoOp`] /
/// [`ConfigError::FleetEventLeavesNoReplicas`] variant.
pub fn validate_fleet_events(replicas: usize, events: &[FleetEvent]) -> Result<(), ConfigError> {
    validate_fleet_events_for_roles(&vec![ReplicaRole::Colocated; replicas], events)
}

/// Role-aware variant of [`validate_fleet_events`]: the same lifecycle
/// projection, additionally requiring that after every event a
/// disaggregated fleet keeps at least one admitting prefill-capable
/// replica (for arrivals) and one admitting decode-capable replica (for
/// KV hand-offs). Scale-ups add [`ReplicaRole::Colocated`] replicas. For
/// an all-colocated role list this is exactly [`validate_fleet_events`]
/// (the role checks are implied by the generic one).
///
/// # Errors
///
/// Everything [`validate_fleet_events`] reports, plus
/// [`ConfigError::FleetEventLeavesNoPrefillCapacity`] /
/// [`ConfigError::FleetEventLeavesNoDecodeCapacity`].
pub fn validate_fleet_events_for_roles(
    roles: &[ReplicaRole],
    events: &[FleetEvent],
) -> Result<(), ConfigError> {
    let disaggregated = roles.iter().any(|&r| r != ReplicaRole::Colocated);
    let mut roles: Vec<ReplicaRole> = roles.to_vec();
    let mut states = vec![ReplicaState::Active; roles.len()];
    let mut prev = 0.0_f64;
    for (index, event) in events.iter().enumerate() {
        // Rejecting everything but a finite `time >= prev` also rejects
        // NaN and (via prev starting at 0) negative times.
        if !(event.time >= prev && event.time.is_finite()) {
            return Err(ConfigError::FleetEventsUnsorted { index });
        }
        prev = event.time;
        match event.kind {
            FleetEventKind::ScaleUp { count } => {
                if count == 0 {
                    return Err(ConfigError::FleetEventNoOp { index });
                }
                states.extend(std::iter::repeat_n(ReplicaState::Active, count));
                roles.extend(std::iter::repeat_n(ReplicaRole::Colocated, count));
            }
            FleetEventKind::Drain { replica } => match states.get(replica) {
                None => {
                    return Err(ConfigError::FleetEventReplicaOutOfRange {
                        index,
                        replica,
                        replicas: states.len(),
                    })
                }
                Some(ReplicaState::Active) => states[replica] = ReplicaState::Draining,
                Some(_) => return Err(ConfigError::FleetEventNoOp { index }),
            },
            FleetEventKind::Crash { replica } => {
                match states.get(replica) {
                    None => {
                        return Err(ConfigError::FleetEventReplicaOutOfRange {
                            index,
                            replica,
                            replicas: states.len(),
                        })
                    }
                    // A draining replica may still crash before it empties
                    // (the runtime treats a crash on an already-retired
                    // replica as a no-op).
                    Some(ReplicaState::Active) | Some(ReplicaState::Draining) => {
                        states[replica] = ReplicaState::Failed
                    }
                    Some(ReplicaState::Failed) => {
                        return Err(ConfigError::FleetEventNoOp { index })
                    }
                    Some(ReplicaState::Retired) => {
                        return Err(ConfigError::FleetEventNoOp { index })
                    }
                }
            }
            FleetEventKind::Recover { replica } => match states.get(replica) {
                None => {
                    return Err(ConfigError::FleetEventReplicaOutOfRange {
                        index,
                        replica,
                        replicas: states.len(),
                    })
                }
                Some(ReplicaState::Failed) => states[replica] = ReplicaState::Active,
                Some(_) => return Err(ConfigError::FleetEventNoOp { index }),
            },
        }
        if !states.iter().any(|s| s.admits()) {
            return Err(ConfigError::FleetEventLeavesNoReplicas { index });
        }
        if disaggregated {
            if !states
                .iter()
                .zip(&roles)
                .any(|(s, r)| s.admits() && r.prefill_capable())
            {
                return Err(ConfigError::FleetEventLeavesNoPrefillCapacity { index });
            }
            if !states
                .iter()
                .zip(&roles)
                .any(|(s, r)| s.admits() && r.decode_capable())
            {
                return Err(ConfigError::FleetEventLeavesNoDecodeCapacity { index });
            }
        }
    }
    Ok(())
}

/// Configuration of a [`Fleet`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of replica engines.
    pub replicas: usize,
    /// Front-end dispatch policy.
    pub policy: RouterPolicy,
    /// Global arrival rate (requests/second across the whole fleet).
    pub request_rate: f64,
    /// Per-replica engine template. Its `batch` must be a serving mode
    /// ([`BatchMode::Scheduled`] or [`BatchMode::External`]); the fleet
    /// converts it to [`BatchMode::External`] and replaces the seed with a
    /// per-replica stream split from `engine.seed`.
    pub engine: EngineConfig,
    /// Per-replica congestion-backend overrides: empty uses the template's
    /// backend everywhere; otherwise replica `i` gets `overrides[i % len]`
    /// (so a two-entry list alternates fidelity tiers across the fleet).
    pub backend_overrides: Vec<CongestionBackend>,
    /// Replica advancement strategy (see [`FleetScheduler`]).
    pub scheduler: FleetScheduler,
    /// Elasticity/failure timeline, sorted by time (empty = the immortal
    /// fixed fleet). Validated by [`validate_fleet_events`].
    pub events: Vec<FleetEvent>,
    /// Serving role per initial replica: empty means every replica is
    /// [`ReplicaRole::Colocated`] (the byte-compatible default); otherwise
    /// the length must equal `replicas` and a mixed list enables
    /// prefill/decode disaggregation with priced KV hand-offs.
    pub roles: Vec<ReplicaRole>,
}

impl FleetConfig {
    /// A fleet of `replicas` engines dispatched by `policy` under a global
    /// arrival stream of `request_rate` requests/second.
    pub fn new(
        replicas: usize,
        policy: RouterPolicy,
        request_rate: f64,
        engine: EngineConfig,
    ) -> Self {
        FleetConfig {
            replicas,
            policy,
            request_rate,
            engine,
            backend_overrides: Vec::new(),
            scheduler: FleetScheduler::default(),
            events: Vec::new(),
            roles: Vec::new(),
        }
    }

    /// Sets per-replica backend overrides (builder style).
    pub fn with_backend_overrides(mut self, overrides: Vec<CongestionBackend>) -> Self {
        self.backend_overrides = overrides;
        self
    }

    /// Sets the replica advancement strategy (builder style).
    pub fn with_scheduler(mut self, scheduler: FleetScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the elasticity/failure timeline (builder style).
    pub fn with_events(mut self, events: Vec<FleetEvent>) -> Self {
        self.events = events;
        self
    }

    /// Sets per-replica serving roles (builder style). Empty keeps every
    /// replica colocated.
    pub fn with_roles(mut self, roles: Vec<ReplicaRole>) -> Self {
        self.roles = roles;
        self
    }
}

/// One goodput measurement window between fleet-event boundaries: how many
/// requests completed fleet-wide in `[start, end)` and at what rate. The
/// window sequence shows the SLO-under-failure shape — goodput dipping
/// after a crash and recovering as re-queued work drains.
#[derive(Clone, PartialEq, Debug)]
pub struct GoodputWindow {
    /// What opened this window: `"start"`, or the event that fired, as
    /// `"<kind>@<configured time>"` (e.g. `"crash@0.002"`).
    pub after: String,
    /// Window start, simulated seconds.
    pub start: f64,
    /// Window end, simulated seconds (the next event, or the clock).
    pub end: f64,
    /// Requests completed fleet-wide inside the window.
    pub completed: u64,
    /// `completed / (end − start)` (0 for a zero-length window).
    pub goodput_rps: f64,
}

/// The availability section of a [`FleetSummary`]: interruption counts per
/// failure class, re-queued token totals, the time-weighted available
/// (actively admitting) replica fraction, and goodput-vs-time around each
/// timeline event. For an event-free fleet the counters are zero, the
/// fraction is 1.0, the windows are empty, and every replica is active
/// (`Default` additionally leaves `replica_states` empty).
#[derive(Clone, PartialEq, Debug)]
pub struct FleetAvailability {
    /// Timeline events applied so far.
    pub events_applied: u64,
    /// In-flight (admitted) requests interrupted by crashes and re-queued
    /// with their prefill replayed elsewhere.
    pub crash_interruptions: u64,
    /// Waiting (not yet admitted) requests re-routed by graceful drains.
    pub drain_rerouted: u64,
    /// Waiting requests re-routed by crashes.
    pub crash_rerouted: u64,
    /// Σ (input + output) tokens across every re-queued request.
    pub requeued_tokens: u64,
    /// Prompt tokens whose prefill work was lost to crashes and re-done on
    /// the re-admitting replica (the KV re-admission cost, priced through
    /// the congestion model when the new replica re-prefills).
    pub replayed_prefill_tokens: u64,
    /// Time-weighted fraction of replicas in the active state over the run
    /// (1.0 for an event-free fleet).
    pub available_fraction: f64,
    /// Final lifecycle state of each replica, in replica order
    /// ([`ReplicaState::name`] strings).
    pub replica_states: Vec<&'static str>,
    /// Goodput between consecutive event boundaries (empty for an
    /// event-free fleet).
    pub goodput_windows: Vec<GoodputWindow>,
}

impl Default for FleetAvailability {
    fn default() -> Self {
        FleetAvailability {
            events_applied: 0,
            crash_interruptions: 0,
            drain_rerouted: 0,
            crash_rerouted: 0,
            requeued_tokens: 0,
            replayed_prefill_tokens: 0,
            available_fraction: 1.0,
            replica_states: Vec::new(),
            goodput_windows: Vec::new(),
        }
    }
}

/// The prefill→decode hand-off section of a [`FleetSummary`]: how many KV
/// transfers were priced, their byte and time totals, and the end-to-end
/// hand-off latency (prefill finish → first decode token on the receiving
/// replica). All zeros for a colocated fleet.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FleetHandoff {
    /// Finished prefills handed to the decode tier (each priced as one KV
    /// transfer through the congestion model).
    pub kv_transfers: u64,
    /// Σ transferred KV bytes
    /// (`kv_bytes_per_token_all_layers × prefill tokens` per hand-off).
    pub kv_transfer_bytes: f64,
    /// Σ priced transfer time, seconds.
    pub kv_transfer_seconds: f64,
    /// Slowest single transfer, seconds.
    pub max_transfer_seconds: f64,
    /// Transfers priced but not yet delivered to a decode queue (in
    /// flight past the fleet clock).
    pub pending_transfers: u64,
    /// Hand-offs whose decode side produced its first token.
    pub handoffs_completed: u64,
    /// Mean prefill-finish → first-decode-token latency, seconds
    /// (transfer + decode queueing).
    pub mean_handoff_latency: f64,
    /// Worst hand-off latency, seconds.
    pub max_handoff_latency: f64,
    /// Mean end-to-end TTFT across completed hand-offs: original arrival →
    /// first decode token, spanning both tiers and the transfer.
    pub mean_e2e_ttft: f64,
    /// Worst end-to-end TTFT, seconds.
    pub max_e2e_ttft: f64,
}

/// The speculative-dispatch section of a [`FleetSummary`]: multi-copy
/// groups dispatched by a [`Outcome::Multicast`](moe_workload::Outcome)
/// policy, loser copies cancelled once the group produced its first token,
/// and groups still racing at the clock. All zeros for unicast policies.
/// Cancelled copies are accounted here, *separately* from the
/// crash-interruption counters in [`FleetAvailability`] — a cancellation
/// is the router reclaiming a redundant copy, not a failure.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FleetSpeculative {
    /// Requests dispatched as speculative multi-copy groups (each group
    /// routed one request to ≥ 2 replicas).
    pub groups_dispatched: u64,
    /// Loser copies cancelled (waiting or mid-flight work torn down, KV
    /// released) or discarded post-completion after another copy of their
    /// group won the first-token race — plus copies dropped from a crashed
    /// or drained replica while a sibling copy survived elsewhere.
    pub cancelled_copies: u64,
    /// Groups whose first-token race is still undecided at the clock.
    pub open_groups: u64,
}

/// One copy of a speculatively dispatched request, tracked until its group
/// resolves.
#[derive(Clone, Debug)]
struct SpecCopy {
    /// Replica currently holding the copy (updated if the copy is the last
    /// survivor and gets re-routed off a crashed/drained replica).
    replica: usize,
    /// Completion record harvested at the current synchronization point,
    /// held back from the fleet aggregates until the race is decided.
    /// Always `None` between synchronization points: a completed copy is a
    /// first-token candidate, so the group resolves at the point that
    /// stashed it.
    done: Option<RequestRecord>,
}

/// An unresolved speculative dispatch: every live copy of one request.
/// Keyed by request id in a `BTreeMap` so resolution order is
/// deterministic (std's `HashMap` iteration order is not).
#[derive(Clone, Debug)]
struct SpecGroup {
    copies: Vec<SpecCopy>,
}

/// Running hand-off accounting inside [`Fleet`] (see [`FleetHandoff`],
/// its public readout).
#[derive(Clone, Debug, Default)]
struct HandoffTracker {
    kv_transfers: u64,
    kv_transfer_bytes: f64,
    kv_transfer_seconds: f64,
    max_transfer_seconds: f64,
    handoffs_completed: u64,
    handoff_latency_seconds: f64,
    max_handoff_latency: f64,
    e2e_ttft_seconds: f64,
    max_e2e_ttft: f64,
}

/// A KV transfer in flight: the decode-side request becomes routable at
/// `arrival` (prefill finish + priced transfer time). Min-ordered by
/// `(arrival, seq)` — `seq` is the creation sequence number, so
/// same-instant transfers deliver in creation order, deterministically.
#[derive(Clone, Debug)]
struct HandoffEvent {
    arrival: f64,
    seq: u64,
    request: Request,
}

impl PartialEq for HandoffEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HandoffEvent {}

impl Ord for HandoffEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min element.
        other
            .arrival
            .total_cmp(&self.arrival)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HandoffEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Prefill-side facts about one in-flight hand-off, matched back when the
/// decode side reports the request's first token.
#[derive(Copy, Clone, Debug)]
struct HandoffMeta {
    /// Arrival the prefill tier served under (re-stamped if the request
    /// was ever re-queued by a crash or drain).
    arrival: f64,
    /// When the prefill finished (the transfer starts here).
    prefill_finish: f64,
}

/// Fleet-level serving statistics: per-replica and aggregate SLO
/// percentiles plus cross-replica balance. See [`Fleet::summary`].
#[derive(Clone, PartialEq, Debug)]
pub struct FleetSummary {
    /// Number of replicas.
    pub replicas: usize,
    /// Synchronization rounds executed (iterations per replica).
    pub rounds: u64,
    /// Fleet simulated time, seconds (minimum over replica clocks — the
    /// time up to which all routing decisions have been made).
    pub sim_seconds: f64,
    /// Requests routed to each replica.
    pub routed: Vec<u64>,
    /// Per-replica serving summaries, in replica order.
    pub per_replica: Vec<ServingSummary>,
    /// Fleet-wide summary: percentiles over the union of all completed
    /// requests; mean queue depth, mean active requests, rejects, and peak
    /// KV are fleet-wide sums (peak KV sums per-replica peaks, an upper
    /// bound since they need not coincide in time), while
    /// `max_queue_depth` is the worst single replica's high-water mark;
    /// goodput is measured against `sim_seconds`.
    pub aggregate: ServingSummary,
    /// Max/mean ratio of per-replica routed-request counts (1.0 when
    /// balanced or empty).
    pub routing_imbalance: f64,
    /// Max/mean ratio of per-replica completed-request counts (1.0 when
    /// balanced or empty).
    pub completion_imbalance: f64,
    /// Failure/elasticity accounting (zero counters, fraction 1.0, and all
    /// replicas active for an event-free fleet).
    pub availability: FleetAvailability,
    /// Prefill→decode hand-off accounting (all zeros for a colocated
    /// fleet).
    pub handoff: FleetHandoff,
    /// Speculative-dispatch accounting (all zeros for unicast policies).
    pub speculative: FleetSpeculative,
    /// Requests shed at the router by an [`Outcome::Discard`]
    /// (moe_workload) policy outcome, per
    /// [`RequestClass::index`](moe_workload::RequestClass) — these never
    /// reached a replica queue. Also folded into the aggregate per-class
    /// shed counts, unifying front-end load shedding with the queues'
    /// deadline sheds.
    pub router_discarded: [u64; 2],
}

/// Failure/elasticity bookkeeping of a [`Fleet`] (see
/// [`FleetAvailability`], its public readout).
#[derive(Clone, Debug, Default)]
struct ChaosTracker {
    events_applied: u64,
    crash_interruptions: u64,
    drain_rerouted: u64,
    crash_rerouted: u64,
    requeued_tokens: u64,
    replayed_prefill_tokens: u64,
    /// ∫ (active replicas / replicas) dt accumulated up to `last_t`.
    avail_integral: f64,
    last_t: f64,
    /// One mark per applied event: the goodput windows are the spans
    /// between consecutive marks (plus start → first and last → clock).
    marks: Vec<EventMark>,
}

#[derive(Clone, Debug)]
struct EventMark {
    /// `"<kind>@<configured time>"`.
    label: String,
    /// Application time (the barrier clock in round-driven runs; the exact
    /// event time in event-driven `run_until`).
    time: f64,
    /// Fleet-wide completions when the event was applied.
    completed: u64,
}

/// What applying one event changed, for the event-heap drive to patch its
/// local snapshot/heap state.
struct EventEffects {
    /// Replicas that stopped being steppable (stale heap entries must be
    /// discarded).
    deactivated: Vec<usize>,
    /// Replicas offered re-routed requests (parked ones need waking).
    touched: Vec<usize>,
}

/// N replica engines behind a router on a shared simulated clock. See the
/// [module docs](self).
pub struct Fleet<'a> {
    topo: &'a Topology,
    table: &'a RouteTable,
    layout: &'a dyn ParallelLayout,
    /// Replica engine template, normalized to [`BatchMode::External`];
    /// scale-ups clone it with the next seed stream.
    template: EngineConfig,
    backend_overrides: Vec<CongestionBackend>,
    /// Master seed the per-replica streams are split from.
    master: u64,
    engines: Vec<InferenceEngine<'a>>,
    /// Lifecycle state per replica, in replica order.
    states: Vec<ReplicaState>,
    /// Serving role per replica, in replica order (scale-ups join as
    /// [`ReplicaRole::Colocated`]).
    roles: Vec<ReplicaRole>,
    /// Platform decode-role replicas run on (heterogeneous
    /// disaggregation); `None` shares the prefill platform.
    decode_platform: Option<PlatformRefs<'a>>,
    /// Prices KV hand-off transfers on the prefill platform's
    /// interconnect. `Some` iff the fleet is disaggregated — this doubles
    /// as the disaggregation flag, so colocated fleets skip every
    /// hand-off code path.
    transfer_model: Option<Box<dyn CongestionModel + 'a>>,
    /// KV bytes per token across all layers (FP16), from the model config.
    kv_bytes_per_token: f64,
    /// Per-replica cursor into `completed_requests()` for exact-summary
    /// hand-off harvesting (streaming replicas use
    /// `take_fresh_completions` instead).
    handoff_cursor: Vec<usize>,
    /// Priced transfers not yet delivered to a decode queue, min-ordered
    /// by decode-side arrival.
    pending_handoffs: BinaryHeap<HandoffEvent>,
    /// Creation sequence for deterministic same-instant delivery order.
    handoff_seq: u64,
    /// In-flight hand-offs by request id, matched when the decode side
    /// completes. A request re-queued off a crashed decode replica
    /// re-prefills and re-inserts (overwriting) under the same id.
    inflight: HashMap<u64, HandoffMeta>,
    handoff: HandoffTracker,
    /// Unapplied timeline events, in time order.
    pending_events: VecDeque<FleetEvent>,
    chaos: ChaosTracker,
    /// Unresolved speculative dispatch groups by request id (empty for
    /// unicast policies, so snapshot fleets skip every speculative path).
    spec_groups: BTreeMap<u64, SpecGroup>,
    /// Speculative groups dispatched so far.
    spec_dispatched: u64,
    /// Speculative loser copies cancelled so far.
    spec_cancelled: u64,
    /// Per-replica cursor into `completed_requests()` for the exact-summary
    /// colocated feedback/speculative harvest (advanced only when the
    /// policy consumes feedback or a speculative group is open — snapshot
    /// unicast fleets never run the pass).
    feedback_cursor: Vec<usize>,
    router: Router,
    generator: RequestGenerator,
    /// First generated arrival beyond the fleet clock.
    lookahead: Option<Request>,
    /// Fleet clock: min over steppable replica clocks at the last
    /// synchronization (round-driven), or the covered horizon (event-driven
    /// `run_until`).
    clock: f64,
    /// Synchronization rounds in round-driven runs; priced step events in
    /// event-driven `run_until` runs (there are no barriers to count).
    rounds: u64,
    scheduler: FleetScheduler,
    /// Fleet-wide streaming aggregate ([`SummaryMode::Streaming`] replicas
    /// only): P² sketches don't merge, so the fleet folds every replica's
    /// fresh completions into its own accumulator as they drain.
    streaming: Option<StreamingSummary>,
}

/// A pending replica step in the event heap, ordered so that
/// `BinaryHeap::pop` yields the *earliest* event: time ascending
/// (`f64::total_cmp`), then replica index ascending — the deterministic
/// tie-break contract (DESIGN.md §10).
#[derive(Copy, Clone, Debug)]
struct StepEvent {
    time: f64,
    replica: usize,
    /// Lifecycle epoch of the replica when enqueued: crashes and
    /// retirements bump the replica's epoch, lazily invalidating any entry
    /// still in the heap (epoch does not participate in ordering).
    epoch: u64,
}

impl PartialEq for StepEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for StepEvent {}

impl Ord for StepEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min element.
        other
            .time
            .total_cmp(&self.time)
            .then(other.replica.cmp(&self.replica))
    }
}

impl PartialOrd for StepEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> Fleet<'a> {
    /// Builds a homogeneous fleet: every replica borrows the same
    /// `topo`/`table`/`layout` and gets its own engine with a seed-split
    /// RNG stream (and backend override, if configured).
    ///
    /// This is a thin wrapper over [`Fleet::try_new`] for call sites that
    /// treat an inconsistent config as a programming error.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas` is zero, the engine template's batch
    /// mode is [`BatchMode::Fixed`] (no request lifecycle to route), or the
    /// template fails [`EngineConfig::validate`] — the panic message is the
    /// [`ConfigError`](crate::config::ConfigError)'s display text.
    pub fn new(
        topo: &'a Topology,
        table: &'a RouteTable,
        layout: &'a dyn ParallelLayout,
        config: FleetConfig,
    ) -> Self {
        Self::try_new(topo, table, layout, config)
            .unwrap_or_else(|e| panic!("invalid fleet config: {e}"))
    }

    /// Builds a homogeneous fleet, reporting configuration inconsistencies
    /// as typed errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ReplicasZero`](crate::config::ConfigError)
    /// for an empty fleet,
    /// [`ConfigError::FleetNeedsServingBatch`](crate::config::ConfigError)
    /// for a [`BatchMode::Fixed`] template, whatever
    /// [`EngineConfig::validate`] rejects about the replica template, or
    /// whatever [`validate_fleet_events`] rejects about the timeline.
    pub fn try_new(
        topo: &'a Topology,
        table: &'a RouteTable,
        layout: &'a dyn ParallelLayout,
        config: FleetConfig,
    ) -> Result<Self, crate::config::ConfigError> {
        Self::try_new_disaggregated(
            PlatformRefs {
                topo,
                table,
                layout,
            },
            None,
            config,
        )
    }

    /// Builds a (possibly disaggregated) fleet. `prefill` is the platform
    /// every colocated and prefill-role replica runs on; decode-role
    /// replicas run on `decode_platform` when given (heterogeneous
    /// disaggregation — their KV budgets derive from *that* platform's
    /// device count) and on the prefill platform otherwise. With an empty
    /// `config.roles` this is exactly [`Fleet::try_new`].
    ///
    /// # Errors
    ///
    /// Everything [`Fleet::try_new`] reports, plus
    /// [`ConfigError::FleetRolesLengthMismatch`] /
    /// [`ConfigError::FleetNoPrefillCapacity`] /
    /// [`ConfigError::FleetNoDecodeCapacity`] /
    /// [`ConfigError::FleetDecodePlatformUnused`] for inconsistent role
    /// sets, and the role-aware timeline errors from
    /// [`validate_fleet_events_for_roles`].
    pub fn try_new_disaggregated(
        prefill: PlatformRefs<'a>,
        decode_platform: Option<PlatformRefs<'a>>,
        config: FleetConfig,
    ) -> Result<Self, crate::config::ConfigError> {
        let PlatformRefs {
            topo,
            table,
            layout,
        } = prefill;
        if config.replicas == 0 {
            return Err(crate::config::ConfigError::ReplicasZero);
        }
        config.engine.validate()?;
        if !config.roles.is_empty() && config.roles.len() != config.replicas {
            return Err(crate::config::ConfigError::FleetRolesLengthMismatch {
                roles: config.roles.len(),
                replicas: config.replicas,
            });
        }
        let mut roles = config.roles.clone();
        roles.resize(config.replicas, ReplicaRole::Colocated);
        let disaggregated = roles.iter().any(|&r| r != ReplicaRole::Colocated);
        if disaggregated {
            if !roles.iter().any(|r| r.prefill_capable()) {
                return Err(crate::config::ConfigError::FleetNoPrefillCapacity);
            }
            if !roles.iter().any(|r| r.decode_capable()) {
                return Err(crate::config::ConfigError::FleetNoDecodeCapacity);
            }
        }
        if decode_platform.is_some() && !roles.contains(&ReplicaRole::Decode) {
            return Err(crate::config::ConfigError::FleetDecodePlatformUnused);
        }
        validate_fleet_events_for_roles(&roles, &config.events)?;
        let (mode, max_batch_tokens, max_active) = match config.engine.batch {
            BatchMode::Scheduled {
                mode,
                max_batch_tokens,
                max_active,
                ..
            }
            | BatchMode::External {
                mode,
                max_batch_tokens,
                max_active,
            } => (mode, max_batch_tokens, max_active),
            BatchMode::Fixed { .. } => {
                return Err(crate::config::ConfigError::FleetNeedsServingBatch)
            }
        };
        let master = config.engine.seed;
        let mut template = config.engine.clone();
        template.batch = BatchMode::External {
            mode,
            max_batch_tokens,
            max_active,
        };
        // The global arrival stream mirrors the single-engine scheduled
        // mode (same workload profile: diurnal Poisson by default, phase
        // schedule, or trace replay; scenario blend from the workload mix)
        // but draws from fleet-level seed streams. One shared constructor
        // — `RequestGenerator::try_from_profile` — replaces the diurnal
        // construction previously copied from `engine/mod.rs`.
        let generator = RequestGenerator::try_from_profile(
            &config.engine.workload_profile,
            config.request_rate,
            config.engine.workload.weights(0),
            split_seed(master, 0x0A5E_11A1),
            split_seed(master, 0x0A5E_11A2),
        )?;
        let router = Router::new(
            config.policy,
            config.replicas,
            split_seed(master, 0x0A5E_11A3),
        );
        let streaming = match config.engine.summary {
            SummaryMode::Exact => None,
            SummaryMode::Streaming => Some(if config.engine.workload_profile.is_default() {
                StreamingSummary::new()
            } else {
                StreamingSummary::with_classes(&config.engine.workload_profile.classes)
            }),
        };
        // The transfer model doubles as the disaggregation flag: built
        // only when some replica has a non-colocated role, so colocated
        // fleets never touch a hand-off code path. Transfers are priced
        // on the prefill platform's interconnect with the template
        // backend (per-replica overrides affect iteration pricing only).
        let transfer_model = if disaggregated {
            Some(template.backend.build(topo))
        } else {
            None
        };
        let kv_bytes_per_token = template
            .model
            .kv_bytes_per_token_all_layers(moe_model::Precision::Fp16);
        let mut fleet = Fleet {
            topo,
            table,
            layout,
            template,
            backend_overrides: config.backend_overrides,
            master,
            engines: Vec::with_capacity(config.replicas),
            states: vec![ReplicaState::Active; config.replicas],
            roles,
            decode_platform,
            transfer_model,
            kv_bytes_per_token,
            handoff_cursor: vec![0; config.replicas],
            pending_handoffs: BinaryHeap::new(),
            handoff_seq: 0,
            inflight: HashMap::new(),
            handoff: HandoffTracker::default(),
            pending_events: config.events.into(),
            chaos: ChaosTracker::default(),
            spec_groups: BTreeMap::new(),
            spec_dispatched: 0,
            spec_cancelled: 0,
            feedback_cursor: vec![0; config.replicas],
            router,
            generator,
            lookahead: None,
            clock: 0.0,
            rounds: 0,
            scheduler: config.scheduler,
            streaming,
        };
        for i in 0..config.replicas {
            let engine = fleet.build_replica(i);
            fleet.engines.push(engine);
        }
        Ok(fleet)
    }

    /// Builds the engine for replica index `i` from the stored template:
    /// seed stream `i` of the master seed, backend override `i % len`.
    /// Scale-up replicas get the next streams in sequence, so a fleet
    /// born at size N+k and a fleet scaled from N to N+k use identical
    /// per-replica RNG streams.
    fn build_replica(&self, i: usize) -> InferenceEngine<'a> {
        let mut cfg = self.template.clone();
        cfg.seed = split_seed(self.master, i as u64);
        if !self.backend_overrides.is_empty() {
            cfg.backend = self.backend_overrides[i % self.backend_overrides.len()];
        }
        // Role specialization: prefill replicas run the prefill-only
        // scheduling tier (complete at hand-off), decode replicas the
        // decode-only tier (admit with prefill done, KV admission still
        // reserves input + output) — on the decode platform when the
        // fleet is heterogeneous. Colocated replicas keep the template
        // mode and platform, byte-identically to pre-role fleets.
        let role = self.roles.get(i).copied().unwrap_or_default();
        if let BatchMode::External { mode, .. } = &mut cfg.batch {
            match role {
                ReplicaRole::Colocated => {}
                ReplicaRole::Prefill => *mode = SchedulingMode::PrefillOnly,
                ReplicaRole::Decode => *mode = SchedulingMode::DecodeOnly,
            }
        }
        let refs = match (role, self.decode_platform) {
            (ReplicaRole::Decode, Some(p)) => p,
            _ => PlatformRefs {
                topo: self.topo,
                table: self.table,
                layout: self.layout,
            },
        };
        InferenceEngine::new(refs.topo, refs.table, refs.layout, cfg)
    }

    /// The replica engines, in replica order.
    pub fn engines(&self) -> &[InferenceEngine<'a>] {
        &self.engines
    }

    /// The front-end router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Fleet simulated time: the minimum over replica clocks, i.e. the
    /// time up to which every routing decision has been made.
    pub fn sim_time(&self) -> f64 {
        self.clock
    }

    /// Synchronization rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Lifecycle state of each replica, in replica order.
    pub fn states(&self) -> &[ReplicaState] {
        &self.states
    }

    /// Serving role of each replica, in replica order.
    pub fn roles(&self) -> &[ReplicaRole] {
        &self.roles
    }

    /// Whether any replica carries a non-colocated role (hand-off paths
    /// active).
    pub fn disaggregated(&self) -> bool {
        self.transfer_model.is_some()
    }

    /// KV transfers priced but not yet delivered to a decode queue.
    pub fn pending_kv_transfers(&self) -> usize {
        self.pending_handoffs.len()
    }

    /// Replicas that may receive arrivals: admitting and prefill-capable.
    /// For a colocated fleet this is exactly the admitting set.
    fn prefill_eligible(&self) -> Vec<bool> {
        self.states
            .iter()
            .zip(&self.roles)
            .map(|(s, r)| s.admits() && r.prefill_capable())
            .collect()
    }

    /// Replicas that may receive KV hand-offs: admitting and
    /// decode-capable.
    fn decode_eligible(&self) -> Vec<bool> {
        self.states
            .iter()
            .zip(&self.roles)
            .map(|(s, r)| s.admits() && r.decode_capable())
            .collect()
    }

    /// Timeline events not yet applied (in time order).
    pub fn pending_events(&self) -> usize {
        self.pending_events.len()
    }

    /// Fraction of replicas currently admitting (1.0 for an empty state
    /// vector, which cannot occur post-construction).
    fn active_fraction(&self) -> f64 {
        if self.states.is_empty() {
            return 1.0;
        }
        let active = self.states.iter().filter(|s| s.admits()).count();
        active as f64 / self.states.len() as f64
    }

    /// Accrues the availability integral up to `now` at the current active
    /// fraction. Called right before any state transition, so the integral
    /// is piecewise-exact (the fraction only changes at timeline events).
    fn accrue_availability(&mut self, now: f64) {
        if now > self.chaos.last_t {
            self.chaos.avail_integral += self.active_fraction() * (now - self.chaos.last_t);
            self.chaos.last_t = now;
        }
    }

    /// Fleet-wide completions so far: the streaming sketch's count, or the
    /// retained-record count under [`SummaryMode::Exact`].
    fn completions_so_far(&self) -> u64 {
        match self.streaming.as_ref() {
            Some(streaming) => streaming.completed(),
            // In a disaggregated fleet a prefill replica's records are
            // hand-offs, not end-to-end completions: only decode-capable
            // replicas count. (Streaming gets this for free — prefill
            // records are never folded into the fleet sketch.)
            None => self
                .engines
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.disaggregated() || self.roles[*i] != ReplicaRole::Prefill)
                .map(|(_, e)| e.completed_requests().len() as u64)
                .sum(),
        }
    }

    /// Applies every pending timeline event due at or before `now`,
    /// merging the effects. `now` is the barrier clock in round-driven
    /// runs; event-driven `run_until` applies each event at its exact
    /// configured time instead (see [`Fleet::run_until_event_driven`]).
    fn apply_due_events(&mut self, now: f64) -> EventEffects {
        let mut effects = EventEffects {
            deactivated: Vec::new(),
            touched: Vec::new(),
        };
        while self.pending_events.front().is_some_and(|e| e.time <= now) {
            let event = self.pending_events.pop_front().expect("peeked above");
            let one = self.apply_event(event, now);
            effects.deactivated.extend(one.deactivated);
            effects.touched.extend(one.touched);
        }
        effects
    }

    /// Applies one timeline event at simulated time `now` (≥ the event's
    /// configured time). Evictions happen at iteration boundaries only —
    /// both drives guarantee no engine is mid-iteration here.
    fn apply_event(&mut self, event: FleetEvent, now: f64) -> EventEffects {
        self.accrue_availability(now);
        self.chaos.marks.push(EventMark {
            label: format!("{}@{}", event.kind.name(), event.time),
            time: now,
            completed: self.completions_so_far(),
        });
        self.chaos.events_applied += 1;
        let mut effects = EventEffects {
            deactivated: Vec::new(),
            touched: Vec::new(),
        };
        match event.kind {
            FleetEventKind::ScaleUp { count } => {
                for _ in 0..count {
                    let i = self.engines.len();
                    self.roles.push(ReplicaRole::Colocated);
                    self.handoff_cursor.push(0);
                    self.feedback_cursor.push(0);
                    let mut engine = self.build_replica(i);
                    engine.fast_forward(now);
                    self.engines.push(engine);
                    self.states.push(ReplicaState::Active);
                }
                self.router.grow(count);
            }
            FleetEventKind::Drain { replica } => {
                // Validated timelines only drain active replicas; treat
                // anything else as a no-op for runtime robustness.
                if self.states[replica] != ReplicaState::Active {
                    return effects;
                }
                self.states[replica] = ReplicaState::Draining;
                let evicted = self.engines[replica].evict_waiting_requests();
                let waiting = self.strip_spec_copies(evicted, replica);
                self.chaos.drain_rerouted += waiting.len() as u64;
                self.reroute(waiting, replica, now, &mut effects);
                let snap = self.engines[replica]
                    .replica_snapshot()
                    .expect("replicas run a serving mode");
                if snap.active == 0 && snap.queue_depth == 0 {
                    // Nothing in flight: straight to retired.
                    self.states[replica] = ReplicaState::Retired;
                    effects.deactivated.push(replica);
                }
            }
            FleetEventKind::Crash { replica } => {
                if !self.states[replica].steppable() {
                    return effects;
                }
                self.states[replica] = ReplicaState::Failed;
                effects.deactivated.push(replica);
                let evicted = self.engines[replica].evict_waiting_requests();
                let resident_evicted = self.engines[replica].evict_resident_requests();
                let waiting = self.strip_spec_copies(evicted, replica);
                // Speculative copies with a surviving sibling are simply
                // cancelled by the crash (the race continues elsewhere);
                // they are neither interruptions nor replayed prefill.
                let resident: Vec<moe_workload::InterruptedRequest> = resident_evicted
                    .into_iter()
                    .filter(|r| !self.drop_spec_copy(r.request.id.0, replica))
                    .collect();
                self.chaos.crash_rerouted += waiting.len() as u64;
                self.chaos.crash_interruptions += resident.len() as u64;
                // Interrupted requests lose their prefill progress: the
                // re-admitting replica re-prefills those prompt tokens from
                // scratch (priced through its congestion model like any
                // admission), which is the KV re-admission cost.
                self.chaos.replayed_prefill_tokens +=
                    resident.iter().map(|r| u64::from(r.prefilled)).sum::<u64>();
                self.reroute(waiting, replica, now, &mut effects);
                self.reroute(
                    resident.into_iter().map(|r| r.request).collect(),
                    replica,
                    now,
                    &mut effects,
                );
            }
            FleetEventKind::Recover { replica } => {
                if self.states[replica] == ReplicaState::Failed {
                    self.states[replica] = ReplicaState::Active;
                    // The replica was dark while failed: no phantom idle
                    // iterations, it simply rejoins at the current time.
                    self.engines[replica].fast_forward(now);
                }
            }
        }
        effects
    }

    /// Re-routes evicted requests through the router into currently
    /// admitting replicas, re-stamping each arrival at `now` — the
    /// interruption instant; queueing-delay SLOs restart from the failure,
    /// not the original arrival (which would otherwise violate the
    /// per-queue arrival-order contract).
    fn reroute(
        &mut self,
        requests: Vec<Request>,
        from: usize,
        now: f64,
        effects: &mut EventEffects,
    ) {
        if requests.is_empty() {
            return;
        }
        // Re-routes go to prefill-capable replicas only: a request
        // evicted from a decode replica lost its transferred KV with the
        // crash, so it replays its prefill (and will hand off again under
        // the same id). Identical to the admitting set when colocated.
        let eligible: Vec<bool> = self.prefill_eligible();
        let mut snapshots: Vec<ReplicaSnapshot> = self
            .engines
            .iter()
            .map(|e| e.replica_snapshot().expect("replicas run a serving mode"))
            .collect();
        for mut request in requests {
            self.chaos.requeued_tokens +=
                u64::from(request.input_len) + u64::from(request.output_len);
            request.arrival = now;
            let choice = self.router.route_among(&request, &snapshots, &eligible);
            // A group's last surviving copy keeps its race open on the new
            // replica (siblings were dropped by `strip_spec_copies`).
            if let Some(group) = self.spec_groups.get_mut(&request.id.0) {
                if let Some(copy) = group.copies.iter_mut().find(|c| c.replica == from) {
                    copy.replica = choice;
                }
            }
            self.engines[choice].offer_request(request);
            snapshots[choice] = self.engines[choice]
                .replica_snapshot()
                .expect("replicas run a serving mode");
            effects.touched.push(choice);
        }
    }

    /// Filters requests evicted off replica `from`, dropping — and
    /// counting as cancelled — every speculative copy whose group still
    /// has a copy alive elsewhere. Survivors (including a group's last
    /// copy) are returned for normal re-routing. Identity for unicast
    /// policies, which never open a group.
    fn strip_spec_copies(&mut self, evicted: Vec<Request>, from: usize) -> Vec<Request> {
        if self.spec_groups.is_empty() {
            return evicted;
        }
        evicted
            .into_iter()
            .filter(|r| !self.drop_spec_copy(r.id.0, from))
            .collect()
    }

    /// Drops the speculative copy of request `id` held on replica `from`
    /// when its group has a sibling elsewhere, counting a cancellation.
    /// Returns `false` (route it normally) for non-speculative requests
    /// and for a group's last copy.
    fn drop_spec_copy(&mut self, id: u64, from: usize) -> bool {
        let Some(group) = self.spec_groups.get_mut(&id) else {
            return false;
        };
        let Some(pos) = group.copies.iter().position(|c| c.replica == from) else {
            return false;
        };
        if group.copies.len() == 1 {
            return false;
        }
        group.copies.remove(pos);
        self.spec_cancelled += 1;
        true
    }

    /// Routes every arrival and due KV hand-off up to the fleet clock, as
    /// one time-sorted merge (a hand-off wins an exact tie). Serial by
    /// design: the router observes each offer it makes (snapshots are
    /// refreshed per request), so load-aware policies see their own
    /// decisions within a burst. Arrivals go to admitting prefill-capable
    /// replicas, hand-offs to admitting decode-capable ones; for a
    /// colocated fleet there are no hand-offs and the arrival mask is the
    /// admitting set — byte-identical to the pre-role router loop.
    fn route_arrivals(&mut self) {
        let eligible: Vec<bool> = self.prefill_eligible();
        let decode_eligible: Vec<bool> = if self.disaggregated() {
            self.decode_eligible()
        } else {
            Vec::new()
        };
        let mut snapshots: Vec<ReplicaSnapshot> = self
            .engines
            .iter()
            .map(|e| e.replica_snapshot().expect("replicas run a serving mode"))
            .collect();
        // Bound the pull (as `BatchScheduler::pull_arrivals` does) so an
        // extreme configured rate cannot stall a round; the overflow stays
        // in the generator and drains over subsequent rounds.
        for _ in 0..moe_workload::MAX_ARRIVALS_PER_PULL {
            if self.lookahead.is_none() {
                // A `None` means a finite source (trace replay) ran dry;
                // no further arrival events, but hand-offs still deliver.
                self.lookahead = self.generator.next_request();
            }
            let arrival_time = self.lookahead.as_ref().map_or(f64::INFINITY, |r| r.arrival);
            let handoff_time = self
                .pending_handoffs
                .peek()
                .map_or(f64::INFINITY, |h| h.arrival);
            if handoff_time <= arrival_time {
                if handoff_time > self.clock {
                    break;
                }
                let handoff = self.pending_handoffs.pop().expect("peeked above");
                let choice =
                    self.router
                        .route_among(&handoff.request, &snapshots, &decode_eligible);
                self.engines[choice].offer_request(handoff.request);
                snapshots[choice] = self.engines[choice]
                    .replica_snapshot()
                    .expect("replicas run a serving mode");
            } else {
                if arrival_time > self.clock {
                    break;
                }
                let request = self.lookahead.take().expect("peeked above");
                match self.router.route_decision(&request, &snapshots, &eligible) {
                    Decision::Unicast(choice) => {
                        self.engines[choice].offer_request(request);
                        snapshots[choice] = self.engines[choice]
                            .replica_snapshot()
                            .expect("replicas run a serving mode");
                    }
                    Decision::Speculative(targets) => {
                        self.open_spec_group(&request, &targets);
                        for &t in &targets {
                            self.engines[t].offer_request(request.clone());
                            snapshots[t] = self.engines[t]
                                .replica_snapshot()
                                .expect("replicas run a serving mode");
                        }
                    }
                    // Shed at the front end: the request reaches no
                    // replica (the router counted it per class).
                    Decision::Shed => {}
                }
            }
        }
    }

    /// Opens the first-token race for a speculatively multicast request.
    fn open_spec_group(&mut self, request: &Request, targets: &[usize]) {
        self.spec_dispatched += 1;
        self.spec_groups.insert(
            request.id.0,
            SpecGroup {
                copies: targets
                    .iter()
                    .map(|&replica| SpecCopy {
                        replica,
                        done: None,
                    })
                    .collect(),
            },
        );
    }

    /// One synchronization round on the in-thread executor.
    pub fn step_round(&mut self) {
        self.step_round_with(&SerialReplicaPool);
    }

    /// One synchronization round: route arrivals up to the fleet clock,
    /// advance every replica by one iteration on `pool`, then resynchronize
    /// the fleet clock. Output is identical for every [`ReplicaPool`].
    ///
    /// Under [`FleetScheduler::EventHeap`] the jobs are submitted as a
    /// heap-ordered wave — `(sim_time, replica index)` order — instead of
    /// replica order. Replicas are independent within a round, so the wave
    /// is byte-identical to lock-step for any pool; the fleet goldens pin
    /// this equivalence.
    pub fn step_round_with(&mut self, pool: &dyn ReplicaPool) {
        self.route_arrivals();
        // Timeline events fire at the first barrier whose clock reached
        // them — identically under both round-driven drives, preserving
        // their bit-identity. Re-routed requests are offered after this
        // round's arrivals (all ≤ the clock), keeping every per-replica
        // offer stream in arrival order.
        self.apply_due_events(self.clock);
        let steppable: Vec<usize> = (0..self.engines.len())
            .filter(|&i| self.states[i].steppable())
            .collect();
        let mut order = steppable;
        if self.scheduler == FleetScheduler::EventHeap {
            order.sort_by(|&a, &b| {
                self.engines[a]
                    .sim_time()
                    .total_cmp(&self.engines[b].sim_time())
                    .then(a.cmp(&b))
            });
        }
        let mut slots: Vec<Option<&mut InferenceEngine<'a>>> =
            self.engines.iter_mut().map(Some).collect();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = order
            .into_iter()
            .map(|i| {
                let engine = slots[i].take().expect("each replica steps once");
                Box::new(move || {
                    engine.step();
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        self.drain_fresh_completions();
        self.retire_empty_drainers();
        // The clock ignores retired/failed replicas: their frozen engine
        // clocks no longer gate routing. Timeline validation guarantees at
        // least one active replica at all times, so the min is never empty.
        self.clock = (0..self.engines.len())
            .filter(|&i| self.states[i].steppable())
            .map(|i| self.engines[i].sim_time())
            .fold(f64::INFINITY, f64::min);
        self.rounds += 1;
    }

    /// Retires draining replicas that have run dry: they price no further
    /// iterations and leave the fleet-clock computation. Returns the
    /// replicas retired by this call.
    fn retire_empty_drainers(&mut self) -> Vec<usize> {
        let mut retired = Vec::new();
        for i in 0..self.engines.len() {
            if self.states[i] != ReplicaState::Draining {
                continue;
            }
            let snap = self.engines[i]
                .replica_snapshot()
                .expect("replicas run a serving mode");
            if snap.queue_depth == 0 && snap.active == 0 {
                self.states[i] = ReplicaState::Retired;
                retired.push(i);
            }
        }
        retired
    }

    /// Runs `rounds` synchronization rounds serially.
    pub fn run(&mut self, rounds: usize) {
        self.run_with(rounds, &SerialReplicaPool);
    }

    /// Runs `rounds` synchronization rounds, stepping replicas on `pool`.
    pub fn run_with(&mut self, rounds: usize, pool: &dyn ReplicaPool) {
        for _ in 0..rounds {
            self.step_round_with(pool);
        }
    }

    /// Folds every replica's freshly-staged completions into the fleet's
    /// aggregate streaming summary (no-op under [`SummaryMode::Exact`]).
    /// Always in replica order, so the aggregate sketch is deterministic
    /// for any [`ReplicaPool`]. In a disaggregated fleet this is also the
    /// hand-off boundary: prefill completions become priced KV transfers,
    /// decode completions close their matching hand-off (and the harvest
    /// runs under exact summaries too, via per-replica record cursors).
    fn drain_fresh_completions(&mut self) {
        if self.disaggregated() {
            for i in 0..self.engines.len() {
                self.harvest_replica(i);
            }
        } else {
            for i in 0..self.engines.len() {
                self.harvest_colocated(i);
            }
        }
        self.resolve_spec_groups();
    }

    /// Colocated-fleet completion harvest for one replica. Streaming
    /// fleets drain the staged records into the fleet sketch as before;
    /// exact fleets additionally advance a record cursor when — and only
    /// when — the policy consumes feedback or a speculative race is open,
    /// so snapshot unicast fleets never pay for the pass. A record whose
    /// request is still racing is stashed on its speculative copy instead
    /// of observed: the resolution decides which copy counts.
    fn harvest_colocated(&mut self, i: usize) {
        if self.streaming.is_some() {
            for record in self.engines[i].take_fresh_completions() {
                if self.stash_spec_record(i, &record) {
                    continue;
                }
                self.streaming
                    .as_mut()
                    .expect("checked above")
                    .observe_record(&record);
                self.router.observe_completion(i, &record);
            }
        } else if self.router.wants_feedback() || !self.spec_groups.is_empty() {
            let done = self.engines[i].completed_requests();
            let fresh: Vec<RequestRecord> = done[self.feedback_cursor[i]..].to_vec();
            self.feedback_cursor[i] = done.len();
            for record in fresh {
                if self.stash_spec_record(i, &record) {
                    continue;
                }
                self.router.observe_completion(i, &record);
            }
        }
    }

    /// Stashes a completion on its speculative copy when the request's
    /// first-token race is still open. Returns whether the record was
    /// captured (the caller must then not observe it).
    fn stash_spec_record(&mut self, replica: usize, record: &RequestRecord) -> bool {
        let Some(group) = self.spec_groups.get_mut(&record.id.0) else {
            return false;
        };
        match group.copies.iter_mut().find(|c| c.replica == replica) {
            Some(copy) => {
                copy.done = Some(record.clone());
                true
            }
            None => false,
        }
    }

    /// Attempts to settle every open speculative race, in request-id
    /// order. A group resolves as soon as any copy has produced a first
    /// token — completed copies (stashed records) and mid-flight copies
    /// (probed via [`InferenceEngine::copy_status`]) are candidates, and
    /// the earliest first-token time wins (ties to the lowest replica
    /// index). Losers are cancelled: waiting/active copies are torn down
    /// on their queue (KV released, admission accounting unwound),
    /// already-completed copies have their records discarded so every
    /// logical request is counted once. Copies absent from their replica
    /// without completing (rejected or deadline-shed there) are pruned
    /// without a cancellation — the queue counters already hold them.
    /// Returns whether any engine's queue state changed (the event drive
    /// refreshes its snapshot mirror on `true`).
    fn resolve_spec_groups(&mut self) -> bool {
        if self.spec_groups.is_empty() {
            return false;
        }
        let ids: Vec<u64> = self.spec_groups.keys().copied().collect();
        let mut changed = false;
        for id in ids {
            changed |= self.resolve_spec_group(id);
        }
        changed
    }

    /// One group's resolution attempt (see [`Fleet::resolve_spec_groups`]).
    fn resolve_spec_group(&mut self, id: u64) -> bool {
        let rid = moe_workload::RequestId(id);
        let group = self
            .spec_groups
            .get_mut(&id)
            .expect("caller iterates live ids");
        let engines = &self.engines;
        group.copies.retain(|c| {
            c.done.is_some() || engines[c.replica].copy_status(rid) != CopyStatus::Absent
        });
        if group.copies.is_empty() {
            // Every copy was rejected or shed at its replica: the race is
            // void, the request is fully accounted by the queue counters.
            self.spec_groups.remove(&id);
            return false;
        }
        let mut winner: Option<(f64, usize)> = None;
        for (idx, c) in group.copies.iter().enumerate() {
            let t = match &c.done {
                Some(r) => Some(r.first_token),
                None => match engines[c.replica].copy_status(rid) {
                    CopyStatus::Active { first_token } => first_token,
                    _ => None,
                },
            };
            if let Some(t) = t {
                let better = match winner {
                    None => true,
                    Some((bt, bidx)) => {
                        t < bt || (t == bt && c.replica < group.copies[bidx].replica)
                    }
                };
                if better {
                    winner = Some((t, idx));
                }
            }
        }
        let Some((_, winner_idx)) = winner else {
            return false; // no first token anywhere yet: race stays open
        };
        let group = self.spec_groups.remove(&id).expect("present above");
        let mut changed = false;
        for (idx, copy) in group.copies.into_iter().enumerate() {
            if idx == winner_idx {
                if let Some(record) = copy.done {
                    self.deliver_winner(copy.replica, &record);
                }
                // A mid-flight winner needs nothing here: its group is
                // closed, so its eventual record flows through the normal
                // harvest.
                continue;
            }
            match copy.done {
                Some(record) => {
                    // The loser finished before the race settled (both
                    // copies completing in one round): discard its record
                    // so the logical request counts once. Exact-mode
                    // engines still retain it — delete and rewind the
                    // harvest cursor past the removal.
                    if self.streaming.is_none()
                        && self.engines[copy.replica]
                            .remove_completed(record.id)
                            .is_some()
                    {
                        let cursor = if self.disaggregated() {
                            &mut self.handoff_cursor[copy.replica]
                        } else {
                            &mut self.feedback_cursor[copy.replica]
                        };
                        *cursor = cursor.saturating_sub(1);
                    }
                    self.spec_cancelled += 1;
                }
                None => {
                    // Cancel-on-first-token proper: tear the copy down on
                    // its queue through the eviction path (KV released,
                    // admitted-token accounting unwound).
                    if self.engines[copy.replica].cancel_request(rid) {
                        self.spec_cancelled += 1;
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    /// Routes a settled race's winning record where a non-speculative
    /// completion on that replica would have gone: a KV hand-off from the
    /// prefill tier, an end-to-end completion everywhere else.
    fn deliver_winner(&mut self, replica: usize, record: &RequestRecord) {
        if self.disaggregated() && self.roles[replica] == ReplicaRole::Prefill {
            self.emit_handoff(record);
        } else {
            self.complete_end_to_end(replica, record);
        }
    }

    /// Role-aware completion harvest for one replica of a disaggregated
    /// fleet. A prefill replica's finished records each become a KV
    /// hand-off: the transfer of
    /// `kv_bytes_per_token_all_layers × prefill tokens` is priced through
    /// the congestion model, and the request is re-queued for the decode
    /// tier at `prefill finish + transfer time` (delivered by
    /// `route_arrivals` / the event loop in global time order). Every
    /// other replica's records are end-to-end completions: folded into
    /// the fleet streaming sketch and matched back to their in-flight
    /// hand-off for latency accounting.
    fn harvest_replica(&mut self, i: usize) {
        let records: Vec<RequestRecord> = if self.streaming.is_some() {
            self.engines[i].take_fresh_completions()
        } else {
            let done = self.engines[i].completed_requests();
            let fresh = done[self.handoff_cursor[i]..].to_vec();
            self.handoff_cursor[i] = done.len();
            fresh
        };
        if records.is_empty() {
            return;
        }
        let prefill = self.roles[i] == ReplicaRole::Prefill;
        for r in records {
            // A record whose request is still racing speculatively is
            // held back: the race resolution hands the winner to
            // `emit_handoff` / `complete_end_to_end` itself.
            if self.stash_spec_record(i, &r) {
                continue;
            }
            if prefill {
                self.emit_handoff(&r);
            } else {
                self.complete_end_to_end(i, &r);
            }
        }
    }

    /// Turns one finished prefill record into a priced KV hand-off toward
    /// the decode tier (see [`Fleet::harvest_replica`]).
    fn emit_handoff(&mut self, r: &RequestRecord) {
        let bytes = self.kv_bytes_per_token * f64::from(r.prefill_scheduled);
        let transfer = self.price_transfer(bytes);
        self.handoff.kv_transfers += 1;
        self.handoff.kv_transfer_bytes += bytes;
        self.handoff.kv_transfer_seconds += transfer;
        self.handoff.max_transfer_seconds = self.handoff.max_transfer_seconds.max(transfer);
        self.inflight.insert(
            r.id.0,
            HandoffMeta {
                arrival: r.arrival,
                prefill_finish: r.finish,
            },
        );
        self.handoff_seq += 1;
        let arrival = r.finish + transfer;
        self.pending_handoffs.push(HandoffEvent {
            arrival,
            seq: self.handoff_seq,
            request: Request {
                id: r.id,
                scenario: r.scenario,
                class: r.class,
                input_len: r.input_len,
                output_len: r.output_len,
                arrival,
            },
        });
    }

    /// Books one end-to-end completion on replica `i`: folds it into the
    /// fleet streaming sketch, closes its in-flight hand-off (if any), and
    /// feeds the router's latency feedback (a no-op for snapshot
    /// policies).
    fn complete_end_to_end(&mut self, i: usize, r: &RequestRecord) {
        if let Some(streaming) = self.streaming.as_mut() {
            streaming.observe_record(r);
        }
        if let Some(meta) = self.inflight.remove(&r.id.0) {
            let latency = (r.first_token - meta.prefill_finish).max(0.0);
            self.handoff.handoffs_completed += 1;
            self.handoff.handoff_latency_seconds += latency;
            self.handoff.max_handoff_latency = self.handoff.max_handoff_latency.max(latency);
            let ttft = (r.first_token - meta.arrival).max(0.0);
            self.handoff.e2e_ttft_seconds += ttft;
            self.handoff.max_e2e_ttft = self.handoff.max_e2e_ttft.max(ttft);
        }
        self.router.observe_completion(i, r);
    }

    /// Prices one prefill→decode KV transfer on the prefill platform's
    /// interconnect: the footprint is striped across `num_devices / 2`
    /// disjoint device pairs (device `i` → device `n−1−i`), so the
    /// estimate reflects the platform's cross-section bandwidth rather
    /// than one serialized link. Returns the modeled transfer seconds.
    fn price_transfer(&self, bytes: f64) -> f64 {
        let Some(model) = self.transfer_model.as_ref() else {
            return 0.0;
        };
        let n = self.topo.num_devices();
        let half = (n / 2).max(1);
        let per_pair = bytes / half as f64;
        let pairs: Vec<(DeviceId, DeviceId, f64)> = (0..half)
            .map(|i| (DeviceId(i as u32), DeviceId((n - 1 - i) as u32), per_pair))
            .collect();
        model.price_pairs(self.table, &pairs).total_time
    }

    /// Advances simulated time to `horizon` seconds (no-op if already
    /// past). This is where the two [`FleetScheduler`]s genuinely diverge:
    ///
    /// * **Lock-step** loops whole synchronization rounds until the fleet
    ///   clock reaches the horizon — every replica prices an iteration
    ///   every round, including drained replicas whose idle iterations
    ///   advance their clocks by microseconds. The honest reference cost.
    /// * **Event-heap** runs a causal discrete-event loop: a binary heap
    ///   keyed on each replica's next-event time, interleaved with the
    ///   single outstanding arrival event. Replicas with no queued or
    ///   resident work *park* — they leave the heap, price nothing, and
    ///   are woken (`fast_forward` to the arrival time) when the router
    ///   next offers them a request. Arrivals at time *t* are routed
    ///   before any step at *t*; step ties break by replica index. The
    ///   loop stops at the first event at or beyond the horizon, and the
    ///   fleet clock lands exactly on `horizon` (every routing decision up
    ///   to it has been made).
    ///
    /// Under [`SummaryMode::Streaming`] both paths keep memory O(1) in
    /// request count. `rounds()` advances by whole rounds (lock-step) or
    /// by priced step events (event-heap).
    pub fn run_until(&mut self, horizon: f64) {
        match self.scheduler {
            FleetScheduler::Lockstep => {
                while self.clock < horizon {
                    self.step_round();
                }
            }
            FleetScheduler::EventHeap => self.run_until_event_driven(horizon),
        }
    }

    /// The event-heap core of [`Fleet::run_until`]. Timeline events join
    /// the arrival stream and the step heap as a third event source and are
    /// applied at exactly their configured time — before arrivals and
    /// steps at the same instant. Crashes and retirements bump the
    /// replica's epoch, lazily invalidating its heap entries; scale-ups
    /// extend the loop-local mirrors in place.
    fn run_until_event_driven(&mut self, horizon: f64) {
        let mut snapshots: Vec<ReplicaSnapshot> = self
            .engines
            .iter()
            .map(|e| e.replica_snapshot().expect("replicas run a serving mode"))
            .collect();
        let mut eligible: Vec<bool> = self.prefill_eligible();
        let mut eligible_decode: Vec<bool> = self.decode_eligible();
        // Rebuild the step heap from scratch: any steppable replica with
        // work pending steps next at its own clock; the rest are parked.
        // `scheduled[i]` mirrors heap membership so a replica is never
        // enqueued twice.
        let mut heap: BinaryHeap<StepEvent> = BinaryHeap::new();
        let mut scheduled = vec![false; self.engines.len()];
        let mut epoch: Vec<u64> = vec![0; self.engines.len()];
        for (i, snap) in snapshots.iter().enumerate() {
            if self.states[i].steppable() && (snap.queue_depth > 0 || snap.active > 0) {
                heap.push(StepEvent {
                    time: self.engines[i].sim_time(),
                    replica: i,
                    epoch: 0,
                });
                scheduled[i] = true;
            }
        }
        loop {
            // Discard heap entries orphaned by a crash or retirement.
            while heap
                .peek()
                .is_some_and(|top| top.epoch != epoch[top.replica])
            {
                heap.pop();
            }
            // One arrival is outstanding at a time (the lookahead), so
            // the next event is min(timeline, hand-off, lookahead, heap
            // top) — timeline first, then hand-off delivery, then
            // arrival, then step on time ties (the router-before-replica
            // contract).
            let arrival_time = match &self.lookahead {
                Some(r) => r.arrival,
                // An exhausted finite source (trace replay) stops producing
                // arrival events; steps and timeline events still fire.
                None => match self.generator.next_request() {
                    Some(r) => {
                        let t = r.arrival;
                        self.lookahead = Some(r);
                        t
                    }
                    None => f64::INFINITY,
                },
            };
            let handoff_time = self
                .pending_handoffs
                .peek()
                .map_or(f64::INFINITY, |h| h.arrival);
            let step = heap.peek().copied();
            let step_time = step.map_or(f64::INFINITY, |s| s.time);
            let timeline_time = self
                .pending_events
                .front()
                .map_or(f64::INFINITY, |e| e.time);
            let event_time = timeline_time
                .min(handoff_time)
                .min(arrival_time)
                .min(step_time);
            if event_time >= horizon {
                break;
            }
            if timeline_time <= event_time {
                let event = self.pending_events.pop_front().expect("peeked above");
                let effects = self.apply_event(event, event.time);
                // Scale-up: extend the loop-local mirrors. New replicas are
                // idle (parked) until the router first offers them work.
                for i in snapshots.len()..self.engines.len() {
                    snapshots.push(
                        self.engines[i]
                            .replica_snapshot()
                            .expect("replicas run a serving mode"),
                    );
                    scheduled.push(false);
                    epoch.push(0);
                }
                eligible.clear();
                eligible.extend(
                    self.states
                        .iter()
                        .zip(&self.roles)
                        .map(|(s, r)| s.admits() && r.prefill_capable()),
                );
                eligible_decode.clear();
                eligible_decode.extend(
                    self.states
                        .iter()
                        .zip(&self.roles)
                        .map(|(s, r)| s.admits() && r.decode_capable()),
                );
                for &i in &effects.deactivated {
                    epoch[i] += 1;
                    scheduled[i] = false;
                    snapshots[i] = self.engines[i]
                        .replica_snapshot()
                        .expect("replicas run a serving mode");
                }
                for &i in &effects.touched {
                    snapshots[i] = self.engines[i]
                        .replica_snapshot()
                        .expect("replicas run a serving mode");
                    if !scheduled[i] && self.states[i].steppable() {
                        // Wake a parked replica that just received
                        // re-routed work.
                        self.engines[i].fast_forward(event.time);
                        heap.push(StepEvent {
                            time: self.engines[i].sim_time(),
                            replica: i,
                            epoch: epoch[i],
                        });
                        scheduled[i] = true;
                    }
                }
            } else if handoff_time <= event_time {
                // Deliver a priced KV transfer to the decode tier at its
                // arrival instant, exactly like an arrival (wake a parked
                // target, refresh its snapshot) but over the
                // decode-capable mask.
                let handoff = self.pending_handoffs.pop().expect("peeked above");
                let choice =
                    self.router
                        .route_among(&handoff.request, &snapshots, &eligible_decode);
                self.engines[choice].offer_request(handoff.request);
                if !scheduled[choice] {
                    self.engines[choice].fast_forward(event_time);
                    heap.push(StepEvent {
                        time: self.engines[choice].sim_time(),
                        replica: choice,
                        epoch: epoch[choice],
                    });
                    scheduled[choice] = true;
                }
                snapshots[choice] = self.engines[choice]
                    .replica_snapshot()
                    .expect("replicas run a serving mode");
            } else if arrival_time <= step_time {
                let request = self.lookahead.take().expect("peeked above");
                let targets: Vec<usize> =
                    match self.router.route_decision(&request, &snapshots, &eligible) {
                        Decision::Unicast(choice) => vec![choice],
                        Decision::Speculative(targets) => {
                            self.open_spec_group(&request, &targets);
                            targets
                        }
                        // Shed at the front end: no replica is touched or
                        // woken.
                        Decision::Shed => Vec::new(),
                    };
                for &choice in &targets {
                    self.engines[choice].offer_request(request.clone());
                    if !scheduled[choice] {
                        // Wake a parked replica at the arrival instant: no
                        // phantom idle iterations were priced while it
                        // slept.
                        self.engines[choice].fast_forward(event_time);
                        heap.push(StepEvent {
                            time: self.engines[choice].sim_time(),
                            replica: choice,
                            epoch: epoch[choice],
                        });
                        scheduled[choice] = true;
                    }
                    snapshots[choice] = self.engines[choice]
                        .replica_snapshot()
                        .expect("replicas run a serving mode");
                }
            } else {
                let StepEvent { replica, .. } = heap.pop().expect("peeked above");
                self.engines[replica].step();
                self.rounds += 1;
                let snap = self.engines[replica]
                    .replica_snapshot()
                    .expect("replicas run a serving mode");
                if snap.queue_depth > 0 || snap.active > 0 {
                    heap.push(StepEvent {
                        time: self.engines[replica].sim_time(),
                        replica,
                        epoch: epoch[replica],
                    });
                } else {
                    scheduled[replica] = false;
                    if self.states[replica] == ReplicaState::Draining {
                        // A drainer running dry retires on the spot.
                        self.states[replica] = ReplicaState::Retired;
                        epoch[replica] += 1;
                    }
                }
                snapshots[replica] = snap;
                if self.drain_fresh_completions_for(replica) {
                    // A speculative cancellation touched other replicas'
                    // queues: refresh the whole snapshot mirror.
                    for (i, s) in snapshots.iter_mut().enumerate() {
                        *s = self.engines[i]
                            .replica_snapshot()
                            .expect("replicas run a serving mode");
                    }
                }
            }
        }
        // Every timeline event, arrival, and step strictly before the
        // horizon has been processed: the covered span is exactly the
        // horizon.
        self.clock = self.clock.max(horizon);
    }

    /// Per-replica variant of [`Fleet::drain_fresh_completions`] for the
    /// event loop (only the stepped replica can have staged completions).
    /// Returns whether a speculative resolution changed some *other*
    /// replica's queue state (the caller's snapshot mirror is stale).
    fn drain_fresh_completions_for(&mut self, replica: usize) -> bool {
        if self.disaggregated() {
            self.harvest_replica(replica);
        } else {
            self.harvest_colocated(replica);
        }
        self.resolve_spec_groups()
    }

    /// Memory proxy: request records and iteration-history entries
    /// currently retained across all replicas. O(total completions) under
    /// [`SummaryMode::Exact`]; bounded by the replica count under
    /// [`SummaryMode::Streaming`] (one history entry per replica, staged
    /// completions drained every round / step event).
    pub fn retained_records(&self) -> usize {
        self.engines
            .iter()
            .map(InferenceEngine::retained_records)
            .sum()
    }

    /// Fleet-level serving statistics over the run so far.
    pub fn summary(&self) -> FleetSummary {
        let per_replica: Vec<ServingSummary> = self
            .engines
            .iter()
            .map(InferenceEngine::serving_summary)
            .collect();

        let total_rejects: u64 = per_replica.iter().map(|s| s.admission_rejects).sum();
        // Per-class admission counters are fleet-wide sums over the replica
        // queues (shed and rejected happen at the replica barrier, not at
        // the router).
        let mut shed_by_class = [0u64; 2];
        let mut rejected_by_class = [0u64; 2];
        for e in &self.engines {
            let (shed, rejected) = e.class_counters();
            for c in 0..2 {
                shed_by_class[c] += shed[c];
                rejected_by_class[c] += rejected[c];
            }
        }
        // Router-level load shedding ([`Outcome::Discard`]) unifies with
        // the queues' deadline sheds in the per-class attainment report:
        // a request turned away at the front end missed its SLO exactly
        // like one shed at a replica barrier. Zero for non-shedding
        // policies, keeping their aggregates byte-identical.
        let router_discarded = self.router.discarded();
        for c in 0..2 {
            shed_by_class[c] += router_discarded[c];
        }
        let classes: &[moe_workload::ClassSpec] = if self.template.workload_profile.is_default() {
            &[]
        } else {
            &self.template.workload_profile.classes
        };
        let mut aggregate = match self.streaming.as_ref() {
            // Streaming: the fleet's own sketch over the union of
            // completions (P² sketches don't merge, so it was fed as the
            // replicas drained). Goodput is against the fleet clock.
            Some(streaming) => streaming.summary_with_workload(
                total_rejects,
                0,
                self.clock,
                shed_by_class,
                rejected_by_class,
            ),
            // Exact: percentiles over the union of retained records. In a
            // disaggregated fleet a prefill replica's records are
            // hand-offs, not end-to-end completions — only decode-capable
            // replicas' records aggregate (the hand-off section carries
            // the prefill-side accounting).
            None => {
                let all_records: Vec<moe_workload::RequestRecord> = self
                    .engines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| {
                        !self.disaggregated() || self.roles[*i] != ReplicaRole::Prefill
                    })
                    .flat_map(|(_, e)| e.completed_requests().iter().cloned())
                    .collect();
                let mut aggregate = ServingSummary::from_records_with_workload(
                    &all_records,
                    &[],
                    total_rejects,
                    0,
                    shed_by_class,
                    rejected_by_class,
                    classes,
                );
                aggregate.sim_seconds = self.clock;
                if self.clock > 0.0 {
                    aggregate.goodput_rps = all_records.len() as f64 / self.clock;
                    aggregate.goodput_tokens_per_s = all_records
                        .iter()
                        .map(|r| r.input_len as f64 + r.output_len as f64)
                        .sum::<f64>()
                        / self.clock;
                }
                aggregate
            }
        };
        // Occupancy aggregates are fleet-wide sums (max over replicas for
        // the depth high-water mark).
        for s in &per_replica {
            aggregate.mean_queue_depth += s.mean_queue_depth;
            aggregate.mean_active_requests += s.mean_active_requests;
            aggregate.max_queue_depth = aggregate.max_queue_depth.max(s.max_queue_depth);
            aggregate.peak_kv_tokens += s.peak_kv_tokens;
        }

        let completed = per_replica.iter().map(|s| s.completed as f64);

        FleetSummary {
            replicas: self.engines.len(),
            rounds: self.rounds,
            sim_seconds: self.clock,
            routed: self.router.routed().to_vec(),
            routing_imbalance: self.router.routing_imbalance(),
            completion_imbalance: moe_workload::max_mean_imbalance(completed),
            per_replica,
            aggregate,
            availability: self.availability(),
            handoff: self.handoff_readout(),
            speculative: FleetSpeculative {
                groups_dispatched: self.spec_dispatched,
                cancelled_copies: self.spec_cancelled,
                open_groups: self.spec_groups.len() as u64,
            },
            router_discarded,
        }
    }

    /// The hand-off section of [`Fleet::summary`] (all zeros for a
    /// colocated fleet).
    fn handoff_readout(&self) -> FleetHandoff {
        let t = &self.handoff;
        let mean = |sum: f64, n: u64| if n > 0 { sum / n as f64 } else { 0.0 };
        FleetHandoff {
            kv_transfers: t.kv_transfers,
            kv_transfer_bytes: t.kv_transfer_bytes,
            kv_transfer_seconds: t.kv_transfer_seconds,
            max_transfer_seconds: t.max_transfer_seconds,
            pending_transfers: self.pending_handoffs.len() as u64,
            handoffs_completed: t.handoffs_completed,
            mean_handoff_latency: mean(t.handoff_latency_seconds, t.handoffs_completed),
            max_handoff_latency: t.max_handoff_latency,
            mean_e2e_ttft: mean(t.e2e_ttft_seconds, t.handoffs_completed),
            max_e2e_ttft: t.max_e2e_ttft,
        }
    }

    /// The availability section of [`Fleet::summary`]: chaos counters, the
    /// time-weighted active-replica fraction (accrued lazily to the current
    /// clock — non-mutating), per-replica lifecycle states, and the
    /// goodput windows between event boundaries.
    fn availability(&self) -> FleetAvailability {
        let chaos = &self.chaos;
        let available_fraction = if self.clock > 0.0 {
            let tail = self.active_fraction() * (self.clock - chaos.last_t).max(0.0);
            ((chaos.avail_integral + tail) / self.clock).min(1.0)
        } else {
            1.0
        };
        let window = |after: String, start: f64, end: f64, completed: u64| GoodputWindow {
            after,
            start,
            end,
            completed,
            goodput_rps: if end > start {
                completed as f64 / (end - start)
            } else {
                0.0
            },
        };
        let mut goodput_windows = Vec::new();
        if !chaos.marks.is_empty() {
            let mut prev_t = 0.0;
            let mut prev_completed = 0;
            let mut prev_label = String::from("start");
            for mark in &chaos.marks {
                goodput_windows.push(window(
                    prev_label,
                    prev_t,
                    mark.time,
                    mark.completed - prev_completed,
                ));
                prev_t = mark.time;
                prev_completed = mark.completed;
                prev_label = mark.label.clone();
            }
            goodput_windows.push(window(
                prev_label,
                prev_t,
                self.clock,
                self.completions_so_far() - prev_completed,
            ));
        }
        FleetAvailability {
            events_applied: chaos.events_applied,
            crash_interruptions: chaos.crash_interruptions,
            drain_rerouted: chaos.drain_rerouted,
            crash_rerouted: chaos.crash_rerouted,
            requeued_tokens: chaos.requeued_tokens,
            replayed_prefill_tokens: chaos.replayed_prefill_tokens,
            available_fraction,
            replica_states: self.states.iter().map(|s| s.name()).collect(),
            goodput_windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ErMapping;
    use moe_model::ModelConfig;
    use moe_workload::{Scenario, SchedulingMode, WorkloadMix};
    use wsc_topology::{Mesh, MultiWafer, PlatformParams};

    fn engine_template(seed: u64) -> EngineConfig {
        let mut config = EngineConfig::new(ModelConfig::tiny())
            .with_seed(seed)
            .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
            .with_batch(BatchMode::Scheduled {
                mode: SchedulingMode::Hybrid,
                max_batch_tokens: 2048,
                max_active: 128,
                request_rate: 0.0, // ignored: the fleet owns arrivals
                iteration_period: 0.02,
            });
        config.kv_hbm_fraction = 1.0e-3;
        config
    }

    /// Compile-time guarantee the worker pool relies on: engines move
    /// across threads.
    #[test]
    fn inference_engine_is_send() {
        fn require_send<T: Send>() {}
        require_send::<InferenceEngine<'static>>();
        require_send::<Fleet<'static>>();
    }

    #[test]
    fn fleet_serves_and_conserves_requests() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(3, RouterPolicy::LeastQueueDepth, 6.0e3, engine_template(11));
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(300);
        let summary = fleet.summary();
        assert_eq!(summary.replicas, 3);
        assert_eq!(summary.rounds, 300);
        assert!(summary.sim_seconds > 0.0);
        assert!(summary.aggregate.completed > 0, "no request completed");
        // Conservation: every routed request is waiting, resident,
        // rejected, shed, or completed on exactly one replica.
        let routed: u64 = summary.routed.iter().sum();
        let accounted: u64 = fleet
            .engines()
            .iter()
            .zip(&summary.per_replica)
            .map(|(e, s)| {
                let snap = e.replica_snapshot().unwrap();
                snap.queue_depth as u64
                    + snap.active as u64
                    + s.admission_rejects
                    + s.shed
                    + s.completed as u64
            })
            .sum();
        assert_eq!(routed, accounted, "requests lost or double-counted");
        // Aggregate completions match the per-replica sum.
        let sum: usize = summary.per_replica.iter().map(|s| s.completed).sum();
        assert_eq!(summary.aggregate.completed, sum);
        assert!(summary.routing_imbalance >= 1.0);
        assert!(summary.completion_imbalance >= 1.0);
    }

    #[test]
    fn fleet_clock_is_min_replica_clock() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(2, RouterPolicy::RoundRobin, 4.0e3, engine_template(5));
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(50);
        let min = fleet
            .engines()
            .iter()
            .map(|e| e.sim_time())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(fleet.sim_time(), min);
        for e in fleet.engines() {
            assert!(e.sim_time() >= fleet.sim_time());
        }
    }

    #[test]
    fn pooled_round_matches_serial_round() {
        // A deliberately out-of-order executor: reversing job order must
        // not change fleet state (replicas are independent in a round).
        struct ReversedPool;
        impl ReplicaPool for ReversedPool {
            fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
                for job in jobs.into_iter().rev() {
                    job();
                }
            }
        }
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = |pool: &dyn ReplicaPool| {
            let config = FleetConfig::new(
                3,
                RouterPolicy::PowerOfTwoChoices,
                6.0e3,
                engine_template(17),
            );
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run_with(120, pool);
            fleet.summary()
        };
        let serial = run(&SerialReplicaPool);
        let reversed = run(&ReversedPool);
        assert_eq!(serial.routed, reversed.routed);
        assert_eq!(serial.aggregate, reversed.aggregate);
        assert_eq!(serial.per_replica, reversed.per_replica);
    }

    #[test]
    fn seed_split_gives_replicas_distinct_streams() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(2, RouterPolicy::RoundRobin, 4.0e3, engine_template(23));
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(30);
        // Round-robin feeds both replicas nearly identical load; distinct
        // gating streams mean their priced iteration times diverge.
        let [a, b] = &fleet.engines() else {
            panic!("two replicas")
        };
        assert_ne!(
            a.history.iter().map(|m| m.iteration_time).sum::<f64>(),
            b.history.iter().map(|m| m.iteration_time).sum::<f64>(),
        );
    }

    #[test]
    fn multiwafer_pods_and_backend_overrides_work() {
        let topo = MultiWafer::grid(2, 1, 4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan =
            crate::mapping::HierarchicalErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
                .unwrap()
                .plan();
        let config = FleetConfig::new(2, RouterPolicy::LeastKvPressure, 2.0e3, engine_template(31))
            .with_backend_overrides(vec![
                CongestionBackend::Analytic,
                CongestionBackend::FlowSimCached,
            ]);
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        assert_eq!(fleet.engines()[0].backend().name(), "analytic");
        assert_eq!(fleet.engines()[1].backend().name(), "flow-sim-cached");
        fleet.run(40);
        assert!(fleet.sim_time() > 0.0);
    }

    #[test]
    fn try_new_reports_exact_variants() {
        use crate::config::ConfigError;
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();

        let config = FleetConfig::new(0, RouterPolicy::RoundRobin, 1.0e3, engine_template(3));
        let err = Fleet::try_new(&topo, &table, &plan, config).err();
        assert_eq!(err, Some(ConfigError::ReplicasZero));

        let config = FleetConfig::new(
            2,
            RouterPolicy::RoundRobin,
            1.0e3,
            EngineConfig::new(ModelConfig::tiny()),
        );
        let err = Fleet::try_new(&topo, &table, &plan, config).err();
        assert_eq!(err, Some(ConfigError::FleetNeedsServingBatch));

        // Template validation runs before replica construction.
        let mut template = engine_template(3);
        template.load_ema = 0.0;
        let config = FleetConfig::new(2, RouterPolicy::RoundRobin, 1.0e3, template);
        let err = Fleet::try_new(&topo, &table, &plan, config).err();
        assert_eq!(err, Some(ConfigError::LoadEmaOutOfRange { value: 0.0 }));
    }

    #[test]
    fn schedulers_agree_bit_for_bit_on_round_driven_runs() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = |scheduler: FleetScheduler| {
            let config =
                FleetConfig::new(3, RouterPolicy::LeastQueueDepth, 8.0e3, engine_template(29))
                    .with_scheduler(scheduler);
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run(150);
            fleet.summary()
        };
        assert_eq!(
            run(FleetScheduler::Lockstep),
            run(FleetScheduler::EventHeap)
        );
    }

    #[test]
    fn run_until_event_heap_skips_idle_iterations() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        // A deliberately underutilized fleet: a trickle of arrivals across
        // 4 replicas, so lock-step burns idle iterations on every round.
        let horizon = 2.0e-3;
        let run = |scheduler: FleetScheduler| {
            let config = FleetConfig::new(4, RouterPolicy::RoundRobin, 2.0e3, engine_template(41))
                .with_scheduler(scheduler);
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run_until(horizon);
            fleet
        };
        let lockstep = run(FleetScheduler::Lockstep);
        let event = run(FleetScheduler::EventHeap);
        assert!(lockstep.sim_time() >= horizon);
        assert_eq!(event.sim_time(), horizon);
        // Lock-step prices replicas × rounds iterations; the event heap
        // prices only busy steps.
        let lockstep_steps: u64 = lockstep.rounds() * lockstep.engines().len() as u64;
        assert!(
            event.rounds() * 2 < lockstep_steps,
            "event heap priced {} steps vs lock-step {lockstep_steps}",
            event.rounds()
        );
        // Both serve the same arrival stream to completion-or-queue: the
        // same requests were routed (the router consumed the same prefix).
        let routed_l: u64 = lockstep.summary().routed.iter().sum();
        let routed_e: u64 = event.summary().routed.iter().sum();
        // Lock-step may route a hair more: its final round can overshoot
        // the horizon, pulling arrivals in (horizon, clock].
        assert!(routed_e <= routed_l);
        assert!(routed_e > 0, "no arrivals routed before the horizon");
    }

    #[test]
    fn streaming_fleet_bounds_memory_and_tracks_exact() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = |summary: SummaryMode| {
            let config = FleetConfig::new(
                2,
                RouterPolicy::PowerOfTwoChoices,
                1.2e5,
                engine_template(47).with_summary(summary),
            );
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run(400);
            let retained = fleet.retained_records();
            (fleet.summary(), retained)
        };
        let (exact, exact_retained) = run(SummaryMode::Exact);
        let (streaming, streaming_retained) = run(SummaryMode::Streaming);
        assert!(exact.aggregate.completed > 0);
        // Identical trajectory, different bookkeeping.
        assert_eq!(streaming.aggregate.completed, exact.aggregate.completed);
        assert_eq!(streaming.routed, exact.routed);
        assert_eq!(streaming.sim_seconds, exact.sim_seconds);
        assert_eq!(streaming.aggregate.goodput_rps, exact.aggregate.goodput_rps);
        assert_eq!(
            streaming.aggregate.max_queue_depth,
            exact.aggregate.max_queue_depth
        );
        // Streaming retains one history entry per replica; exact retains
        // every record and every iteration.
        assert_eq!(streaming_retained, 2);
        assert!(exact_retained > exact.aggregate.completed + 700);
        // Percentile estimates stay within the exact run's value range.
        assert!(streaming.aggregate.ttft_p50 > 0.0);
        assert!(streaming.aggregate.ttft_p50 <= streaming.aggregate.ttft_p99);
        assert!(streaming.aggregate.e2e_p50 <= streaming.aggregate.e2e_p99);
    }

    #[test]
    fn run_until_streaming_event_fleet_stays_bounded() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(
            3,
            RouterPolicy::LeastQueueDepth,
            6.0e4,
            engine_template(53).with_summary(SummaryMode::Streaming),
        );
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run_until(3.0e-3);
        let summary = fleet.summary();
        assert!(summary.aggregate.completed > 0, "no completions");
        // Bounded memory: at most one history entry per replica (a replica
        // that never woke retains nothing).
        assert!(fleet.retained_records() <= 3);
        assert_eq!(summary.sim_seconds, 3.0e-3);
        assert!(summary.aggregate.goodput_rps > 0.0);
    }

    #[test]
    fn fleet_scheduler_names_round_trip() {
        for s in [FleetScheduler::Lockstep, FleetScheduler::EventHeap] {
            assert_eq!(s.name().parse::<FleetScheduler>().unwrap(), s);
        }
        assert!("event_heap".parse::<FleetScheduler>().is_err());
        assert_eq!(FleetScheduler::default(), FleetScheduler::EventHeap);
    }

    #[test]
    fn event_timeline_validation_reports_exact_variants() {
        use crate::config::ConfigError;
        let drain = |time, replica| FleetEvent {
            time,
            kind: FleetEventKind::Drain { replica },
        };
        let crash = |time, replica| FleetEvent {
            time,
            kind: FleetEventKind::Crash { replica },
        };
        let recover = |time, replica| FleetEvent {
            time,
            kind: FleetEventKind::Recover { replica },
        };
        let scale = |time, count| FleetEvent {
            time,
            kind: FleetEventKind::ScaleUp { count },
        };

        assert_eq!(validate_fleet_events(3, &[]), Ok(()));
        assert_eq!(
            validate_fleet_events(3, &[crash(0.1, 1), recover(0.2, 1), drain(0.2, 0)]),
            Ok(())
        );
        // Unsorted, NaN, infinite, and negative times.
        assert_eq!(
            validate_fleet_events(3, &[crash(0.2, 1), drain(0.1, 0)]),
            Err(ConfigError::FleetEventsUnsorted { index: 1 })
        );
        assert_eq!(
            validate_fleet_events(3, &[crash(f64::NAN, 1)]),
            Err(ConfigError::FleetEventsUnsorted { index: 0 })
        );
        assert_eq!(
            validate_fleet_events(3, &[crash(f64::INFINITY, 1)]),
            Err(ConfigError::FleetEventsUnsorted { index: 0 })
        );
        assert_eq!(
            validate_fleet_events(3, &[crash(-0.1, 1)]),
            Err(ConfigError::FleetEventsUnsorted { index: 0 })
        );
        // Replica indices checked against the projected fleet size:
        // a scale-up extends the valid range mid-timeline.
        assert_eq!(
            validate_fleet_events(2, &[drain(0.1, 2)]),
            Err(ConfigError::FleetEventReplicaOutOfRange {
                index: 0,
                replica: 2,
                replicas: 2
            })
        );
        assert_eq!(
            validate_fleet_events(2, &[scale(0.1, 1), drain(0.2, 2)]),
            Ok(())
        );
        // No-op transitions: double-drain, crash after retire-by-drain
        // (projected), recover of a healthy replica, zero scale-up.
        assert_eq!(
            validate_fleet_events(3, &[drain(0.1, 0), drain(0.2, 0)]),
            Err(ConfigError::FleetEventNoOp { index: 1 })
        );
        assert_eq!(
            validate_fleet_events(3, &[recover(0.1, 0)]),
            Err(ConfigError::FleetEventNoOp { index: 0 })
        );
        assert_eq!(
            validate_fleet_events(3, &[scale(0.1, 0)]),
            Err(ConfigError::FleetEventNoOp { index: 0 })
        );
        assert_eq!(
            validate_fleet_events(3, &[crash(0.1, 0), crash(0.2, 0)]),
            Err(ConfigError::FleetEventNoOp { index: 1 })
        );
        // A drained replica may crash before it empties (projected states
        // treat it as still draining).
        assert_eq!(
            validate_fleet_events(3, &[drain(0.1, 0), crash(0.2, 0)]),
            Ok(())
        );
        // The last active replica can neither drain nor crash.
        assert_eq!(
            validate_fleet_events(1, &[drain(0.1, 0)]),
            Err(ConfigError::FleetEventLeavesNoReplicas { index: 0 })
        );
        assert_eq!(
            validate_fleet_events(2, &[crash(0.1, 0), drain(0.2, 1)]),
            Err(ConfigError::FleetEventLeavesNoReplicas { index: 1 })
        );
        // try_new surfaces the same error.
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(1, RouterPolicy::RoundRobin, 1.0e3, engine_template(3))
            .with_events(vec![drain(0.1, 0)]);
        assert_eq!(
            Fleet::try_new(&topo, &table, &plan, config).err(),
            Some(ConfigError::FleetEventLeavesNoReplicas { index: 0 })
        );
    }

    /// Shared chaos timeline for the lifecycle tests: crash replica 1,
    /// drain replica 2, scale up by one, recover replica 1 — all early
    /// enough to fire within a short run (the test fleets advance their
    /// clocks by roughly 4 µs per round).
    fn chaos_events() -> Vec<FleetEvent> {
        vec![
            FleetEvent {
                time: 3.0e-4,
                kind: FleetEventKind::Crash { replica: 1 },
            },
            FleetEvent {
                time: 5.0e-4,
                kind: FleetEventKind::Drain { replica: 2 },
            },
            FleetEvent {
                time: 7.0e-4,
                kind: FleetEventKind::ScaleUp { count: 1 },
            },
            FleetEvent {
                time: 9.0e-4,
                kind: FleetEventKind::Recover { replica: 1 },
            },
        ]
    }

    #[test]
    fn chaos_timeline_runs_the_lifecycle_and_conserves_requests() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(3, RouterPolicy::LeastQueueDepth, 2.0e5, engine_template(11))
            .with_events(chaos_events());
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(900);
        assert_eq!(fleet.pending_events(), 0, "timeline never finished");
        let summary = fleet.summary();
        let avail = &summary.availability;
        assert_eq!(avail.events_applied, 4);
        assert_eq!(summary.replicas, 4, "scale-up did not add a replica");
        // Replica 1 crashed and recovered; replica 2 drained to retired;
        // replica 3 joined by scale-up.
        assert_eq!(
            avail.replica_states,
            vec!["active", "active", "retired", "active"]
        );
        assert!(
            avail.crash_interruptions > 0,
            "crash interrupted no in-flight requests"
        );
        assert!(avail.requeued_tokens > 0);
        assert!(avail.replayed_prefill_tokens > 0);
        assert!(avail.available_fraction > 0.0 && avail.available_fraction < 1.0);
        // Goodput windows: start + one per event, contiguous in time.
        assert_eq!(avail.goodput_windows.len(), 5);
        assert_eq!(avail.goodput_windows[0].after, "start");
        assert_eq!(avail.goodput_windows[1].after, "crash@0.0003");
        for pair in avail.goodput_windows.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(
            avail.goodput_windows.last().unwrap().end,
            summary.sim_seconds
        );
        // Conservation under chaos: every routing decision (first routes
        // and re-routes alike) lands a request in exactly one of the
        // per-replica dispositions, and each re-route was itself preceded
        // by an eviction.
        let routed: u64 = summary.routed.iter().sum();
        let accounted: u64 = fleet
            .engines()
            .iter()
            .zip(&summary.per_replica)
            .map(|(e, s)| {
                let snap = e.replica_snapshot().unwrap();
                snap.queue_depth as u64
                    + snap.active as u64
                    + s.admission_rejects
                    + s.shed
                    + s.completed as u64
            })
            .sum();
        let rerouted = avail.drain_rerouted + avail.crash_rerouted + avail.crash_interruptions;
        assert_eq!(routed, accounted + rerouted, "requests lost under chaos");
        // The crashed-and-recovered replica serves again after recovery;
        // the retired drainer holds nothing.
        assert!(summary.routed[3] > 0, "scale-up replica never routed to");
        let retired_snap = fleet.engines()[2].replica_snapshot().unwrap();
        assert_eq!(retired_snap.queue_depth, 0);
        assert_eq!(retired_snap.active, 0);
    }

    #[test]
    fn chaos_round_driven_schedulers_agree_bit_for_bit() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = |scheduler: FleetScheduler| {
            let config = FleetConfig::new(
                3,
                RouterPolicy::PowerOfTwoChoices,
                2.0e5,
                engine_template(29),
            )
            .with_scheduler(scheduler)
            .with_events(chaos_events());
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run(400);
            fleet.summary()
        };
        let lockstep = run(FleetScheduler::Lockstep);
        let event = run(FleetScheduler::EventHeap);
        assert!(lockstep.availability.events_applied == 4);
        assert_eq!(lockstep, event);
    }

    #[test]
    fn chaos_rounds_match_any_replica_pool() {
        struct ReversedPool;
        impl ReplicaPool for ReversedPool {
            fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
                for job in jobs.into_iter().rev() {
                    job();
                }
            }
        }
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = |pool: &dyn ReplicaPool| {
            let config =
                FleetConfig::new(3, RouterPolicy::LeastKvPressure, 2.0e5, engine_template(17))
                    .with_events(chaos_events());
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run_with(400, pool);
            fleet.summary()
        };
        assert_eq!(run(&SerialReplicaPool), run(&ReversedPool));
    }

    #[test]
    fn chaos_event_driven_run_until_applies_the_timeline() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(
            3,
            RouterPolicy::LeastQueueDepth,
            2.0e5,
            engine_template(53).with_summary(SummaryMode::Streaming),
        )
        .with_events(chaos_events());
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run_until(2.0e-3);
        assert_eq!(fleet.pending_events(), 0);
        let summary = fleet.summary();
        let avail = &summary.availability;
        assert_eq!(avail.events_applied, 4);
        assert_eq!(
            avail.replica_states,
            vec!["active", "active", "retired", "active"]
        );
        assert!(avail.crash_interruptions > 0);
        // Event-driven marks sit at exactly the configured times.
        assert_eq!(avail.goodput_windows[0].end, 3.0e-4);
        assert_eq!(avail.goodput_windows[2].start, 5.0e-4);
        assert!(summary.aggregate.completed > 0);
        // Determinism: the same run twice is bit-identical.
        let config2 = FleetConfig::new(
            3,
            RouterPolicy::LeastQueueDepth,
            2.0e5,
            engine_template(53).with_summary(SummaryMode::Streaming),
        )
        .with_events(chaos_events());
        let mut fleet2 = Fleet::new(&topo, &table, &plan, config2);
        fleet2.run_until(2.0e-3);
        assert_eq!(fleet2.summary(), summary);
    }

    #[test]
    fn event_free_summary_has_default_availability() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(2, RouterPolicy::RoundRobin, 4.0e3, engine_template(5));
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(50);
        let avail = fleet.summary().availability;
        assert_eq!(avail.events_applied, 0);
        assert_eq!(avail.crash_interruptions, 0);
        assert_eq!(avail.requeued_tokens, 0);
        assert_eq!(avail.available_fraction, 1.0);
        assert_eq!(avail.replica_states, vec!["active", "active"]);
        assert!(avail.goodput_windows.is_empty());
    }

    #[test]
    fn zero_completion_replicas_aggregate_cleanly() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        // An arrival rate so low that nothing arrives (let alone
        // completes) in a short run: every replica has zero completions.
        for summary_mode in [SummaryMode::Exact, SummaryMode::Streaming] {
            let config = FleetConfig::new(
                2,
                RouterPolicy::RoundRobin,
                1.0e-6,
                engine_template(7).with_summary(summary_mode),
            );
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run(3);
            let summary = fleet.summary();
            assert_eq!(summary.aggregate.completed, 0);
            assert_eq!(summary.aggregate.ttft_p99, 0.0);
            assert_eq!(summary.aggregate.goodput_rps, 0.0);
            assert_eq!(summary.completion_imbalance, 1.0);
            assert_eq!(summary.availability.available_fraction, 1.0);
        }
        // A crash on an all-idle fleet interrupts nothing but still marks
        // a goodput window (zero completed on both sides of the event).
        let config = FleetConfig::new(2, RouterPolicy::RoundRobin, 1.0e-6, engine_template(7))
            .with_events(vec![FleetEvent {
                time: 1.0e-4,
                kind: FleetEventKind::Crash { replica: 1 },
            }]);
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(40);
        let summary = fleet.summary();
        let avail = &summary.availability;
        assert_eq!(avail.events_applied, 1);
        assert_eq!(avail.crash_interruptions, 0);
        assert_eq!(avail.crash_rerouted, 0);
        assert_eq!(avail.replica_states, vec!["active", "failed"]);
        assert_eq!(avail.goodput_windows.len(), 2);
        assert!(avail.goodput_windows.iter().all(|w| w.completed == 0));
        assert!(avail.available_fraction < 1.0);
    }

    #[test]
    fn replica_role_names_round_trip_and_capabilities_hold() {
        for r in [
            ReplicaRole::Colocated,
            ReplicaRole::Prefill,
            ReplicaRole::Decode,
        ] {
            assert_eq!(r.name().parse::<ReplicaRole>().unwrap(), r);
        }
        assert!("Prefill".parse::<ReplicaRole>().is_err());
        assert_eq!(ReplicaRole::default(), ReplicaRole::Colocated);
        assert!(ReplicaRole::Colocated.prefill_capable());
        assert!(ReplicaRole::Colocated.decode_capable());
        assert!(ReplicaRole::Prefill.prefill_capable());
        assert!(!ReplicaRole::Prefill.decode_capable());
        assert!(!ReplicaRole::Decode.prefill_capable());
        assert!(ReplicaRole::Decode.decode_capable());
    }

    #[test]
    fn role_validation_reports_exact_variants() {
        use crate::config::ConfigError;
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let refs = PlatformRefs {
            topo: &topo,
            table: &table,
            layout: &plan,
        };
        let base = |roles: Vec<ReplicaRole>| {
            FleetConfig::new(2, RouterPolicy::RoundRobin, 1.0e3, engine_template(3))
                .with_roles(roles)
        };

        let err = Fleet::try_new_disaggregated(refs, None, base(vec![ReplicaRole::Prefill])).err();
        assert_eq!(
            err,
            Some(ConfigError::FleetRolesLengthMismatch {
                roles: 1,
                replicas: 2
            })
        );
        let err = Fleet::try_new_disaggregated(
            refs,
            None,
            base(vec![ReplicaRole::Decode, ReplicaRole::Decode]),
        )
        .err();
        assert_eq!(err, Some(ConfigError::FleetNoPrefillCapacity));
        let err = Fleet::try_new_disaggregated(
            refs,
            None,
            base(vec![ReplicaRole::Prefill, ReplicaRole::Prefill]),
        )
        .err();
        assert_eq!(err, Some(ConfigError::FleetNoDecodeCapacity));
        // A decode platform with no decode-role replica would never run.
        let err = Fleet::try_new_disaggregated(refs, Some(refs), base(vec![])).err();
        assert_eq!(err, Some(ConfigError::FleetDecodePlatformUnused));

        // Role-aware timelines: crashing the only prefill (or only decode)
        // replica of a disaggregated pair is rejected even though an
        // active replica remains.
        let crash = |time, replica| FleetEvent {
            time,
            kind: FleetEventKind::Crash { replica },
        };
        let pd = [ReplicaRole::Prefill, ReplicaRole::Decode];
        assert_eq!(
            validate_fleet_events_for_roles(&pd, &[crash(0.1, 0)]),
            Err(ConfigError::FleetEventLeavesNoPrefillCapacity { index: 0 })
        );
        assert_eq!(
            validate_fleet_events_for_roles(&pd, &[crash(0.1, 1)]),
            Err(ConfigError::FleetEventLeavesNoDecodeCapacity { index: 0 })
        );
        // A scale-up joins colocated (both-capable), unblocking both.
        let scale = |time, count| FleetEvent {
            time,
            kind: FleetEventKind::ScaleUp { count },
        };
        assert_eq!(
            validate_fleet_events_for_roles(&pd, &[scale(0.05, 1), crash(0.1, 0), crash(0.2, 1)]),
            Ok(())
        );
        // All-colocated role lists report the generic variant, exactly as
        // `validate_fleet_events` does.
        assert_eq!(
            validate_fleet_events_for_roles(
                &[ReplicaRole::Colocated],
                &[FleetEvent {
                    time: 0.1,
                    kind: FleetEventKind::Drain { replica: 0 },
                }]
            ),
            Err(ConfigError::FleetEventLeavesNoReplicas { index: 0 })
        );
    }

    #[test]
    fn explicit_colocated_roles_match_the_roleless_fleet_bit_for_bit() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = |roles: Vec<ReplicaRole>| {
            let config =
                FleetConfig::new(3, RouterPolicy::LeastQueueDepth, 6.0e3, engine_template(11))
                    .with_roles(roles);
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run(200);
            fleet.summary()
        };
        let roleless = run(vec![]);
        let explicit = run(vec![ReplicaRole::Colocated; 3]);
        assert_eq!(roleless, explicit);
        assert_eq!(roleless.handoff, FleetHandoff::default());
    }

    fn disagg_config(seed: u64, rate: f64) -> FleetConfig {
        FleetConfig::new(
            4,
            RouterPolicy::LeastQueueDepth,
            rate,
            engine_template(seed),
        )
        .with_roles(vec![
            ReplicaRole::Prefill,
            ReplicaRole::Prefill,
            ReplicaRole::Decode,
            ReplicaRole::Decode,
        ])
    }

    #[test]
    fn disaggregated_fleet_prices_and_conserves_kv_transfers() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let mut fleet = Fleet::new(&topo, &table, &plan, disagg_config(61, 2.0e4));
        assert!(fleet.disaggregated());
        fleet.run(400);
        let summary = fleet.summary();
        let handoff = &summary.handoff;
        assert!(handoff.kv_transfers > 0, "no prefill ever handed off");
        assert!(handoff.kv_transfer_seconds > 0.0, "transfers were free");
        assert!(handoff.max_transfer_seconds > 0.0);
        assert!(handoff.handoffs_completed > 0, "no decode first token");
        assert!(handoff.mean_handoff_latency > 0.0);
        assert!(handoff.mean_e2e_ttft >= handoff.mean_handoff_latency);

        // Transfer bytes are pinned to the model:
        // kv_bytes_per_token_all_layers(FP16) × prefill tokens, summed
        // over every prefill-side record (exact mode retains them all).
        let per_token =
            ModelConfig::tiny().kv_bytes_per_token_all_layers(moe_model::Precision::Fp16);
        let expected: f64 = fleet
            .engines()
            .iter()
            .zip(fleet.roles())
            .filter(|(_, r)| **r == ReplicaRole::Prefill)
            .flat_map(|(e, _)| e.completed_requests())
            .map(|r| per_token * f64::from(r.prefill_scheduled))
            .sum();
        assert_eq!(handoff.kv_transfer_bytes, expected);
        // Every prefill record is exactly one priced transfer, and each
        // carried its full prompt (prefill-only records schedule the whole
        // input and nothing else).
        let prefill_records: u64 = fleet
            .engines()
            .iter()
            .zip(fleet.roles())
            .filter(|(_, r)| **r == ReplicaRole::Prefill)
            .map(|(e, _)| e.completed_requests().len() as u64)
            .sum();
        assert_eq!(handoff.kv_transfers, prefill_records);
        for (e, _) in fleet
            .engines()
            .iter()
            .zip(fleet.roles())
            .filter(|(_, r)| **r == ReplicaRole::Prefill)
        {
            for r in e.completed_requests() {
                assert_eq!(r.prefill_scheduled, r.input_len);
                assert_eq!(r.decode_scheduled, 0);
            }
        }

        // Conservation across the hand-off boundary (event-free fleet):
        // every routed dispatch is an arrival into the prefill tier or a
        // delivered transfer into the decode tier, and every priced
        // transfer is delivered, still pending, or waiting in a decode
        // queue.
        let routed: u64 = summary.routed.iter().sum();
        let tier = |role: ReplicaRole| -> u64 {
            fleet
                .engines()
                .iter()
                .zip(fleet.roles())
                .zip(&summary.per_replica)
                .filter(|((_, r), _)| **r == role)
                .map(|((e, _), s)| {
                    let snap = e.replica_snapshot().unwrap();
                    snap.queue_depth as u64
                        + snap.active as u64
                        + s.admission_rejects
                        + s.shed
                        + s.completed as u64
                })
                .sum()
        };
        let delivered = handoff.kv_transfers - handoff.pending_transfers;
        assert_eq!(routed, tier(ReplicaRole::Prefill) + delivered);
        assert_eq!(tier(ReplicaRole::Decode), delivered);
        // The aggregate counts end-to-end (decode-side) completions only.
        let decode_completed: usize = fleet
            .engines()
            .iter()
            .zip(fleet.roles())
            .filter(|(_, r)| **r == ReplicaRole::Decode)
            .map(|(e, _)| e.completed_requests().len())
            .sum();
        assert_eq!(summary.aggregate.completed, decode_completed);
    }

    #[test]
    fn disaggregated_schedulers_and_pools_agree_bit_for_bit() {
        struct ReversedPool;
        impl ReplicaPool for ReversedPool {
            fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
                for job in jobs.into_iter().rev() {
                    job();
                }
            }
        }
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = |scheduler: FleetScheduler, pool: &dyn ReplicaPool| {
            let config = disagg_config(67, 2.0e4).with_scheduler(scheduler);
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run_with(300, pool);
            fleet.summary()
        };
        let reference = run(FleetScheduler::Lockstep, &SerialReplicaPool);
        assert!(reference.handoff.kv_transfers > 0);
        assert_eq!(
            reference,
            run(FleetScheduler::EventHeap, &SerialReplicaPool)
        );
        assert_eq!(reference, run(FleetScheduler::Lockstep, &ReversedPool));
        assert_eq!(reference, run(FleetScheduler::EventHeap, &ReversedPool));
    }

    #[test]
    fn disaggregated_event_driven_run_until_delivers_handoffs() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = || {
            let config = disagg_config(71, 2.0e4);
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run_until(3.0e-3);
            fleet.summary()
        };
        let summary = run();
        assert!(summary.handoff.kv_transfers > 0);
        assert!(summary.handoff.handoffs_completed > 0);
        assert!(summary.aggregate.completed > 0);
        assert_eq!(summary.sim_seconds, 3.0e-3);
        // Deterministic: bit-identical on a second run.
        assert_eq!(summary, run());
    }

    #[test]
    fn heterogeneous_decode_platform_sizes_kv_from_its_own_topology() {
        let prefill_topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let prefill_table = RouteTable::build(&prefill_topo);
        let prefill_plan = ErMapping::with_tp_degree(prefill_topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        // A smaller decode platform: fewer devices, so a smaller KV
        // budget per decode replica, derived from *its* topology.
        let decode_topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let decode_table = RouteTable::build(&decode_topo);
        let decode_plan = ErMapping::with_tp_degree(decode_topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = disagg_config(73, 2.0e4);
        let mut fleet = Fleet::try_new_disaggregated(
            PlatformRefs {
                topo: &prefill_topo,
                table: &prefill_table,
                layout: &prefill_plan,
            },
            Some(PlatformRefs {
                topo: &decode_topo,
                table: &decode_table,
                layout: &decode_plan,
            }),
            config,
        )
        .unwrap();
        let budget = |i: usize| {
            fleet.engines()[i]
                .replica_snapshot()
                .unwrap()
                .kv_budget_tokens
        };
        assert!(
            budget(2) < budget(0),
            "decode budget {} not below prefill budget {}",
            budget(2),
            budget(0)
        );
        fleet.run(300);
        let summary = fleet.summary();
        assert!(summary.handoff.kv_transfers > 0);
        assert!(summary.handoff.handoffs_completed > 0);
    }

    #[test]
    fn decode_crash_requeues_through_the_prefill_tier() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = disagg_config(79, 1.0e5).with_events(vec![
            FleetEvent {
                time: 6.0e-4,
                kind: FleetEventKind::Crash { replica: 2 },
            },
            FleetEvent {
                time: 1.2e-3,
                kind: FleetEventKind::Recover { replica: 2 },
            },
        ]);
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(600);
        assert_eq!(fleet.pending_events(), 0);
        let summary = fleet.summary();
        assert_eq!(summary.availability.events_applied, 2);
        // The crashed decode replica held admitted hand-offs whose KV
        // died with it: they re-queued (PR 7 interruption path) through
        // prefill-capable replicas and replayed their prompt tokens.
        assert!(summary.availability.crash_interruptions > 0);
        assert!(summary.availability.replayed_prefill_tokens > 0);
        assert!(summary.handoff.kv_transfers > 0);
        // The fleet keeps serving: decode completions continue after the
        // crash (the other decode replica absorbs deliveries).
        assert!(summary.handoff.handoffs_completed > 0);
    }

    #[test]
    fn streaming_disaggregated_fleet_matches_exact_counts() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = |summary_mode: SummaryMode| {
            let mut config = disagg_config(83, 2.0e4);
            config.engine = config.engine.with_summary(summary_mode);
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run(400);
            fleet.summary()
        };
        let exact = run(SummaryMode::Exact);
        let streaming = run(SummaryMode::Streaming);
        assert!(exact.handoff.kv_transfers > 0);
        // Same trajectory: identical hand-off accounting and end-to-end
        // completion counts under both summary modes.
        assert_eq!(streaming.handoff, exact.handoff);
        assert_eq!(streaming.aggregate.completed, exact.aggregate.completed);
        assert_eq!(streaming.routed, exact.routed);
    }

    #[test]
    #[should_panic(expected = "serving batch mode")]
    fn fixed_batch_template_is_rejected() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(
            1,
            RouterPolicy::RoundRobin,
            1.0e3,
            EngineConfig::new(ModelConfig::tiny()),
        );
        let _ = Fleet::new(&topo, &table, &plan, config);
    }
}
