//! Fleet-level serving: N replica engines behind a front-end router.
//!
//! The ROADMAP north star is heavy traffic from millions of users, which in
//! practice means scale-*out*: a fleet of wafer (or multi-wafer pod)
//! replicas, each running its own continuous-batching
//! [`InferenceEngine`], behind a router that owns the global arrival
//! stream. [`Fleet`] models exactly that deployment shape (see DESIGN.md
//! §8):
//!
//! * **Replicas** are homogeneous engines sharing one immutable
//!   [`Topology`] / [`RouteTable`] / [`ParallelLayout`] by reference —
//!   single-wafer meshes and `wsc_topology::MultiWafer` pods both work —
//!   each in [`BatchMode::External`] with its own seed-split RNG streams
//!   and (optionally) its own congestion-pricing backend.
//! * **The router** ([`moe_workload::Router`]) dispatches every arrival to
//!   a replica's serving queue under a pluggable
//!   [`RouterPolicy`](moe_workload::RouterPolicy).
//! * **The clock** advances either in lock-step rounds or on an event
//!   heap, selected by [`FleetScheduler`]. Round-driven stepping
//!   ([`Fleet::run`]) routes all arrivals up to the fleet clock (the
//!   *minimum* of the replicas' simulated times, so no replica is ever fed
//!   an arrival from its own future), then every replica executes exactly
//!   one iteration. Between synchronization points replicas share no
//!   mutable state, so the per-replica steps can run on worker threads —
//!   [`Fleet::step_round_with`] takes any [`ReplicaPool`] — and the result
//!   is byte-identical to serial stepping by construction: routing is
//!   serial at the barrier, and each engine's iteration is a pure function
//!   of its own state. Under [`FleetScheduler::EventHeap`] the round is
//!   executed as a heap-ordered wave — replicas step in
//!   `(sim_time, replica index)` order — which, by the same independence
//!   argument, is byte-identical to lock-step rounds; the goldens pin this.
//! * **Time-horizon runs** ([`Fleet::run_until`]) are where the schedulers
//!   diverge in cost: lock-step loops whole rounds until the fleet clock
//!   reaches the horizon, pricing an idle iteration on every drained
//!   replica every round, while the event heap advances each replica only
//!   when it has work — idle replicas *park* (no phantom iterations) and
//!   are woken by the next routed arrival. See DESIGN.md §10 for the heap
//!   invariants and the determinism / tie-break contract.
//!
//! [`Fleet::summary`] reports per-replica and aggregate
//! [`ServingSummary`]s plus the load-imbalance ratios a capacity planner
//! reads ("how many wafers for this arrival rate at p99 TTFT ≤ X?").

use std::collections::BinaryHeap;

use moe_workload::{
    ArrivalProcess, ReplicaSnapshot, Request, RequestGenerator, Router, RouterPolicy,
};
use wsc_sim::CongestionBackend;
use wsc_topology::{RouteTable, Topology};

use crate::comm::ParallelLayout;
use crate::engine::{
    BatchMode, EngineConfig, InferenceEngine, ServingSummary, StreamingSummary, SummaryMode,
};

/// Executes a batch of independent replica-step jobs. The contract is
/// *completion*, not order: when [`ReplicaPool::run`] returns, every job
/// has run exactly once. Jobs touch disjoint state (one engine each), so
/// any execution order — serial, or spread over a worker pool like
/// `moentwine_bench::perf::pool::WorkerPool` — produces identical fleet
/// state.
pub trait ReplicaPool {
    /// Runs every job to completion.
    fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>);
}

/// The trivial in-thread executor: runs jobs in replica order.
#[derive(Copy, Clone, Debug, Default)]
pub struct SerialReplicaPool;

impl ReplicaPool for SerialReplicaPool {
    fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
        for job in jobs {
            job();
        }
    }
}

/// SplitMix64 stream splitting: replica `stream` of master seed `master`.
/// Each replica's engine (gating trace, request-length draws) gets an
/// independent, reproducible stream; the arrival process and router draw
/// from further streams of the same master.
fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How the fleet advances its replicas through simulated time.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum FleetScheduler {
    /// Barrier every round: route, then step every replica exactly once.
    /// The retained reference semantics — [`FleetScheduler::EventHeap`]
    /// must match it bit for bit in round-driven runs.
    Lockstep,
    /// Replicas advance in next-event-time order. Round-driven runs
    /// execute each round as a heap-ordered wave (byte-identical to
    /// lock-step); time-horizon runs ([`Fleet::run_until`]) park idle
    /// replicas and wake them on arrival, skipping the idle iterations
    /// lock-step prices at every barrier.
    #[default]
    EventHeap,
}

impl FleetScheduler {
    /// Stable lowercase name (`"lockstep"` / `"event-heap"`), matching the
    /// `FromStr` spelling and the scenario-spec JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            FleetScheduler::Lockstep => "lockstep",
            FleetScheduler::EventHeap => "event-heap",
        }
    }
}

impl std::fmt::Display for FleetScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FleetScheduler {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lockstep" => Ok(FleetScheduler::Lockstep),
            "event-heap" => Ok(FleetScheduler::EventHeap),
            other => Err(format!(
                "unknown fleet scheduler {other:?} (expected \"lockstep\" or \"event-heap\")"
            )),
        }
    }
}

/// Configuration of a [`Fleet`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of replica engines.
    pub replicas: usize,
    /// Front-end dispatch policy.
    pub policy: RouterPolicy,
    /// Global arrival rate (requests/second across the whole fleet).
    pub request_rate: f64,
    /// Per-replica engine template. Its `batch` must be a serving mode
    /// ([`BatchMode::Scheduled`] or [`BatchMode::External`]); the fleet
    /// converts it to [`BatchMode::External`] and replaces the seed with a
    /// per-replica stream split from `engine.seed`.
    pub engine: EngineConfig,
    /// Per-replica congestion-backend overrides: empty uses the template's
    /// backend everywhere; otherwise replica `i` gets `overrides[i % len]`
    /// (so a two-entry list alternates fidelity tiers across the fleet).
    pub backend_overrides: Vec<CongestionBackend>,
    /// Replica advancement strategy (see [`FleetScheduler`]).
    pub scheduler: FleetScheduler,
}

impl FleetConfig {
    /// A fleet of `replicas` engines dispatched by `policy` under a global
    /// arrival stream of `request_rate` requests/second.
    pub fn new(
        replicas: usize,
        policy: RouterPolicy,
        request_rate: f64,
        engine: EngineConfig,
    ) -> Self {
        FleetConfig {
            replicas,
            policy,
            request_rate,
            engine,
            backend_overrides: Vec::new(),
            scheduler: FleetScheduler::default(),
        }
    }

    /// Sets per-replica backend overrides (builder style).
    pub fn with_backend_overrides(mut self, overrides: Vec<CongestionBackend>) -> Self {
        self.backend_overrides = overrides;
        self
    }

    /// Sets the replica advancement strategy (builder style).
    pub fn with_scheduler(mut self, scheduler: FleetScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }
}

/// Fleet-level serving statistics: per-replica and aggregate SLO
/// percentiles plus cross-replica balance. See [`Fleet::summary`].
#[derive(Clone, PartialEq, Debug)]
pub struct FleetSummary {
    /// Number of replicas.
    pub replicas: usize,
    /// Synchronization rounds executed (iterations per replica).
    pub rounds: u64,
    /// Fleet simulated time, seconds (minimum over replica clocks — the
    /// time up to which all routing decisions have been made).
    pub sim_seconds: f64,
    /// Requests routed to each replica.
    pub routed: Vec<u64>,
    /// Per-replica serving summaries, in replica order.
    pub per_replica: Vec<ServingSummary>,
    /// Fleet-wide summary: percentiles over the union of all completed
    /// requests; mean queue depth, mean active requests, rejects, and peak
    /// KV are fleet-wide sums (peak KV sums per-replica peaks, an upper
    /// bound since they need not coincide in time), while
    /// `max_queue_depth` is the worst single replica's high-water mark;
    /// goodput is measured against `sim_seconds`.
    pub aggregate: ServingSummary,
    /// Max/mean ratio of per-replica routed-request counts (1.0 when
    /// balanced or empty).
    pub routing_imbalance: f64,
    /// Max/mean ratio of per-replica completed-request counts (1.0 when
    /// balanced or empty).
    pub completion_imbalance: f64,
}

/// N replica engines behind a router on a shared simulated clock. See the
/// [module docs](self).
pub struct Fleet<'a> {
    engines: Vec<InferenceEngine<'a>>,
    router: Router,
    generator: RequestGenerator,
    /// First generated arrival beyond the fleet clock.
    lookahead: Option<Request>,
    /// Fleet clock: min over replica clocks at the last synchronization
    /// (round-driven), or the covered horizon (event-driven `run_until`).
    clock: f64,
    /// Synchronization rounds in round-driven runs; priced step events in
    /// event-driven `run_until` runs (there are no barriers to count).
    rounds: u64,
    scheduler: FleetScheduler,
    /// Fleet-wide streaming aggregate ([`SummaryMode::Streaming`] replicas
    /// only): P² sketches don't merge, so the fleet folds every replica's
    /// fresh completions into its own accumulator as they drain.
    streaming: Option<StreamingSummary>,
}

/// A pending replica step in the event heap, ordered so that
/// `BinaryHeap::pop` yields the *earliest* event: time ascending
/// (`f64::total_cmp`), then replica index ascending — the deterministic
/// tie-break contract (DESIGN.md §10).
#[derive(Copy, Clone, Debug)]
struct StepEvent {
    time: f64,
    replica: usize,
}

impl PartialEq for StepEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for StepEvent {}

impl Ord for StepEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min element.
        other
            .time
            .total_cmp(&self.time)
            .then(other.replica.cmp(&self.replica))
    }
}

impl PartialOrd for StepEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> Fleet<'a> {
    /// Builds a homogeneous fleet: every replica borrows the same
    /// `topo`/`table`/`layout` and gets its own engine with a seed-split
    /// RNG stream (and backend override, if configured).
    ///
    /// This is a thin wrapper over [`Fleet::try_new`] for call sites that
    /// treat an inconsistent config as a programming error.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas` is zero, the engine template's batch
    /// mode is [`BatchMode::Fixed`] (no request lifecycle to route), or the
    /// template fails [`EngineConfig::validate`] — the panic message is the
    /// [`ConfigError`](crate::config::ConfigError)'s display text.
    pub fn new(
        topo: &'a Topology,
        table: &'a RouteTable,
        layout: &'a dyn ParallelLayout,
        config: FleetConfig,
    ) -> Self {
        Self::try_new(topo, table, layout, config)
            .unwrap_or_else(|e| panic!("invalid fleet config: {e}"))
    }

    /// Builds a homogeneous fleet, reporting configuration inconsistencies
    /// as typed errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ReplicasZero`](crate::config::ConfigError)
    /// for an empty fleet,
    /// [`ConfigError::FleetNeedsServingBatch`](crate::config::ConfigError)
    /// for a [`BatchMode::Fixed`] template, or whatever
    /// [`EngineConfig::validate`] rejects about the replica template.
    pub fn try_new(
        topo: &'a Topology,
        table: &'a RouteTable,
        layout: &'a dyn ParallelLayout,
        config: FleetConfig,
    ) -> Result<Self, crate::config::ConfigError> {
        if config.replicas == 0 {
            return Err(crate::config::ConfigError::ReplicasZero);
        }
        config.engine.validate()?;
        let (mode, max_batch_tokens, max_active) = match config.engine.batch {
            BatchMode::Scheduled {
                mode,
                max_batch_tokens,
                max_active,
                ..
            }
            | BatchMode::External {
                mode,
                max_batch_tokens,
                max_active,
            } => (mode, max_batch_tokens, max_active),
            BatchMode::Fixed { .. } => {
                return Err(crate::config::ConfigError::FleetNeedsServingBatch)
            }
        };
        let master = config.engine.seed;
        let engines: Vec<InferenceEngine<'a>> = (0..config.replicas)
            .map(|i| {
                let mut cfg = config.engine.clone();
                cfg.batch = BatchMode::External {
                    mode,
                    max_batch_tokens,
                    max_active,
                };
                cfg.seed = split_seed(master, i as u64);
                if !config.backend_overrides.is_empty() {
                    cfg.backend = config.backend_overrides[i % config.backend_overrides.len()];
                }
                InferenceEngine::new(topo, table, layout, cfg)
            })
            .collect();
        // The global arrival stream mirrors the single-engine scheduled
        // mode (diurnal Poisson, scenario blend from the workload mix) but
        // draws from fleet-level seed streams.
        let arrivals = ArrivalProcess::new(
            config.request_rate,
            crate::engine::ARRIVAL_DIURNAL_AMPLITUDE,
            crate::engine::ARRIVAL_DIURNAL_PERIOD_SECS,
            split_seed(master, 0x0A5E_11A1),
        );
        let generator = RequestGenerator::new(
            arrivals,
            config.engine.workload.weights(0),
            split_seed(master, 0x0A5E_11A2),
        );
        let router = Router::new(
            config.policy,
            config.replicas,
            split_seed(master, 0x0A5E_11A3),
        );
        Ok(Fleet {
            engines,
            router,
            generator,
            lookahead: None,
            clock: 0.0,
            rounds: 0,
            scheduler: config.scheduler,
            streaming: match config.engine.summary {
                SummaryMode::Exact => None,
                SummaryMode::Streaming => Some(StreamingSummary::new()),
            },
        })
    }

    /// The replica engines, in replica order.
    pub fn engines(&self) -> &[InferenceEngine<'a>] {
        &self.engines
    }

    /// The front-end router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Fleet simulated time: the minimum over replica clocks, i.e. the
    /// time up to which every routing decision has been made.
    pub fn sim_time(&self) -> f64 {
        self.clock
    }

    /// Synchronization rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Routes every arrival up to the fleet clock. Serial by design: the
    /// router observes each offer it makes (snapshots are refreshed per
    /// request), so load-aware policies see their own decisions within a
    /// burst.
    fn route_arrivals(&mut self) {
        let mut snapshots: Vec<ReplicaSnapshot> = self
            .engines
            .iter()
            .map(|e| e.replica_snapshot().expect("replicas run a serving mode"))
            .collect();
        // Bound the pull (as `BatchScheduler::pull_arrivals` does) so an
        // extreme configured rate cannot stall a round; the overflow stays
        // in the generator and drains over subsequent rounds.
        for _ in 0..moe_workload::MAX_ARRIVALS_PER_PULL {
            let request = match self.lookahead.take() {
                Some(r) => r,
                None => self.generator.next_request(),
            };
            if request.arrival > self.clock {
                self.lookahead = Some(request);
                break;
            }
            let choice = self.router.route(&request, &snapshots);
            self.engines[choice].offer_request(request);
            snapshots[choice] = self.engines[choice]
                .replica_snapshot()
                .expect("replicas run a serving mode");
        }
    }

    /// One synchronization round on the in-thread executor.
    pub fn step_round(&mut self) {
        self.step_round_with(&SerialReplicaPool);
    }

    /// One synchronization round: route arrivals up to the fleet clock,
    /// advance every replica by one iteration on `pool`, then resynchronize
    /// the fleet clock. Output is identical for every [`ReplicaPool`].
    ///
    /// Under [`FleetScheduler::EventHeap`] the jobs are submitted as a
    /// heap-ordered wave — `(sim_time, replica index)` order — instead of
    /// replica order. Replicas are independent within a round, so the wave
    /// is byte-identical to lock-step for any pool; the fleet goldens pin
    /// this equivalence.
    pub fn step_round_with(&mut self, pool: &dyn ReplicaPool) {
        self.route_arrivals();
        let mut order: Vec<usize> = (0..self.engines.len()).collect();
        if self.scheduler == FleetScheduler::EventHeap {
            order.sort_by(|&a, &b| {
                self.engines[a]
                    .sim_time()
                    .total_cmp(&self.engines[b].sim_time())
                    .then(a.cmp(&b))
            });
        }
        let mut slots: Vec<Option<&mut InferenceEngine<'a>>> =
            self.engines.iter_mut().map(Some).collect();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = order
            .into_iter()
            .map(|i| {
                let engine = slots[i].take().expect("each replica steps once");
                Box::new(move || {
                    engine.step();
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        self.drain_fresh_completions();
        self.clock = self
            .engines
            .iter()
            .map(InferenceEngine::sim_time)
            .fold(f64::INFINITY, f64::min);
        self.rounds += 1;
    }

    /// Runs `rounds` synchronization rounds serially.
    pub fn run(&mut self, rounds: usize) {
        self.run_with(rounds, &SerialReplicaPool);
    }

    /// Runs `rounds` synchronization rounds, stepping replicas on `pool`.
    pub fn run_with(&mut self, rounds: usize, pool: &dyn ReplicaPool) {
        for _ in 0..rounds {
            self.step_round_with(pool);
        }
    }

    /// Folds every replica's freshly-staged completions into the fleet's
    /// aggregate streaming summary (no-op under [`SummaryMode::Exact`]).
    /// Always in replica order, so the aggregate sketch is deterministic
    /// for any [`ReplicaPool`].
    fn drain_fresh_completions(&mut self) {
        if let Some(streaming) = self.streaming.as_mut() {
            for engine in &mut self.engines {
                for record in engine.take_fresh_completions() {
                    streaming.observe_record(&record);
                }
            }
        }
    }

    /// Advances simulated time to `horizon` seconds (no-op if already
    /// past). This is where the two [`FleetScheduler`]s genuinely diverge:
    ///
    /// * **Lock-step** loops whole synchronization rounds until the fleet
    ///   clock reaches the horizon — every replica prices an iteration
    ///   every round, including drained replicas whose idle iterations
    ///   advance their clocks by microseconds. The honest reference cost.
    /// * **Event-heap** runs a causal discrete-event loop: a binary heap
    ///   keyed on each replica's next-event time, interleaved with the
    ///   single outstanding arrival event. Replicas with no queued or
    ///   resident work *park* — they leave the heap, price nothing, and
    ///   are woken (`fast_forward` to the arrival time) when the router
    ///   next offers them a request. Arrivals at time *t* are routed
    ///   before any step at *t*; step ties break by replica index. The
    ///   loop stops at the first event at or beyond the horizon, and the
    ///   fleet clock lands exactly on `horizon` (every routing decision up
    ///   to it has been made).
    ///
    /// Under [`SummaryMode::Streaming`] both paths keep memory O(1) in
    /// request count. `rounds()` advances by whole rounds (lock-step) or
    /// by priced step events (event-heap).
    pub fn run_until(&mut self, horizon: f64) {
        match self.scheduler {
            FleetScheduler::Lockstep => {
                while self.clock < horizon {
                    self.step_round();
                }
            }
            FleetScheduler::EventHeap => self.run_until_event_driven(horizon),
        }
    }

    /// The event-heap core of [`Fleet::run_until`].
    fn run_until_event_driven(&mut self, horizon: f64) {
        let mut snapshots: Vec<ReplicaSnapshot> = self
            .engines
            .iter()
            .map(|e| e.replica_snapshot().expect("replicas run a serving mode"))
            .collect();
        // Rebuild the step heap from scratch: any replica with work pending
        // steps next at its own clock; the rest are parked. `scheduled[i]`
        // mirrors heap membership so a replica is never enqueued twice.
        let mut heap: BinaryHeap<StepEvent> = BinaryHeap::new();
        let mut scheduled = vec![false; self.engines.len()];
        for (i, snap) in snapshots.iter().enumerate() {
            if snap.queue_depth > 0 || snap.active > 0 {
                heap.push(StepEvent {
                    time: self.engines[i].sim_time(),
                    replica: i,
                });
                scheduled[i] = true;
            }
        }
        loop {
            // One arrival is outstanding at a time (the lookahead), so the
            // next event is min(lookahead, heap top) — arrival first on
            // time ties, the router-before-replica contract.
            let arrival_time = match &self.lookahead {
                Some(r) => r.arrival,
                None => {
                    let r = self.generator.next_request();
                    let t = r.arrival;
                    self.lookahead = Some(r);
                    t
                }
            };
            let step = heap.peek().copied();
            let arrival_next = step.is_none_or(|s| arrival_time <= s.time);
            let event_time = if arrival_next {
                arrival_time
            } else {
                step.expect("not arrival ⇒ step exists").time
            };
            if event_time >= horizon {
                break;
            }
            if arrival_next {
                let request = self.lookahead.take().expect("peeked above");
                let choice = self.router.route(&request, &snapshots);
                self.engines[choice].offer_request(request);
                if !scheduled[choice] {
                    // Wake a parked replica at the arrival instant: no
                    // phantom idle iterations were priced while it slept.
                    self.engines[choice].fast_forward(event_time);
                    heap.push(StepEvent {
                        time: self.engines[choice].sim_time(),
                        replica: choice,
                    });
                    scheduled[choice] = true;
                }
                snapshots[choice] = self.engines[choice]
                    .replica_snapshot()
                    .expect("replicas run a serving mode");
            } else {
                let StepEvent { replica, .. } = heap.pop().expect("peeked above");
                self.engines[replica].step();
                self.rounds += 1;
                let snap = self.engines[replica]
                    .replica_snapshot()
                    .expect("replicas run a serving mode");
                if snap.queue_depth > 0 || snap.active > 0 {
                    heap.push(StepEvent {
                        time: self.engines[replica].sim_time(),
                        replica,
                    });
                } else {
                    scheduled[replica] = false;
                }
                snapshots[replica] = snap;
                self.drain_fresh_completions_for(replica);
            }
        }
        // Every arrival and step strictly before the horizon has been
        // processed: the covered span is exactly the horizon.
        self.clock = self.clock.max(horizon);
    }

    /// Per-replica variant of [`Fleet::drain_fresh_completions`] for the
    /// event loop (only the stepped replica can have staged completions).
    fn drain_fresh_completions_for(&mut self, replica: usize) {
        if let Some(streaming) = self.streaming.as_mut() {
            for record in self.engines[replica].take_fresh_completions() {
                streaming.observe_record(&record);
            }
        }
    }

    /// Memory proxy: request records and iteration-history entries
    /// currently retained across all replicas. O(total completions) under
    /// [`SummaryMode::Exact`]; bounded by the replica count under
    /// [`SummaryMode::Streaming`] (one history entry per replica, staged
    /// completions drained every round / step event).
    pub fn retained_records(&self) -> usize {
        self.engines
            .iter()
            .map(InferenceEngine::retained_records)
            .sum()
    }

    /// Fleet-level serving statistics over the run so far.
    pub fn summary(&self) -> FleetSummary {
        let per_replica: Vec<ServingSummary> = self
            .engines
            .iter()
            .map(InferenceEngine::serving_summary)
            .collect();

        let total_rejects: u64 = per_replica.iter().map(|s| s.admission_rejects).sum();
        let mut aggregate = match self.streaming.as_ref() {
            // Streaming: the fleet's own sketch over the union of
            // completions (P² sketches don't merge, so it was fed as the
            // replicas drained). Goodput is against the fleet clock.
            Some(streaming) => streaming.summary(total_rejects, 0, self.clock),
            // Exact: percentiles over the union of retained records.
            None => {
                let all_records: Vec<moe_workload::RequestRecord> = self
                    .engines
                    .iter()
                    .flat_map(|e| e.completed_requests().iter().cloned())
                    .collect();
                let mut aggregate =
                    ServingSummary::from_records(&all_records, &[], total_rejects, 0);
                aggregate.sim_seconds = self.clock;
                if self.clock > 0.0 {
                    aggregate.goodput_rps = all_records.len() as f64 / self.clock;
                    aggregate.goodput_tokens_per_s = all_records
                        .iter()
                        .map(|r| r.input_len as f64 + r.output_len as f64)
                        .sum::<f64>()
                        / self.clock;
                }
                aggregate
            }
        };
        // Occupancy aggregates are fleet-wide sums (max over replicas for
        // the depth high-water mark).
        for s in &per_replica {
            aggregate.mean_queue_depth += s.mean_queue_depth;
            aggregate.mean_active_requests += s.mean_active_requests;
            aggregate.max_queue_depth = aggregate.max_queue_depth.max(s.max_queue_depth);
            aggregate.peak_kv_tokens += s.peak_kv_tokens;
        }

        let completed = per_replica.iter().map(|s| s.completed as f64);

        FleetSummary {
            replicas: self.engines.len(),
            rounds: self.rounds,
            sim_seconds: self.clock,
            routed: self.router.routed().to_vec(),
            routing_imbalance: self.router.routing_imbalance(),
            completion_imbalance: moe_workload::max_mean_imbalance(completed),
            per_replica,
            aggregate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ErMapping;
    use moe_model::ModelConfig;
    use moe_workload::{Scenario, SchedulingMode, WorkloadMix};
    use wsc_topology::{Mesh, MultiWafer, PlatformParams};

    fn engine_template(seed: u64) -> EngineConfig {
        let mut config = EngineConfig::new(ModelConfig::tiny())
            .with_seed(seed)
            .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
            .with_batch(BatchMode::Scheduled {
                mode: SchedulingMode::Hybrid,
                max_batch_tokens: 2048,
                max_active: 128,
                request_rate: 0.0, // ignored: the fleet owns arrivals
                iteration_period: 0.02,
            });
        config.kv_hbm_fraction = 1.0e-3;
        config
    }

    /// Compile-time guarantee the worker pool relies on: engines move
    /// across threads.
    #[test]
    fn inference_engine_is_send() {
        fn require_send<T: Send>() {}
        require_send::<InferenceEngine<'static>>();
        require_send::<Fleet<'static>>();
    }

    #[test]
    fn fleet_serves_and_conserves_requests() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(3, RouterPolicy::LeastQueueDepth, 6.0e3, engine_template(11));
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(300);
        let summary = fleet.summary();
        assert_eq!(summary.replicas, 3);
        assert_eq!(summary.rounds, 300);
        assert!(summary.sim_seconds > 0.0);
        assert!(summary.aggregate.completed > 0, "no request completed");
        // Conservation: every routed request is waiting, resident,
        // rejected, or completed on exactly one replica.
        let routed: u64 = summary.routed.iter().sum();
        let accounted: u64 = fleet
            .engines()
            .iter()
            .zip(&summary.per_replica)
            .map(|(e, s)| {
                let snap = e.replica_snapshot().unwrap();
                snap.queue_depth as u64
                    + snap.active as u64
                    + s.admission_rejects
                    + s.completed as u64
            })
            .sum();
        assert_eq!(routed, accounted, "requests lost or double-counted");
        // Aggregate completions match the per-replica sum.
        let sum: usize = summary.per_replica.iter().map(|s| s.completed).sum();
        assert_eq!(summary.aggregate.completed, sum);
        assert!(summary.routing_imbalance >= 1.0);
        assert!(summary.completion_imbalance >= 1.0);
    }

    #[test]
    fn fleet_clock_is_min_replica_clock() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(2, RouterPolicy::RoundRobin, 4.0e3, engine_template(5));
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(50);
        let min = fleet
            .engines()
            .iter()
            .map(|e| e.sim_time())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(fleet.sim_time(), min);
        for e in fleet.engines() {
            assert!(e.sim_time() >= fleet.sim_time());
        }
    }

    #[test]
    fn pooled_round_matches_serial_round() {
        // A deliberately out-of-order executor: reversing job order must
        // not change fleet state (replicas are independent in a round).
        struct ReversedPool;
        impl ReplicaPool for ReversedPool {
            fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
                for job in jobs.into_iter().rev() {
                    job();
                }
            }
        }
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = |pool: &dyn ReplicaPool| {
            let config = FleetConfig::new(
                3,
                RouterPolicy::PowerOfTwoChoices,
                6.0e3,
                engine_template(17),
            );
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run_with(120, pool);
            fleet.summary()
        };
        let serial = run(&SerialReplicaPool);
        let reversed = run(&ReversedPool);
        assert_eq!(serial.routed, reversed.routed);
        assert_eq!(serial.aggregate, reversed.aggregate);
        assert_eq!(serial.per_replica, reversed.per_replica);
    }

    #[test]
    fn seed_split_gives_replicas_distinct_streams() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(2, RouterPolicy::RoundRobin, 4.0e3, engine_template(23));
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run(30);
        // Round-robin feeds both replicas nearly identical load; distinct
        // gating streams mean their priced iteration times diverge.
        let [a, b] = &fleet.engines() else {
            panic!("two replicas")
        };
        assert_ne!(
            a.history.iter().map(|m| m.iteration_time).sum::<f64>(),
            b.history.iter().map(|m| m.iteration_time).sum::<f64>(),
        );
    }

    #[test]
    fn multiwafer_pods_and_backend_overrides_work() {
        let topo = MultiWafer::grid(2, 1, 4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan =
            crate::mapping::HierarchicalErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
                .unwrap()
                .plan();
        let config = FleetConfig::new(2, RouterPolicy::LeastKvPressure, 2.0e3, engine_template(31))
            .with_backend_overrides(vec![
                CongestionBackend::Analytic,
                CongestionBackend::FlowSimCached,
            ]);
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        assert_eq!(fleet.engines()[0].backend().name(), "analytic");
        assert_eq!(fleet.engines()[1].backend().name(), "flow-sim-cached");
        fleet.run(40);
        assert!(fleet.sim_time() > 0.0);
    }

    #[test]
    fn try_new_reports_exact_variants() {
        use crate::config::ConfigError;
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();

        let config = FleetConfig::new(0, RouterPolicy::RoundRobin, 1.0e3, engine_template(3));
        let err = Fleet::try_new(&topo, &table, &plan, config).err();
        assert_eq!(err, Some(ConfigError::ReplicasZero));

        let config = FleetConfig::new(
            2,
            RouterPolicy::RoundRobin,
            1.0e3,
            EngineConfig::new(ModelConfig::tiny()),
        );
        let err = Fleet::try_new(&topo, &table, &plan, config).err();
        assert_eq!(err, Some(ConfigError::FleetNeedsServingBatch));

        // Template validation runs before replica construction.
        let mut template = engine_template(3);
        template.load_ema = 0.0;
        let config = FleetConfig::new(2, RouterPolicy::RoundRobin, 1.0e3, template);
        let err = Fleet::try_new(&topo, &table, &plan, config).err();
        assert_eq!(err, Some(ConfigError::LoadEmaOutOfRange { value: 0.0 }));
    }

    #[test]
    fn schedulers_agree_bit_for_bit_on_round_driven_runs() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = |scheduler: FleetScheduler| {
            let config =
                FleetConfig::new(3, RouterPolicy::LeastQueueDepth, 8.0e3, engine_template(29))
                    .with_scheduler(scheduler);
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run(150);
            fleet.summary()
        };
        assert_eq!(
            run(FleetScheduler::Lockstep),
            run(FleetScheduler::EventHeap)
        );
    }

    #[test]
    fn run_until_event_heap_skips_idle_iterations() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        // A deliberately underutilized fleet: a trickle of arrivals across
        // 4 replicas, so lock-step burns idle iterations on every round.
        let horizon = 2.0e-3;
        let run = |scheduler: FleetScheduler| {
            let config = FleetConfig::new(4, RouterPolicy::RoundRobin, 2.0e3, engine_template(41))
                .with_scheduler(scheduler);
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run_until(horizon);
            fleet
        };
        let lockstep = run(FleetScheduler::Lockstep);
        let event = run(FleetScheduler::EventHeap);
        assert!(lockstep.sim_time() >= horizon);
        assert_eq!(event.sim_time(), horizon);
        // Lock-step prices replicas × rounds iterations; the event heap
        // prices only busy steps.
        let lockstep_steps: u64 = lockstep.rounds() * lockstep.engines().len() as u64;
        assert!(
            event.rounds() * 2 < lockstep_steps,
            "event heap priced {} steps vs lock-step {lockstep_steps}",
            event.rounds()
        );
        // Both serve the same arrival stream to completion-or-queue: the
        // same requests were routed (the router consumed the same prefix).
        let routed_l: u64 = lockstep.summary().routed.iter().sum();
        let routed_e: u64 = event.summary().routed.iter().sum();
        // Lock-step may route a hair more: its final round can overshoot
        // the horizon, pulling arrivals in (horizon, clock].
        assert!(routed_e <= routed_l);
        assert!(routed_e > 0, "no arrivals routed before the horizon");
    }

    #[test]
    fn streaming_fleet_bounds_memory_and_tracks_exact() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let run = |summary: SummaryMode| {
            let config = FleetConfig::new(
                2,
                RouterPolicy::PowerOfTwoChoices,
                1.2e5,
                engine_template(47).with_summary(summary),
            );
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run(400);
            let retained = fleet.retained_records();
            (fleet.summary(), retained)
        };
        let (exact, exact_retained) = run(SummaryMode::Exact);
        let (streaming, streaming_retained) = run(SummaryMode::Streaming);
        assert!(exact.aggregate.completed > 0);
        // Identical trajectory, different bookkeeping.
        assert_eq!(streaming.aggregate.completed, exact.aggregate.completed);
        assert_eq!(streaming.routed, exact.routed);
        assert_eq!(streaming.sim_seconds, exact.sim_seconds);
        assert_eq!(streaming.aggregate.goodput_rps, exact.aggregate.goodput_rps);
        assert_eq!(
            streaming.aggregate.max_queue_depth,
            exact.aggregate.max_queue_depth
        );
        // Streaming retains one history entry per replica; exact retains
        // every record and every iteration.
        assert_eq!(streaming_retained, 2);
        assert!(exact_retained > exact.aggregate.completed + 700);
        // Percentile estimates stay within the exact run's value range.
        assert!(streaming.aggregate.ttft_p50 > 0.0);
        assert!(streaming.aggregate.ttft_p50 <= streaming.aggregate.ttft_p99);
        assert!(streaming.aggregate.e2e_p50 <= streaming.aggregate.e2e_p99);
    }

    #[test]
    fn run_until_streaming_event_fleet_stays_bounded() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(
            3,
            RouterPolicy::LeastQueueDepth,
            6.0e4,
            engine_template(53).with_summary(SummaryMode::Streaming),
        );
        let mut fleet = Fleet::new(&topo, &table, &plan, config);
        fleet.run_until(3.0e-3);
        let summary = fleet.summary();
        assert!(summary.aggregate.completed > 0, "no completions");
        // Bounded memory: at most one history entry per replica (a replica
        // that never woke retains nothing).
        assert!(fleet.retained_records() <= 3);
        assert_eq!(summary.sim_seconds, 3.0e-3);
        assert!(summary.aggregate.goodput_rps > 0.0);
    }

    #[test]
    fn fleet_scheduler_names_round_trip() {
        for s in [FleetScheduler::Lockstep, FleetScheduler::EventHeap] {
            assert_eq!(s.name().parse::<FleetScheduler>().unwrap(), s);
        }
        assert!("event_heap".parse::<FleetScheduler>().is_err());
        assert_eq!(FleetScheduler::default(), FleetScheduler::EventHeap);
    }

    #[test]
    #[should_panic(expected = "serving batch mode")]
    fn fixed_batch_template_is_rejected() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let config = FleetConfig::new(
            1,
            RouterPolicy::RoundRobin,
            1.0e3,
            EngineConfig::new(ModelConfig::tiny()),
        );
        let _ = Fleet::new(&topo, &table, &plan, config);
    }
}
