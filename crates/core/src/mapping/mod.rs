//! Parallelism mappings: how attention TP groups and MoE experts are placed
//! on the device grid.
//!
//! A [`MappingPlan`] fixes, for every device: its TP group and rank, its
//! Full Token Domain (FTD), and the all-reduce ring structure. Three
//! builders produce plans:
//!
//! * [`BaselineMapping`] — TP groups are contiguous blocks "each located in
//!   a separate corner of the mesh" (paper Fig. 8b). All-reduce rings are
//!   1-hop neighbour rings ("zero-hop rings"), but FTDs are large and all
//!   intersect in the mesh centre.
//! * [`ErMapping`] — the Entwined Ring Mapping of Fig. 10(a): TP groups are
//!   coordinate-modulus classes, FTDs are compact contiguous blocks, and
//!   all-reduce runs on time-staggered multi-hop rings.
//! * [`HierarchicalErMapping`] — per-wafer ER plus the two-step hierarchical
//!   all-reduce for multi-WSC systems (paper §IV-B4).

mod baseline;
mod er;
mod ftd;
mod hier;
mod render;

pub use baseline::BaselineMapping;
pub use er::ErMapping;
pub use ftd::Ftd;
pub use hier::HierarchicalErMapping;
pub use render::{render_ftds, render_groups};

use std::fmt;

use serde::{Deserialize, Serialize};
use wsc_collectives::{Ring, StaggeredRings};
use wsc_topology::{DeviceId, MeshDims, Topology};

/// The shape of a TP group on the mesh: `x × y` devices.
///
/// The paper writes `Att_TP = (TPx, TPy)`; total TP degree is `x · y`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct TpShape {
    /// Extent along X.
    pub x: u16,
    /// Extent along Y.
    pub y: u16,
}

impl TpShape {
    /// Creates a TP shape.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(x: u16, y: u16) -> Self {
        assert!(x > 0 && y > 0, "TP extents must be positive");
        TpShape { x, y }
    }

    /// Total TP degree.
    pub fn size(&self) -> usize {
        self.x as usize * self.y as usize
    }

    /// Chooses the most square factorization `x × y = tp` such that `x`
    /// divides `n` and `y` divides `n`. Prefers shapes with an even extent
    /// (so contiguous blocks admit Hamiltonian rings).
    pub fn factor(tp: usize, n: u16) -> Result<TpShape, MappingError> {
        let mut best: Option<TpShape> = None;
        for x in 1..=tp {
            if !tp.is_multiple_of(x) {
                continue;
            }
            let y = tp / x;
            if x > n as usize || y > n as usize {
                continue;
            }
            if !(n as usize).is_multiple_of(x) || !(n as usize).is_multiple_of(y) {
                continue;
            }
            let candidate = TpShape::new(x as u16, y as u16);
            let better = match best {
                None => true,
                Some(b) => {
                    let sq = |s: TpShape| (s.x as i32 - s.y as i32).abs();
                    let even = |s: TpShape| s.x.is_multiple_of(2) || s.y.is_multiple_of(2);
                    (sq(candidate), !even(candidate)) < (sq(b), !even(b))
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        best.ok_or(MappingError::TpDoesNotFit { tp, n })
    }
}

impl fmt::Display for TpShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TP{}=({}x{})", self.size(), self.x, self.y)
    }
}

/// Which mapping family produced a plan.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MappingKind {
    /// Corner-block TP groups (paper Fig. 8b).
    Baseline,
    /// Entwined Ring Mapping (paper Fig. 8c/10a).
    EntwinedRing,
    /// Hierarchical ER for multi-wafer systems (paper §IV-B4).
    HierarchicalEntwinedRing,
}

impl fmt::Display for MappingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MappingKind::Baseline => "baseline",
            MappingKind::EntwinedRing => "ER-Mapping",
            MappingKind::HierarchicalEntwinedRing => "HER-Mapping",
        };
        f.write_str(s)
    }
}

/// Errors from mapping construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MappingError {
    /// The TP shape does not tile the wafer.
    ShapeDoesNotTile {
        /// Requested shape.
        shape: TpShape,
        /// Wafer side length.
        n: u16,
    },
    /// No factorization of `tp` fits an `n × n` wafer.
    TpDoesNotFit {
        /// Requested TP degree.
        tp: usize,
        /// Wafer side length.
        n: u16,
    },
    /// The topology is not a mesh (or has the wrong wafer count).
    NotAMesh,
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::ShapeDoesNotTile { shape, n } => {
                write!(f, "TP shape {shape} does not tile a {n}x{n} wafer")
            }
            MappingError::TpDoesNotFit { tp, n } => {
                write!(f, "no factorization of TP={tp} tiles a {n}x{n} wafer")
            }
            MappingError::NotAMesh => f.write_str("topology is not a wafer mesh"),
        }
    }
}

impl std::error::Error for MappingError {}

/// Where a destination device fetches a source group's tokens from during
/// MoE dispatch.
#[derive(Clone, PartialEq, Debug)]
pub struct TokenSource {
    /// The device holding (part of) the tokens.
    pub device: DeviceId,
    /// Fraction of the group's token bytes served by this device.
    pub fraction: f64,
}

/// A fully resolved parallelism mapping.
///
/// See the [module documentation](self) for the three families.
#[derive(Clone, Debug)]
pub struct MappingPlan {
    pub(crate) kind: MappingKind,
    pub(crate) dims: MeshDims,
    pub(crate) tp: TpShape,
    /// `groups[g][r]` — rank `r` of TP group `g`.
    pub(crate) groups: Vec<Vec<DeviceId>>,
    /// Per device: `(group, rank)`.
    pub(crate) group_of: Vec<(usize, usize)>,
    /// Full Token Domains.
    pub(crate) ftds: Vec<Ftd>,
    /// Per device: FTD index.
    pub(crate) ftd_of: Vec<usize>,
    /// All-reduce ring structure (staggered; baseline plans use parity 0
    /// everywhere since neighbour rings never intersect).
    pub(crate) rings: StaggeredRings,
    /// HER only: the inter-wafer all-gather rings (one per die coordinate,
    /// linking wafer counterparts). Empty for single-level mappings.
    pub(crate) inter_wafer_rings: Vec<Ring>,
    /// Whether attention retains the all-gather (paper §IV-A). Affects
    /// token-source selection.
    pub(crate) retain_all_gather: bool,
}

impl MappingPlan {
    /// The mapping family.
    pub fn kind(&self) -> MappingKind {
        self.kind
    }

    /// Mesh dimensions the plan covers.
    pub fn dims(&self) -> MeshDims {
        self.dims
    }

    /// The TP shape.
    pub fn tp(&self) -> TpShape {
        self.tp
    }

    /// Number of TP groups (the DP degree).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// TP group member lists, rank-ordered.
    pub fn groups(&self) -> &[Vec<DeviceId>] {
        &self.groups
    }

    /// The `(group, rank)` of a device.
    pub fn group_of(&self, device: DeviceId) -> (usize, usize) {
        self.group_of[device.index()]
    }

    /// The Full Token Domains.
    pub fn ftds(&self) -> &[Ftd] {
        &self.ftds
    }

    /// The FTD containing a device.
    pub fn ftd_of(&self, device: DeviceId) -> usize {
        self.ftd_of[device.index()]
    }

    /// The all-reduce ring structure.
    pub fn rings(&self) -> &StaggeredRings {
        &self.rings
    }

    /// HER only: inter-wafer all-gather rings (empty for single-level
    /// mappings).
    pub fn inter_wafer_rings(&self) -> &[Ring] {
        &self.inter_wafer_rings
    }

    /// Whether the attention all-gather is retained.
    pub fn retains_all_gather(&self) -> bool {
        self.retain_all_gather
    }

    /// Returns a copy with the all-gather dropped (the ablation of paper
    /// Fig. 14b: dispatch must then fetch each token from its single shard
    /// owner instead of the nearest group member).
    pub fn without_all_gather(mut self) -> Self {
        self.retain_all_gather = false;
        self
    }

    /// The nearest member of `group` to `device` (by routed hop count,
    /// ties broken by device id).
    pub fn nearest_group_member(
        &self,
        topo: &Topology,
        group: usize,
        device: DeviceId,
    ) -> DeviceId {
        self.groups[group]
            .iter()
            .copied()
            .min_by_key(|&m| (topo.hops(m, device), m))
            .expect("groups are non-empty")
    }

    /// Where `device` fetches group `group`'s tokens during dispatch.
    ///
    /// * With all-gather retained: the member of the group inside the
    ///   destination's **own Full Token Domain** — the paper's access model
    ///   ("within an FTD, any device can access all required tokens,
    ///   confining communication to this domain"). Under HER-Mapping the
    ///   *counterpart* group on the destination's wafer serves (tokens were
    ///   replicated wafer-wide by the inter-wafer all-gather).
    /// * Without all-gather: every rank of the group serves its `1/TP`
    ///   shard (Fig. 14b ablation — fewer source options, longer paths).
    pub fn token_sources(
        &self,
        topo: &Topology,
        group: usize,
        device: DeviceId,
    ) -> Vec<TokenSource> {
        let effective_group = match self.kind {
            MappingKind::HierarchicalEntwinedRing => self.counterpart_group(topo, group, device),
            _ => group,
        };
        if self.retain_all_gather {
            // FTD member lists are indexed by the wafer-local group index.
            let per_wafer_groups = self.groups.len() / self.dims.num_wafers().max(1);
            let local_index = match self.kind {
                MappingKind::HierarchicalEntwinedRing => effective_group % per_wafer_groups,
                _ => effective_group,
            };
            let ftd = &self.ftds[self.ftd_of(device)];
            vec![TokenSource {
                device: ftd.devices()[local_index],
                fraction: 1.0,
            }]
        } else {
            let members = &self.groups[effective_group];
            let f = 1.0 / members.len() as f64;
            members
                .iter()
                .map(|&m| TokenSource {
                    device: m,
                    fraction: f,
                })
                .collect()
        }
    }

    /// For HER: the group on `device`'s wafer holding (a replica of)
    /// `group`'s tokens after the inter-wafer all-gather — the group with
    /// the same intra-wafer offset.
    fn counterpart_group(&self, topo: &Topology, group: usize, device: DeviceId) -> usize {
        let per_wafer_groups = self.groups.len() / self.dims.num_wafers().max(1);
        if per_wafer_groups == 0 {
            return group;
        }
        let offset = group % per_wafer_groups;
        let wafer = topo
            .location(device)
            .wafer()
            .map(|(wx, wy)| wy as usize * self.dims.wafers_x as usize + wx as usize)
            .unwrap_or(0);
        wafer * per_wafer_groups + offset
    }

    /// The paper's FTD hop metric: the average, over every device and every
    /// *other* TP group, of the hop distance to the nearest token source.
    /// Baseline 4×4/TP4 yields 2.67; ER yields 1.33 (paper Fig. 8).
    pub fn average_ftd_hops(&self, topo: &Topology) -> f64 {
        let mut total = 0.0;
        let mut count = 0.0;
        for device in topo.devices() {
            let (own, _) = self.group_of(device);
            for g in 0..self.groups.len() {
                if g == own {
                    continue;
                }
                let sources = self.token_sources(topo, g, device);
                let hops: f64 = sources
                    .iter()
                    .map(|s| s.fraction * topo.hops(s.device, device) as f64)
                    .sum();
                total += hops;
                count += 1.0;
            }
        }
        total / count
    }

    /// Number of unordered FTD pairs whose bounding boxes overlap — the
    /// paper's congestion indicator ("all FTDs overlap at the central four
    /// devices" under baseline mapping; zero under ER-Mapping).
    pub fn ftd_intersections(&self, topo: &Topology) -> usize {
        let boxes: Vec<_> = self.ftds.iter().map(|f| f.bounding_box(topo)).collect();
        let mut overlaps = 0;
        for i in 0..boxes.len() {
            for j in i + 1..boxes.len() {
                let (a, b) = (&boxes[i], &boxes[j]);
                let disjoint = a.2 < b.0 || b.2 < a.0 || a.3 < b.1 || b.3 < a.1 || a.4 != b.4;
                if !disjoint {
                    overlaps += 1;
                }
            }
        }
        overlaps
    }
}

/// Builds a ring order over the member grid of one TP group, given the
/// member at each grid position. Produces a Hamiltonian-style cycle over the
/// `w × h` position grid (boustrophedon with a return column when an extent
/// is even; plain boustrophedon otherwise).
pub(crate) fn grid_ring_order(w: usize, h: usize) -> Vec<(usize, usize)> {
    assert!(w * h >= 2, "ring needs at least two members");
    if h == 1 {
        return (0..w).map(|x| (x, 0)).collect();
    }
    if w == 1 {
        return (0..h).map(|y| (0, y)).collect();
    }
    if h.is_multiple_of(2) {
        // Snake down column 0 is the return path.
        let mut order = vec![(0, 0)];
        for y in 0..h {
            let xs: Vec<usize> = if y % 2 == 0 {
                (1..w).collect()
            } else {
                (1..w).rev().collect()
            };
            for x in xs {
                order.push((x, y));
            }
        }
        for y in (1..h).rev() {
            order.push((0, y));
        }
        order
    } else if w.is_multiple_of(2) {
        grid_ring_order(h, w)
            .into_iter()
            .map(|(y, x)| (x, y))
            .collect()
    } else {
        // Both odd: no Hamiltonian cycle exists on the grid graph; use a
        // boustrophedon path (the wrap hop is multi-stride).
        let mut order = Vec::with_capacity(w * h);
        for y in 0..h {
            let xs: Vec<usize> = if y % 2 == 0 {
                (0..w).collect()
            } else {
                (0..w).rev().collect()
            };
            for x in xs {
                order.push((x, y));
            }
        }
        order
    }
}

pub(crate) fn build_staggered_rings(
    groups: &[Vec<DeviceId>],
    parity: Vec<usize>,
    num_parities: usize,
    order: &[(usize, usize)],
    grid_w: usize,
) -> StaggeredRings {
    let rings = groups
        .iter()
        .map(|members| {
            Ring::new(
                order
                    .iter()
                    .map(|&(x, y)| members[y * grid_w + x])
                    .collect(),
            )
        })
        .collect();
    StaggeredRings::new(rings, parity, num_parities)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tp_factor_prefers_square() {
        let s = TpShape::factor(4, 4).unwrap();
        assert_eq!((s.x, s.y), (2, 2));
        let s = TpShape::factor(16, 8).unwrap();
        assert_eq!((s.x, s.y), (4, 4));
    }

    #[test]
    fn tp_factor_respects_divisibility() {
        // TP=6 on a 6x6 wafer: (2,3) or (3,2); both divide 6.
        let s = TpShape::factor(6, 6).unwrap();
        assert_eq!(s.size(), 6);
        assert_eq!(6 % s.x, 0);
        assert_eq!(6 % s.y, 0);
        // TP=18 on 6x6: (3,6)/(6,3).
        let s = TpShape::factor(18, 6).unwrap();
        assert_eq!(s.size(), 18);
    }

    #[test]
    fn tp_factor_rejects_impossible() {
        assert!(TpShape::factor(5, 4).is_err());
        assert!(TpShape::factor(64, 4).is_err());
    }

    #[test]
    fn grid_ring_order_even_is_cycle_of_unit_steps() {
        for (w, h) in [(2usize, 2usize), (4, 2), (2, 4), (4, 4), (3, 6), (6, 3)] {
            let order = grid_ring_order(w, h);
            assert_eq!(order.len(), w * h, "{w}x{h}");
            for i in 0..order.len() {
                let a = order[i];
                let b = order[(i + 1) % order.len()];
                let d = (a.0 as i32 - b.0 as i32).abs() + (a.1 as i32 - b.1 as i32).abs();
                assert_eq!(d, 1, "{w}x{h}: step {a:?} -> {b:?}");
            }
        }
    }

    #[test]
    fn grid_ring_order_line() {
        assert_eq!(grid_ring_order(3, 1), vec![(0, 0), (1, 0), (2, 0)]);
        assert_eq!(grid_ring_order(1, 2), vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn mapping_error_display() {
        let e = MappingError::TpDoesNotFit { tp: 5, n: 4 };
        assert_eq!(e.to_string(), "no factorization of TP=5 tiles a 4x4 wafer");
    }
}
