//! Baseline corner-block mapping (paper Fig. 8b).

use wsc_topology::{DeviceId, MeshDims};

use super::ftd::Ftd;
use super::{
    build_staggered_rings, grid_ring_order, MappingError, MappingKind, MappingPlan, TpShape,
};

/// The baseline mapping ported from GPU practice: each TP group occupies a
/// contiguous `TPx × TPy` block of dies, "each located in a separate corner
/// of the mesh".
///
/// All-reduce rings are 1-hop neighbour rings (cheap), but the Full Token
/// Domains — one device from each block, at matching intra-block offsets —
/// span almost the whole mesh and all overlap in the centre, which is what
/// makes baseline all-to-all expensive (paper Fig. 8b: 3×3-area FTDs,
/// average 2.7 hops, centre congestion).
///
/// # Example
///
/// ```
/// use moentwine_core::mapping::{BaselineMapping, TpShape};
/// use wsc_topology::{Mesh, PlatformParams};
///
/// let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
/// let plan = BaselineMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
///     .unwrap()
///     .plan();
/// let hops = plan.average_ftd_hops(&topo);
/// assert!((hops - 8.0 / 3.0).abs() < 1e-9); // paper: 2.7 hops
/// assert!(plan.ftd_intersections(&topo) > 0);
/// ```
#[derive(Clone, Debug)]
pub struct BaselineMapping {
    dims: MeshDims,
    tp: TpShape,
}

impl BaselineMapping {
    /// Creates the mapping for a mesh of `dims` with TP shape `tp`.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::ShapeDoesNotTile`] if `tp` does not divide
    /// the global die grid.
    pub fn new(dims: MeshDims, tp: TpShape) -> Result<Self, MappingError> {
        let w = dims.wafers_x * dims.n;
        let h = dims.wafers_y * dims.n;
        if !w.is_multiple_of(tp.x) || !h.is_multiple_of(tp.y) {
            return Err(MappingError::ShapeDoesNotTile {
                shape: tp,
                n: dims.n,
            });
        }
        Ok(BaselineMapping { dims, tp })
    }

    /// Convenience constructor picking the TP shape via [`TpShape::factor`].
    pub fn with_tp_degree(dims: MeshDims, tp: usize) -> Result<Self, MappingError> {
        let shape = TpShape::factor(tp, dims.wafers_x * dims.n)?;
        Self::new(dims, shape)
    }

    /// Resolves the full mapping plan.
    pub fn plan(&self) -> MappingPlan {
        let dims = self.dims;
        let tp = self.tp;
        let w = (dims.wafers_x * dims.n) as usize;
        let h = (dims.wafers_y * dims.n) as usize;
        let n = dims.n as usize;
        let blocks_x = w / tp.x as usize;
        let num_groups = blocks_x * (h / tp.y as usize);
        let num_ftds = tp.size();
        let num_devices = w * h;

        let dev = |gx: usize, gy: usize| {
            let (wx, x) = (gx / n, gx % n);
            let (wy, y) = (gy / n, gy % n);
            DeviceId(((wy * dims.wafers_x as usize + wx) * n * n + y * n + x) as u32)
        };

        let mut groups = vec![vec![DeviceId(0); tp.size()]; num_groups];
        let mut group_of = vec![(0usize, 0usize); num_devices];
        let mut ftd_members = vec![vec![DeviceId(0); num_groups]; num_ftds];
        let mut ftd_of = vec![0usize; num_devices];

        for gy in 0..h {
            for gx in 0..w {
                let d = dev(gx, gy);
                let (bx, by) = (gx / tp.x as usize, gy / tp.y as usize);
                let group = by * blocks_x + bx;
                let (i, j) = (gx % tp.x as usize, gy % tp.y as usize);
                let rank = j * tp.x as usize + i;
                groups[group][rank] = d;
                group_of[d.index()] = (group, rank);
                let ftd = j * tp.x as usize + i;
                ftd_members[ftd][group] = d;
                ftd_of[d.index()] = ftd;
            }
        }

        let ftds = ftd_members
            .into_iter()
            .enumerate()
            .map(|(i, devices)| Ftd::new(i, devices))
            .collect();

        // Contiguous blocks: neighbour rings, no intersections, one parity.
        let order = grid_ring_order(tp.x as usize, tp.y as usize);
        let rings = build_staggered_rings(&groups, vec![0; num_groups], 1, &order, tp.x as usize);

        MappingPlan {
            kind: MappingKind::Baseline,
            dims,
            tp,
            groups,
            group_of,
            ftds,
            ftd_of,
            rings,
            inter_wafer_rings: Vec::new(),
            retain_all_gather: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_collectives::stagger::{phases_are_link_disjoint, staggered_ring_all_reduce};
    use wsc_topology::{Mesh, PlatformParams, Topology};

    fn mesh4() -> Topology {
        Mesh::new(4, PlatformParams::dojo_like()).build()
    }

    fn plan4() -> MappingPlan {
        BaselineMapping::new(
            Mesh::new(4, PlatformParams::dojo_like())
                .build()
                .mesh_dims()
                .unwrap(),
            TpShape::new(2, 2),
        )
        .unwrap()
        .plan()
    }

    #[test]
    fn groups_are_contiguous_blocks() {
        let topo = mesh4();
        let plan = plan4();
        // Device (1,1) is in the top-left block = group 0.
        let d = topo.device_at_xy(1, 1).unwrap();
        assert_eq!(plan.group_of(d).0, 0);
        // Device (2,2) is in block (1,1) = group 3.
        let d = topo.device_at_xy(2, 2).unwrap();
        assert_eq!(plan.group_of(d).0, 3);
    }

    #[test]
    fn ftds_span_and_intersect() {
        // Paper Fig. 8(b): 3×3-area FTDs, all pairs overlapping.
        let topo = mesh4();
        let plan = plan4();
        for ftd in plan.ftds() {
            assert_eq!(ftd.area(&topo), 9);
        }
        assert_eq!(plan.ftd_intersections(&topo), 6); // all C(4,2) pairs
    }

    #[test]
    fn baseline_hops_exceed_er_hops() {
        let topo = mesh4();
        let base = plan4().average_ftd_hops(&topo);
        let er = super::super::ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan()
            .average_ftd_hops(&topo);
        // Paper: 2.7 vs 1.3 — a 2× reduction.
        assert!((base / er - 2.0).abs() < 1e-9, "{base} vs {er}");
    }

    #[test]
    fn neighbour_rings_are_conflict_free() {
        let topo = mesh4();
        let plan = plan4();
        let sched = staggered_ring_all_reduce(&topo, plan.rings(), 1.0e6);
        assert!(phases_are_link_disjoint(&sched, &topo));
    }

    #[test]
    fn every_device_in_exactly_one_ftd() {
        let topo = mesh4();
        let plan = plan4();
        let mut count = vec![0usize; topo.num_devices()];
        for ftd in plan.ftds() {
            for &d in ftd.devices() {
                count[d.index()] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    }
}
