//! Entwined Ring Mapping (paper Fig. 10a).

use wsc_topology::{DeviceId, MeshDims};

use super::ftd::Ftd;
use super::{
    build_staggered_rings, grid_ring_order, MappingError, MappingKind, MappingPlan, TpShape,
};

/// The Entwined Ring Mapping: TP groups are coordinate-modulus classes
/// (`TPGroup_{i,j} = {D_{x,y} | x mod a = i, y mod b = j}` with
/// `a = W/TPx`, `b = H/TPy`), so each contiguous `a × b` block of dies is a
/// Full Token Domain containing exactly one member of every group.
///
/// Compared to the baseline this shrinks FTDs (fewer token-fetch hops, no
/// FTD intersections) at the price of multi-hop, time-staggered all-reduce
/// rings.
///
/// Applied to a multi-wafer system this is the *pure* (non-hierarchical) ER
/// variant: coordinates are global, so rings cross wafer borders — the
/// expensive case that motivates [`HierarchicalErMapping`].
///
/// [`HierarchicalErMapping`]: super::HierarchicalErMapping
///
/// # Example
///
/// ```
/// use moentwine_core::mapping::{ErMapping, TpShape};
/// use wsc_topology::{Mesh, PlatformParams};
///
/// let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
/// let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
///     .unwrap()
///     .plan();
/// assert_eq!(plan.num_groups(), 4);
/// assert_eq!(plan.ftds().len(), 4);
/// assert_eq!(plan.ftd_intersections(&topo), 0);
/// ```
#[derive(Clone, Debug)]
pub struct ErMapping {
    dims: MeshDims,
    tp: TpShape,
}

impl ErMapping {
    /// Creates the mapping for a mesh of `dims` with TP shape `tp`.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::ShapeDoesNotTile`] if `tp` does not divide
    /// the global die grid.
    pub fn new(dims: MeshDims, tp: TpShape) -> Result<Self, MappingError> {
        let w = dims.wafers_x * dims.n;
        let h = dims.wafers_y * dims.n;
        if !w.is_multiple_of(tp.x) || !h.is_multiple_of(tp.y) {
            return Err(MappingError::ShapeDoesNotTile {
                shape: tp,
                n: dims.n,
            });
        }
        Ok(ErMapping { dims, tp })
    }

    /// Convenience constructor picking the TP shape via
    /// [`TpShape::factor`] on the global grid.
    pub fn with_tp_degree(dims: MeshDims, tp: usize) -> Result<Self, MappingError> {
        // Factor against the global width (square systems in the paper).
        let shape = TpShape::factor(tp, dims.wafers_x * dims.n)?;
        Self::new(dims, shape)
    }

    /// Resolves the full mapping plan.
    pub fn plan(&self) -> MappingPlan {
        build_er_plan(self.dims, self.tp, MappingKind::EntwinedRing)
    }
}

/// Shared ER construction, reused per-wafer by the hierarchical variant.
pub(crate) fn build_er_plan(dims: MeshDims, tp: TpShape, kind: MappingKind) -> MappingPlan {
    let w = (dims.wafers_x * dims.n) as usize;
    let h = (dims.wafers_y * dims.n) as usize;
    let n = dims.n as usize;
    let a = w / tp.x as usize;
    let b = h / tp.y as usize;
    let num_groups = a * b;
    let num_ftds = tp.size();
    let num_devices = w * h;

    // Device id from global coordinates (wafer-major, then row-major).
    let dev = |gx: usize, gy: usize| {
        let (wx, x) = (gx / n, gx % n);
        let (wy, y) = (gy / n, gy % n);
        DeviceId(((wy * dims.wafers_x as usize + wx) * n * n + y * n + x) as u32)
    };

    let mut groups = vec![vec![DeviceId(0); tp.size()]; num_groups];
    let mut group_of = vec![(0usize, 0usize); num_devices];
    let mut ftd_members = vec![vec![DeviceId(0); num_groups]; num_ftds];
    let mut ftd_of = vec![0usize; num_devices];

    for gy in 0..h {
        for gx in 0..w {
            let d = dev(gx, gy);
            let (i, j) = (gx % a, gy % b);
            let group = j * a + i;
            let (p, q) = (gx / a, gy / b);
            let rank = q * tp.x as usize + p;
            groups[group][rank] = d;
            group_of[d.index()] = (group, rank);
            let ftd = q * tp.x as usize + p;
            ftd_members[ftd][group] = d;
            ftd_of[d.index()] = ftd;
        }
    }

    let ftds = ftd_members
        .into_iter()
        .enumerate()
        .map(|(i, devices)| Ftd::new(i, devices))
        .collect();

    // Staggered rings: parity from the group's coordinate offset.
    let x_classes = if tp.x > 1 { a } else { 1 };
    let y_classes = if tp.y > 1 { b } else { 1 };
    let num_parities = x_classes.max(y_classes).max(1);
    let parity: Vec<usize> = (0..num_groups)
        .map(|g| {
            let (i, j) = (g % a, g / a);
            (i + j) % num_parities
        })
        .collect();
    let order = grid_ring_order(tp.x as usize, tp.y as usize);
    let rings = build_staggered_rings(&groups, parity, num_parities, &order, tp.x as usize);

    MappingPlan {
        kind,
        dims,
        tp,
        groups,
        group_of,
        ftds,
        ftd_of,
        rings,
        inter_wafer_rings: Vec::new(),
        retain_all_gather: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_collectives::stagger::{phases_are_link_disjoint, staggered_ring_all_reduce};
    use wsc_topology::{Mesh, MultiWafer, PlatformParams};

    fn mesh4() -> wsc_topology::Topology {
        Mesh::new(4, PlatformParams::dojo_like()).build()
    }

    #[test]
    fn paper_example_ftd_hops() {
        // Paper Fig. 8(c): 2×2-area FTDs, average 1.33 hops.
        let topo = mesh4();
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        let hops = plan.average_ftd_hops(&topo);
        assert!((hops - 4.0 / 3.0).abs() < 1e-9, "{hops}");
    }

    #[test]
    fn ftds_are_compact_blocks() {
        let topo = mesh4();
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        for ftd in plan.ftds() {
            assert_eq!(ftd.area(&topo), 4);
        }
        assert_eq!(plan.ftd_intersections(&topo), 0);
    }

    #[test]
    fn groups_are_modulus_classes() {
        let topo = mesh4();
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        // Device (1,3): a=b=2 → group (1%2, 3%2) = (1,1) → index 1*2+1 = 3.
        let d = topo.device_at_xy(1, 3).unwrap();
        assert_eq!(plan.group_of(d).0, 3);
        // Every group has TP members.
        for g in plan.groups() {
            assert_eq!(g.len(), 4);
        }
    }

    #[test]
    fn every_ftd_has_one_member_per_group() {
        let topo = mesh4();
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        for ftd in plan.ftds() {
            let mut seen = vec![false; plan.num_groups()];
            for &d in ftd.devices() {
                let (g, _) = plan.group_of(d);
                assert!(!seen[g], "group {g} twice in FTD {}", ftd.index());
                seen[g] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn er_rings_are_conflict_free() {
        let topo = mesh4();
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        let sched = staggered_ring_all_reduce(&topo, plan.rings(), 1.0e6);
        assert!(phases_are_link_disjoint(&sched, &topo));
    }

    #[test]
    fn er_rings_conflict_free_on_6x6_tp4() {
        // The paper's Fig. 11(c) case: 6×6 WSC, DP=9? No—DP=8,TP=4 uses a
        // 6x6 with TP=(2,2): a=b=3 ⇒ 9 groups. Verify the stagger holds.
        let topo = Mesh::new(6, PlatformParams::dojo_like()).build();
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        assert_eq!(plan.num_groups(), 9);
        let sched = staggered_ring_all_reduce(&topo, plan.rings(), 1.0e6);
        assert!(phases_are_link_disjoint(&sched, &topo));
    }

    #[test]
    fn multi_wafer_pure_er_spans_borders() {
        let topo = MultiWafer::grid(2, 2, 4, PlatformParams::dojo_like()).build();
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        // a = 8/2 = 4: ring strides of 4 cross wafer borders somewhere.
        let crosses = plan.rings().rings.iter().any(|ring| {
            let devs = ring.devices();
            (0..devs.len()).any(|i| {
                let r = topo.route(devs[i], devs[(i + 1) % devs.len()]);
                r.links()
                    .iter()
                    .any(|&l| topo.link(l).kind == wsc_topology::LinkKind::WaferBorder)
            })
        });
        assert!(crosses, "pure ER on multi-wafer must cross borders");
    }

    #[test]
    fn indivisible_shape_rejected() {
        let dims = MeshDims {
            wafers_x: 1,
            wafers_y: 1,
            n: 6,
        };
        assert!(ErMapping::new(dims, TpShape::new(4, 2)).is_err());
    }
}
