//! ASCII rendering of mapping plans (the paper's Fig. 5 / Fig. 8 diagrams).

use wsc_topology::Topology;

use super::MappingPlan;

/// Renders the TP-group assignment of each die as a grid, one wafer after
/// another. Groups are labelled `G<idx>`; the paper's Fig. 8 uses the same
/// spatial layout.
///
/// # Example
///
/// ```
/// use moentwine_core::mapping::{render_groups, ErMapping, TpShape};
/// use wsc_topology::{Mesh, PlatformParams};
///
/// let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
/// let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
///     .unwrap()
///     .plan();
/// let art = render_groups(&topo, &plan);
/// // ER-Mapping interleaves the groups: row 0 alternates G0 G1 G0 G1.
/// assert!(art.lines().next().unwrap().contains("G0 G1 G0 G1"));
/// ```
pub fn render_groups(topo: &Topology, plan: &MappingPlan) -> String {
    render_with(topo, plan, |plan, d| format!("G{}", plan.group_of(d).0))
}

/// Renders the FTD assignment of each die as a grid (`F<idx>` labels),
/// making FTD compactness (ER) vs spread (baseline) visible.
pub fn render_ftds(topo: &Topology, plan: &MappingPlan) -> String {
    render_with(topo, plan, |plan, d| format!("F{}", plan.ftd_of(d)))
}

fn render_with(
    topo: &Topology,
    plan: &MappingPlan,
    label: impl Fn(&MappingPlan, wsc_topology::DeviceId) -> String,
) -> String {
    let dims = plan.dims();
    let width = (plan.num_groups().max(plan.ftds().len())).to_string().len() + 1;
    let mut out = String::new();
    for wy in 0..dims.wafers_y {
        for wx in 0..dims.wafers_x {
            if dims.num_wafers() > 1 {
                out.push_str(&format!("wafer ({wx},{wy}):\n"));
            }
            for y in 0..dims.n {
                let row: Vec<String> = (0..dims.n)
                    .map(|x| {
                        let d = topo.device_at(wx, wy, x, y).expect("die in range");
                        format!("{:>width$}", label(plan, d))
                    })
                    .collect();
                out.push_str(&row.join(" "));
                out.push('\n');
            }
            if dims.num_wafers() > 1 {
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{BaselineMapping, ErMapping, TpShape};
    use wsc_topology::{Mesh, PlatformParams};

    fn topo() -> Topology {
        Mesh::new(4, PlatformParams::dojo_like()).build()
    }

    #[test]
    fn baseline_groups_are_blocks() {
        let topo = topo();
        let plan = BaselineMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        let art = render_groups(&topo, &plan);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[0], "G0 G0 G1 G1");
        assert_eq!(lines[2], "G2 G2 G3 G3");
    }

    #[test]
    fn er_groups_are_interleaved() {
        let topo = topo();
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        let art = render_groups(&topo, &plan);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[0], "G0 G1 G0 G1");
        assert_eq!(lines[1], "G2 G3 G2 G3");
    }

    #[test]
    fn er_ftds_are_blocks() {
        let topo = topo();
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        let art = render_ftds(&topo, &plan);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[0], "F0 F0 F1 F1");
        assert_eq!(lines[3], "F2 F2 F3 F3");
    }

    #[test]
    fn multi_wafer_render_labels_wafers() {
        let topo = wsc_topology::MultiWafer::grid(2, 1, 2, PlatformParams::dojo_like()).build();
        let plan = crate::mapping::HierarchicalErMapping::new(
            topo.mesh_dims().unwrap(),
            TpShape::new(2, 1),
        )
        .unwrap()
        .plan();
        let art = render_groups(&topo, &plan);
        assert!(art.contains("wafer (0,0):"));
        assert!(art.contains("wafer (1,0):"));
    }
}
