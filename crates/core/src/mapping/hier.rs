//! Hierarchical ER-Mapping for multi-WSC systems (paper §IV-B4).

use wsc_topology::{DeviceId, MeshDims, Topology};

use super::er::build_er_plan;
use super::ftd::Ftd;
use super::{MappingError, MappingKind, MappingPlan, TpShape};

/// Hierarchical ER-Mapping: ER within each wafer, with the attention
/// all-reduce decoupled into an **intra-wafer reduce-scatter** followed by
/// an **inter-wafer all-gather** (paper Fig. 10c).
///
/// After both steps every wafer holds tokens from all wafers — "enabling
/// the entire wafer to function as a unified FTD" — so MoE dispatch and
/// combine never cross wafer borders.
///
/// The TP shape is *per wafer*: groups never span wafers (unlike the pure
/// [`ErMapping`](super::ErMapping) applied to a multi-wafer grid, whose
/// entwined rings cross the expensive border links).
///
/// # Example
///
/// ```
/// use moentwine_core::mapping::{HierarchicalErMapping, TpShape};
/// use wsc_topology::{MultiWafer, PlatformParams};
///
/// let topo = MultiWafer::grid(2, 2, 4, PlatformParams::dojo_like()).build();
/// let plan = HierarchicalErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
///     .unwrap()
///     .plan();
/// // 4 wafers × 4 per-wafer groups.
/// assert_eq!(plan.num_groups(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct HierarchicalErMapping {
    dims: MeshDims,
    tp: TpShape,
}

impl HierarchicalErMapping {
    /// Creates the mapping; `tp` is the per-wafer TP shape.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::ShapeDoesNotTile`] if `tp` does not divide a
    /// single wafer.
    pub fn new(dims: MeshDims, tp: TpShape) -> Result<Self, MappingError> {
        if !dims.n.is_multiple_of(tp.x) || !dims.n.is_multiple_of(tp.y) {
            return Err(MappingError::ShapeDoesNotTile {
                shape: tp,
                n: dims.n,
            });
        }
        Ok(HierarchicalErMapping { dims, tp })
    }

    /// Convenience constructor picking the TP shape via
    /// [`TpShape::factor`] against a single wafer.
    pub fn with_tp_degree(dims: MeshDims, tp: usize) -> Result<Self, MappingError> {
        let shape = TpShape::factor(tp, dims.n)?;
        Self::new(dims, shape)
    }

    /// Resolves the full mapping plan.
    pub fn plan(&self) -> MappingPlan {
        let dims = self.dims;
        let wafers = dims.num_wafers();
        let per_wafer_dims = MeshDims {
            wafers_x: 1,
            wafers_y: 1,
            n: dims.n,
        };
        // Build the single-wafer ER plan and replicate it per wafer with
        // shifted device ids.
        let base = build_er_plan(per_wafer_dims, self.tp, MappingKind::EntwinedRing);
        let per_wafer = (dims.n as usize).pow(2);

        let shift = |d: DeviceId, w: usize| DeviceId(d.0 + (w * per_wafer) as u32);

        let mut groups = Vec::with_capacity(wafers * base.groups.len());
        let mut ftds: Vec<Ftd> = Vec::with_capacity(wafers * base.ftds.len());
        let mut group_of = vec![(0usize, 0usize); wafers * per_wafer];
        let mut ftd_of = vec![0usize; wafers * per_wafer];
        let mut rings = Vec::new();
        let mut parity = Vec::new();
        for w in 0..wafers {
            for (g, members) in base.groups.iter().enumerate() {
                let global_g = w * base.groups.len() + g;
                let shifted: Vec<DeviceId> = members.iter().map(|&d| shift(d, w)).collect();
                for (rank, &d) in shifted.iter().enumerate() {
                    group_of[d.index()] = (global_g, rank);
                }
                groups.push(shifted);
            }
            for ftd in &base.ftds {
                let global_f = w * base.ftds.len() + ftd.index();
                let shifted: Vec<DeviceId> = ftd.devices().iter().map(|&d| shift(d, w)).collect();
                for &d in &shifted {
                    ftd_of[d.index()] = global_f;
                }
                ftds.push(Ftd::new(global_f, shifted));
            }
            for (r, ring) in base.rings.rings.iter().enumerate() {
                rings.push(wsc_collectives::Ring::new(
                    ring.devices().iter().map(|&d| shift(d, w)).collect(),
                ));
                parity.push(base.rings.parity[r]);
            }
        }

        MappingPlan {
            kind: MappingKind::HierarchicalEntwinedRing,
            dims,
            tp: self.tp,
            groups,
            group_of,
            ftds,
            ftd_of,
            rings: wsc_collectives::StaggeredRings::new(rings, parity, base.rings.num_parities),
            inter_wafer_rings: self.inter_wafer_rings_arith(),
            retain_all_gather: true,
        }
    }

    /// Computes the inter-wafer rings arithmetically (no topology needed):
    /// device id = `(wy·Wx + wx)·n² + y·n + x`.
    fn inter_wafer_rings_arith(&self) -> Vec<wsc_collectives::Ring> {
        let dims = self.dims;
        if dims.num_wafers() < 2 {
            return Vec::new();
        }
        let n = dims.n as u32;
        let per_wafer = n * n;
        let mut wafer_order: Vec<u32> = Vec::new();
        for wy in 0..dims.wafers_y as u32 {
            let xs: Vec<u32> = if wy % 2 == 0 {
                (0..dims.wafers_x as u32).collect()
            } else {
                (0..dims.wafers_x as u32).rev().collect()
            };
            for wx in xs {
                wafer_order.push(wy * dims.wafers_x as u32 + wx);
            }
        }
        let mut rings = Vec::new();
        for y in 0..n {
            for x in 0..n {
                let members: Vec<DeviceId> = wafer_order
                    .iter()
                    .map(|&w| DeviceId(w * per_wafer + y * n + x))
                    .collect();
                rings.push(wsc_collectives::Ring::new(members));
            }
        }
        rings
    }

    /// The inter-wafer all-gather rings: one ring per die coordinate,
    /// linking that die's counterparts across all wafers in boustrophedon
    /// wafer order.
    pub fn inter_wafer_rings(&self, topo: &Topology) -> Vec<wsc_collectives::Ring> {
        let dims = self.dims;
        let mut wafer_order: Vec<(u16, u16)> = Vec::new();
        for wy in 0..dims.wafers_y {
            let xs: Vec<u16> = if wy % 2 == 0 {
                (0..dims.wafers_x).collect()
            } else {
                (0..dims.wafers_x).rev().collect()
            };
            for wx in xs {
                wafer_order.push((wx, wy));
            }
        }
        if wafer_order.len() < 2 {
            return Vec::new();
        }
        let mut rings = Vec::new();
        for y in 0..dims.n {
            for x in 0..dims.n {
                let members: Vec<DeviceId> = wafer_order
                    .iter()
                    .map(|&(wx, wy)| topo.device_at(wx, wy, x, y).expect("die"))
                    .collect();
                rings.push(wsc_collectives::Ring::new(members));
            }
        }
        rings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_topology::{LinkKind, MultiWafer, PlatformParams};

    fn topo4() -> Topology {
        MultiWafer::grid(2, 2, 4, PlatformParams::dojo_like()).build()
    }

    #[test]
    fn groups_stay_within_wafers() {
        let topo = topo4();
        let plan = HierarchicalErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        for group in plan.groups() {
            let wafers: Vec<_> = group
                .iter()
                .map(|&d| topo.location(d).wafer().unwrap())
                .collect();
            assert!(wafers.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn intra_wafer_rings_avoid_borders() {
        let topo = topo4();
        let mapping =
            HierarchicalErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2)).unwrap();
        let plan = mapping.plan();
        for ring in &plan.rings().rings {
            let devs = ring.devices();
            for i in 0..devs.len() {
                let r = topo.route(devs[i], devs[(i + 1) % devs.len()]);
                assert!(r
                    .links()
                    .iter()
                    .all(|&l| topo.link(l).kind != LinkKind::WaferBorder));
            }
        }
    }

    #[test]
    fn inter_wafer_rings_cover_all_coordinates() {
        let topo = topo4();
        let mapping =
            HierarchicalErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2)).unwrap();
        let rings = mapping.inter_wafer_rings(&topo);
        assert_eq!(rings.len(), 16); // one per die coordinate
        for ring in &rings {
            assert_eq!(ring.len(), 4); // one member per wafer
        }
    }

    #[test]
    fn token_sources_are_wafer_local() {
        let topo = topo4();
        let plan = HierarchicalErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        // A device on wafer (1,1) asking for group 0 (wafer (0,0)) tokens
        // must be served from its own wafer.
        let d = topo.device_at(1, 1, 0, 0).unwrap();
        for src in plan.token_sources(&topo, 0, d) {
            assert_eq!(
                topo.location(src.device).wafer(),
                topo.location(d).wafer(),
                "HER dispatch must stay on-wafer"
            );
        }
    }

    #[test]
    fn single_wafer_has_no_inter_rings() {
        let topo = wsc_topology::Mesh::new(4, PlatformParams::dojo_like()).build();
        let mapping =
            HierarchicalErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2)).unwrap();
        assert!(mapping.inter_wafer_rings(&topo).is_empty());
    }
}
