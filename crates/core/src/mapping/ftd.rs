//! Full Token Domains.

use serde::{Deserialize, Serialize};
use wsc_topology::{DeviceId, Topology};

/// A Full Token Domain (paper §IV-A): the minimal set of devices that
/// collectively holds tokens from every TP group, so that dispatch and
/// combine can be confined within it.
///
/// Every device belongs to exactly one FTD; an FTD contains exactly one
/// device of each TP group.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Ftd {
    index: usize,
    devices: Vec<DeviceId>,
}

impl Ftd {
    /// Creates an FTD.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn new(index: usize, devices: Vec<DeviceId>) -> Self {
        assert!(!devices.is_empty(), "an FTD contains at least one device");
        Ftd { index, devices }
    }

    /// This FTD's index within its plan.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Member devices (one per TP group).
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Number of member devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// FTDs are never empty; provided for completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the FTD contains `device`.
    pub fn contains(&self, device: DeviceId) -> bool {
        self.devices.contains(&device)
    }

    /// Axis-aligned bounding box `(min_x, min_y, max_x, max_y, wafer)` of
    /// the member dies, in global die coordinates.
    ///
    /// # Panics
    ///
    /// Panics if any member is not a mesh device.
    pub fn bounding_box(&self, topo: &Topology) -> (u16, u16, u16, u16, usize) {
        let dims = topo.mesh_dims().expect("FTDs exist only on meshes");
        let mut min_x = u16::MAX;
        let mut min_y = u16::MAX;
        let mut max_x = 0;
        let mut max_y = 0;
        let mut wafer = 0usize;
        for &d in &self.devices {
            let loc = topo.location(d);
            let (x, y) = loc.xy().expect("mesh location");
            let (wx, wy) = loc.wafer().expect("mesh location");
            let gx = wx * dims.n + x;
            let gy = wy * dims.n + y;
            min_x = min_x.min(gx);
            min_y = min_y.min(gy);
            max_x = max_x.max(gx);
            max_y = max_y.max(gy);
            wafer = 0; // global coordinates already absorb the wafer
        }
        (min_x, min_y, max_x, max_y, wafer)
    }

    /// Area of the bounding box in dies (the paper speaks of "3×3 area"
    /// vs "2×2 area" FTDs).
    pub fn area(&self, topo: &Topology) -> usize {
        let (x0, y0, x1, y1, _) = self.bounding_box(topo);
        (x1 - x0 + 1) as usize * (y1 - y0 + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_topology::{Mesh, PlatformParams};

    #[test]
    fn bounding_box_and_area() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let d = |x, y| topo.device_at_xy(x, y).unwrap();
        let compact = Ftd::new(0, vec![d(0, 0), d(1, 0), d(0, 1), d(1, 1)]);
        assert_eq!(compact.area(&topo), 4);
        let spread = Ftd::new(1, vec![d(0, 0), d(2, 0), d(0, 2), d(2, 2)]);
        assert_eq!(spread.area(&topo), 9);
        assert_eq!(spread.bounding_box(&topo), (0, 0, 2, 2, 0));
    }

    #[test]
    fn contains_members() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let d = |x, y| topo.device_at_xy(x, y).unwrap();
        let f = Ftd::new(0, vec![d(0, 0), d(1, 1)]);
        assert!(f.contains(d(0, 0)));
        assert!(!f.contains(d(1, 0)));
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        assert_eq!(f.index(), 0);
    }
}
