//! Compiling mappings and gating outcomes into communication work.
//!
//! Two halves:
//!
//! * [`ParallelLayout`] — the interface the engine uses to price attention
//!   all-reduce and MoE all-to-all for *any* platform. Implemented by
//!   [`MappingPlan`] (wafer meshes) and [`ClusterLayout`] (DGX / NVL72).
//! * [`A2aModel`] — the fast analytical dispatch/combine estimator: expands
//!   a [`LayerGating`] outcome over an [`ExpertPlacement`] into per-link
//!   volumes via precomputed routes, yielding congestion-aware latencies
//!   plus the per-device token/expert loads the compute model needs.

use moe_workload::LayerGating;
use wsc_collectives::{
    hierarchical_all_reduce, ring_all_gather, ring_all_reduce, ring_reduce_scatter, StaggeredRings,
};
use wsc_sim::{AnalyticModel, CongestionModel, FlowSchedule};
use wsc_topology::{DeviceId, Location, RouteTable, Topology};

use crate::mapping::{MappingKind, MappingPlan, TokenSource};
use crate::placement::ExpertPlacement;

/// A parallelism layout: which devices form each TP group, where a device
/// fetches a group's tokens from, and how the attention all-reduce runs.
///
/// This trait is object-safe; the engine stores a `&dyn ParallelLayout`.
///
/// `Sync` is a supertrait so several replica engines (and the worker-pool
/// threads stepping them) can share one layout by reference — layouts are
/// immutable precomputed data, so every implementation is trivially `Sync`.
pub trait ParallelLayout: Sync {
    /// TP group member lists, rank-ordered.
    fn groups(&self) -> &[Vec<DeviceId>];

    /// Token sources for dispatching group `group`'s tokens to `device`.
    fn token_sources(&self, topo: &Topology, group: usize, device: DeviceId) -> Vec<TokenSource>;

    /// The attention all-reduce schedule for `bytes_per_device` per member.
    fn all_reduce_schedule(&self, topo: &Topology, bytes_per_device: f64) -> FlowSchedule;

    /// The FTD index of a device, when the layout defines FTDs (wafer
    /// mappings). `None` on switch-based clusters.
    fn ftd_of_device(&self, device: DeviceId) -> Option<usize>;

    /// Per-device node indices when the platform has a slow inter-node tier
    /// whose all-to-all should be node-aggregated (the DeepSpeed-MoE-style
    /// hierarchical optimization the paper grants its DGX baseline).
    /// `None` for flat/mesh fabrics.
    fn hierarchical_nodes(&self, _topo: &Topology) -> Option<Vec<u16>> {
        None
    }

    /// Number of TP groups.
    fn num_groups(&self) -> usize {
        self.groups().len()
    }

    /// TP degree.
    fn tp_degree(&self) -> usize {
        self.groups().first().map_or(1, Vec::len)
    }
}

impl ParallelLayout for MappingPlan {
    fn groups(&self) -> &[Vec<DeviceId>] {
        MappingPlan::groups(self)
    }

    fn token_sources(&self, topo: &Topology, group: usize, device: DeviceId) -> Vec<TokenSource> {
        MappingPlan::token_sources(self, topo, group, device)
    }

    fn all_reduce_schedule(&self, topo: &Topology, bytes_per_device: f64) -> FlowSchedule {
        match self.kind() {
            MappingKind::Baseline | MappingKind::EntwinedRing => {
                if self.retains_all_gather() {
                    concurrent_rings(topo, self.rings(), bytes_per_device, false)
                } else {
                    // Fig. 14b ablation: reduce-scatter only.
                    concurrent_rings(topo, self.rings(), bytes_per_device, true)
                }
            }
            MappingKind::HierarchicalEntwinedRing => {
                // §IV-B4: intra-wafer reduce-scatter, then inter-wafer
                // all-gather of the per-device shards.
                let mut schedule = concurrent_rings(topo, self.rings(), bytes_per_device, true);
                let shard = bytes_per_device / self.tp().size() as f64;
                let wafers = self.dims().num_wafers() as f64;
                let inter: Vec<FlowSchedule> = self
                    .inter_wafer_rings()
                    .iter()
                    .map(|ring| ring_all_gather(topo, ring, wafers * shard))
                    .collect();
                for phase in FlowSchedule::merge_lockstep(inter.iter()).phases() {
                    schedule.push_phase(phase.label.clone(), phase.flows.clone());
                }
                schedule
            }
        }
    }

    fn ftd_of_device(&self, device: DeviceId) -> Option<usize> {
        Some(self.ftd_of(device))
    }
}

/// Timing model for entwined rings: all rings execute each logical step
/// concurrently, packet-interleaved on shared links (the paper's
/// time-staggering at packet granularity). Bandwidth-wise this is identical
/// to sub-phase staggering — a link shared by `p` rings serves each at
/// `1/p` rate — but the per-hop latency is paid once per logical step, not
/// once per sub-phase, reproducing the paper's "two-hop doubles the
/// all-reduce latency" for the 4×4/TP4 case. The explicitly staggered
/// schedule ([`wsc_collectives::staggered_ring_all_reduce`]) remains the
/// conflict-freedom witness (Fig. 8d).
fn concurrent_rings(
    topo: &Topology,
    rings: &StaggeredRings,
    bytes_per_device: f64,
    reduce_scatter_only: bool,
) -> FlowSchedule {
    let schedules: Vec<FlowSchedule> = rings
        .rings
        .iter()
        .map(|ring| {
            if reduce_scatter_only {
                ring_reduce_scatter(topo, ring, bytes_per_device)
            } else {
                ring_all_reduce(topo, ring, bytes_per_device)
            }
        })
        .collect();
    FlowSchedule::merge_lockstep(schedules.iter())
}

/// TP layout for switch-based clusters (DGX, NVL72): groups are contiguous
/// device ranges; all-reduce is the two-level hierarchical scheme; token
/// sources prefer same-node members (fewest switch hops).
#[derive(Clone, Debug)]
pub struct ClusterLayout {
    groups: Vec<Vec<DeviceId>>,
}

impl ClusterLayout {
    /// Partitions the cluster into contiguous TP groups of `tp` devices.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero or does not divide the device count.
    pub fn new(topo: &Topology, tp: usize) -> Self {
        assert!(tp > 0, "TP degree must be positive");
        assert_eq!(
            topo.num_devices() % tp,
            0,
            "TP={tp} must divide {} devices",
            topo.num_devices()
        );
        let groups = (0..topo.num_devices() / tp)
            .map(|g| {
                (0..tp)
                    .map(|r| DeviceId((g * tp + r) as u32))
                    .collect::<Vec<_>>()
            })
            .collect();
        ClusterLayout { groups }
    }

    fn node_of(topo: &Topology, d: DeviceId) -> u16 {
        match topo.location(d) {
            Location::Cluster { node, .. } => node,
            Location::Mesh { .. } => 0,
        }
    }
}

impl ParallelLayout for ClusterLayout {
    fn groups(&self) -> &[Vec<DeviceId>] {
        &self.groups
    }

    fn token_sources(&self, topo: &Topology, group: usize, device: DeviceId) -> Vec<TokenSource> {
        // Prefer same-node members (NVLink); spread the load across the
        // equidistant candidates — by destination rank for intra-node pulls
        // and by destination *node* for cross-node pulls, so that each
        // remote node's aggregated fetch leaves through a different member's
        // uplink.
        let members = &self.groups[group];
        let dst_node = Self::node_of(topo, device);
        let same_node: Vec<DeviceId> = members
            .iter()
            .copied()
            .filter(|&m| Self::node_of(topo, m) == dst_node)
            .collect();
        let pick = if same_node.is_empty() {
            members[dst_node as usize % members.len()]
        } else {
            same_node[device.0 as usize % same_node.len()]
        };
        vec![TokenSource {
            device: pick,
            fraction: 1.0,
        }]
    }

    fn all_reduce_schedule(&self, topo: &Topology, bytes_per_device: f64) -> FlowSchedule {
        let per_group: Vec<FlowSchedule> = self
            .groups
            .iter()
            .map(|group| {
                hierarchical_all_reduce(topo, group, bytes_per_device, |d| Self::node_of(topo, d))
            })
            .collect();
        FlowSchedule::merge_lockstep(per_group.iter())
    }

    fn ftd_of_device(&self, _device: DeviceId) -> Option<usize> {
        None
    }

    fn hierarchical_nodes(&self, topo: &Topology) -> Option<Vec<u16>> {
        let nodes: Vec<u16> = topo.devices().map(|d| Self::node_of(topo, d)).collect();
        // A flat supernode (one node) has no slow tier to aggregate over.
        let distinct = nodes.iter().collect::<std::collections::HashSet<_>>().len();
        (distinct > 1).then_some(nodes)
    }
}

/// Result of pricing one MoE layer's all-to-all.
#[derive(Clone, Debug)]
pub struct A2aEstimate {
    /// Dispatch (token scatter) estimate.
    pub dispatch: wsc_sim::AnalyticEstimate,
    /// Combine (result gather) estimate.
    pub combine: wsc_sim::AnalyticEstimate,
    /// Expected token load per device (replica shares applied).
    pub device_tokens: Vec<f64>,
    /// Number of resident experts with non-zero load per device (each
    /// streams its weights from HBM once).
    pub device_active_experts: Vec<f64>,
}

impl A2aEstimate {
    /// Dispatch + combine time.
    pub fn total_time(&self) -> f64 {
        self.dispatch.total_time + self.combine.total_time
    }

    /// `max / mean` of the per-device token loads (the load-ratio metric of
    /// paper Figs. 15–16). Returns 1 for a perfectly balanced layer.
    pub fn load_ratio(&self) -> f64 {
        let max = self.device_tokens.iter().copied().fold(0.0, f64::max);
        let mean = self.device_tokens.iter().sum::<f64>() / self.device_tokens.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// A `(source, destination, bytes)` transfer list, as consumed by
/// [`CongestionModel::price_pairs`].
type PairList = Vec<(DeviceId, DeviceId, f64)>;

/// Analytical all-to-all model with precomputed token-source tables.
///
/// Construction resolves, for every `(group, destination)` pair, where the
/// tokens come from; [`A2aModel::estimate`] then expands a gating outcome
/// into per-link volumes in `O(groups × devices × hops)`.
pub struct A2aModel<'a> {
    topo: &'a Topology,
    table: &'a RouteTable,
    /// `[group * D + dst]` → token sources.
    sources: Vec<Vec<TokenSource>>,
    num_groups: usize,
    /// Per-device node indices when the fabric has a slow inter-node tier
    /// (triggers node-aggregated dispatch/combine).
    nodes: Option<Vec<u16>>,
}

impl<'a> A2aModel<'a> {
    /// Builds the source table for `layout` over `topo`.
    pub fn new(topo: &'a Topology, table: &'a RouteTable, layout: &dyn ParallelLayout) -> Self {
        let num_devices = topo.num_devices();
        let num_groups = layout.num_groups();
        let mut sources = Vec::with_capacity(num_groups * num_devices);
        for g in 0..num_groups {
            for d in topo.devices() {
                sources.push(layout.token_sources(topo, g, d));
            }
        }
        A2aModel {
            topo,
            table,
            sources,
            num_groups,
            nodes: layout.hierarchical_nodes(topo),
        }
    }

    /// Number of TP groups the model was built for.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Expands a gating outcome into the explicit dispatch transfer list
    /// (for full-fidelity flow-level simulation). Combine transfers are the
    /// same pairs reversed.
    pub fn dispatch_transfers(
        &self,
        gating: &LayerGating,
        placement: &ExpertPlacement,
        token_bytes: f64,
    ) -> Vec<(DeviceId, DeviceId, f64)> {
        assert_eq!(
            gating.num_groups(),
            self.num_groups,
            "gating groups must match layout groups"
        );
        let num_devices = self.topo.num_devices();
        let mut volume = vec![0.0f64; self.num_groups * num_devices];
        for (g, counts) in gating.counts.iter().enumerate() {
            for (e, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let replicas = placement.replicas(e);
                let share = 1.0 / replicas.len() as f64;
                for &d in replicas {
                    volume[g * num_devices + d.index()] += c as f64 * share * token_bytes;
                }
            }
        }
        let mut transfers = Vec::new();
        for g in 0..self.num_groups {
            for d in 0..num_devices {
                let bytes = volume[g * num_devices + d];
                if bytes <= 0.0 {
                    continue;
                }
                let dst = DeviceId(d as u32);
                for source in &self.sources[g * num_devices + d] {
                    if source.device != dst {
                        transfers.push((source.device, dst, bytes * source.fraction));
                    }
                }
            }
        }
        transfers
    }

    /// Prices one layer's dispatch and combine with the fast analytical
    /// backend. Equivalent to [`A2aModel::estimate_with`] over an
    /// [`AnalyticModel`]; kept as the hot-path spelling the engine's default
    /// configuration uses.
    ///
    /// # Panics
    ///
    /// Panics if the gating group count does not match the layout.
    pub fn estimate(
        &self,
        gating: &LayerGating,
        placement: &ExpertPlacement,
        token_bytes: f64,
        tokens_per_group: u32,
    ) -> A2aEstimate {
        self.estimate_with(
            &AnalyticModel::new(self.topo),
            gating,
            placement,
            token_bytes,
            tokens_per_group,
        )
    }

    /// Prices one layer's dispatch and combine through any
    /// [`CongestionModel`] backend, given the gating outcome and the current
    /// expert placement. `tokens_per_group` bounds the unique tokens a group
    /// can contribute, enabling the dedup caps below.
    ///
    /// The transfer lists are handed to the backend as `(src, dst, bytes)`
    /// pairs resolved through the shared CSR route table, so every fidelity
    /// tier prices borrowed routes with no per-call route allocation — and
    /// the memoizing `flow-sim-cached` tier recognizes the repeated
    /// layer/iteration dispatch shapes of an engine sweep and replays their
    /// DES estimates instead of re-simulating.
    ///
    /// Two hierarchical-fabric refinements mirror the paper's baselines:
    ///
    /// * **Per-device dedup** — a token selecting several experts colocated
    ///   on one device is sent once, so `volume(g→d) ≤ tokens × bytes`.
    /// * **Node aggregation** (clusters only) — cross-node traffic is
    ///   aggregated per destination node (dispatch) and locally reduced
    ///   before returning (combine), the DeepSpeed-MoE-style optimization
    ///   the paper grants the DGX baseline (§VI-B).
    ///
    /// Both refinements are applied while expanding the gating outcome into
    /// explicit `(source, destination, bytes)` transfer lists, so every
    /// backend — closed-form or DES — prices exactly the same traffic.
    ///
    /// # Panics
    ///
    /// Panics if the gating group count does not match the layout.
    pub fn estimate_with(
        &self,
        backend: &dyn CongestionModel,
        gating: &LayerGating,
        placement: &ExpertPlacement,
        token_bytes: f64,
        tokens_per_group: u32,
    ) -> A2aEstimate {
        assert_eq!(
            gating.num_groups(),
            self.num_groups,
            "gating groups must match layout groups"
        );
        let group_bytes_cap = tokens_per_group as f64 * token_bytes;
        let (volume, device_tokens, device_active) =
            self.volumes_and_loads(gating, placement, token_bytes, group_bytes_cap);
        let (dispatch_pairs, combine_pairs) = self.transfer_pairs(&volume, group_bytes_cap);
        A2aEstimate {
            dispatch: backend.price_pairs(self.table, &dispatch_pairs),
            combine: backend.price_pairs(self.table, &combine_pairs),
            device_tokens,
            device_active_experts: device_active,
        }
    }

    /// Step 1 of pricing: per-(group, device) dispatch volumes (dedup-capped)
    /// and the per-device token/active-expert loads the compute model needs.
    fn volumes_and_loads(
        &self,
        gating: &LayerGating,
        placement: &ExpertPlacement,
        token_bytes: f64,
        group_bytes_cap: f64,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let num_devices = self.topo.num_devices();
        let mut volume = vec![0.0f64; self.num_groups * num_devices];
        let mut device_tokens = vec![0.0f64; num_devices];
        let mut device_active = vec![0.0f64; num_devices];
        let mut expert_total = vec![0u64; placement.num_experts()];
        for (g, counts) in gating.counts.iter().enumerate() {
            for (e, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                expert_total[e] += c as u64;
                let replicas = placement.replicas(e);
                let share = 1.0 / replicas.len() as f64;
                for &d in replicas {
                    volume[g * num_devices + d.index()] += c as f64 * share * token_bytes;
                    device_tokens[d.index()] += c as f64 * share;
                }
            }
        }
        for (e, &total) in expert_total.iter().enumerate() {
            if total > 0 {
                for &d in placement.replicas(e) {
                    device_active[d.index()] += 1.0;
                }
            }
        }
        // Per-device dedup cap.
        for v in &mut volume {
            *v = v.min(group_bytes_cap);
        }
        (volume, device_tokens, device_active)
    }

    /// Step 2 of pricing: expands per-(group, device) volumes into the
    /// explicit dispatch and combine transfer lists through the source
    /// table, applying node aggregation on hierarchical fabrics.
    fn transfer_pairs(&self, volume: &[f64], group_bytes_cap: f64) -> (PairList, PairList) {
        let num_devices = self.topo.num_devices();
        let mut dispatch = Vec::new();
        let mut combine = Vec::new();
        for g in 0..self.num_groups {
            let group_volume = &volume[g * num_devices..(g + 1) * num_devices];
            match &self.nodes {
                Some(nodes) => self.hierarchical_pairs(
                    g,
                    group_volume,
                    nodes,
                    group_bytes_cap,
                    &mut dispatch,
                    &mut combine,
                ),
                None => {
                    for (d, &bytes) in group_volume.iter().enumerate() {
                        if bytes <= 0.0 {
                            continue;
                        }
                        let dst = DeviceId(d as u32);
                        for source in &self.sources[g * num_devices + d] {
                            if source.device == dst {
                                continue;
                            }
                            let part = bytes * source.fraction;
                            dispatch.push((source.device, dst, part));
                            combine.push((dst, source.device, part));
                        }
                    }
                }
            }
        }
        (dispatch, combine)
    }

    /// Node-aggregated transfer expansion for one group on a hierarchical
    /// cluster.
    fn hierarchical_pairs(
        &self,
        g: usize,
        volume: &[f64],
        nodes: &[u16],
        group_bytes_cap: f64,
        dispatch: &mut PairList,
        combine: &mut PairList,
    ) {
        let num_devices = self.topo.num_devices();
        // The cluster source table always has a single nearest source.
        let source_of = |d: usize| self.sources[g * num_devices + d][0].device;
        // Partition destinations by node.
        let max_node = nodes.iter().copied().max().unwrap_or(0) as usize;
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); max_node + 1];
        for (d, &bytes) in volume.iter().enumerate() {
            if bytes > 0.0 {
                per_node[nodes[d] as usize].push(d);
            }
        }
        for dsts in per_node.iter().filter(|v| !v.is_empty()) {
            // All members of one node share the same nearest source (the
            // layout picks by hop count, identical within a node).
            let src = source_of(dsts[0]);
            let src_node = nodes[src.index()];
            let dst_node = nodes[dsts[0]];
            if src_node == dst_node {
                // Intra-node: direct transfers.
                for &d in dsts {
                    let dst = DeviceId(d as u32);
                    if src == dst {
                        continue;
                    }
                    dispatch.push((src, dst, volume[d]));
                    combine.push((dst, src, volume[d]));
                }
            } else {
                // Cross-node: one aggregated transfer over the slow tier,
                // then intra-node distribution from the aggregation point.
                let total: f64 = dsts.iter().map(|&d| volume[d]).sum();
                let cross = total.min(group_bytes_cap);
                let agg = DeviceId(dsts[0] as u32);
                dispatch.push((src, agg, cross));
                combine.push((agg, src, cross));
                for &d in &dsts[1..] {
                    let dst = DeviceId(d as u32);
                    dispatch.push((agg, dst, volume[d]));
                    combine.push((dst, agg, volume[d]));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{BaselineMapping, ErMapping, TpShape};
    use wsc_topology::{DgxCluster, Mesh, PlatformParams};

    fn uniform_gating(groups: usize, experts: usize, per_pair: u32) -> LayerGating {
        LayerGating {
            counts: vec![vec![per_pair; experts]; groups],
        }
    }

    #[test]
    fn er_beats_baseline_on_a2a() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let dims = topo.mesh_dims().unwrap();
        let placement = ExpertPlacement::balanced(16, 16, 1);
        let gating = uniform_gating(4, 16, 8);
        let token_bytes = 7168.0 * 2.0;

        let base_plan = BaselineMapping::new(dims, TpShape::new(2, 2))
            .unwrap()
            .plan();
        let er_plan = ErMapping::new(dims, TpShape::new(2, 2)).unwrap().plan();
        let base = A2aModel::new(&topo, &table, &base_plan).estimate(
            &gating,
            &placement,
            token_bytes,
            8 * 16,
        );
        let er = A2aModel::new(&topo, &table, &er_plan).estimate(
            &gating,
            &placement,
            token_bytes,
            8 * 16,
        );
        assert!(
            er.total_time() < base.total_time(),
            "ER {} vs baseline {}",
            er.total_time(),
            base.total_time()
        );
    }

    #[test]
    fn device_loads_conserved() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        let placement = ExpertPlacement::balanced(16, 16, 1);
        let gating = uniform_gating(4, 16, 8);
        let est = A2aModel::new(&topo, &table, &plan).estimate(&gating, &placement, 1024.0, 128);
        let total: f64 = est.device_tokens.iter().sum();
        assert!((total - (4.0 * 16.0 * 8.0)).abs() < 1e-6);
        assert!((est.load_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn replication_halves_hot_device_load() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 1))
            .unwrap()
            .plan();
        let mut placement = ExpertPlacement::balanced(4, 4, 1);
        let mut gating = uniform_gating(2, 4, 1);
        gating.counts[0][0] = 100; // expert 0 is hot
        let model = A2aModel::new(&topo, &table, &plan);
        let before = model.estimate(&gating, &placement, 1024.0, 1000);
        placement.add_replica(0, DeviceId(3)).unwrap();
        let after = model.estimate(&gating, &placement, 1024.0, 1000);
        assert!(after.load_ratio() < before.load_ratio());
    }

    #[test]
    fn estimate_with_backends_wafer_and_cluster() {
        use wsc_sim::CongestionBackend;
        // Wafer mesh (flat expansion) and DGX cluster (node-aggregated
        // expansion): the analytic backend must reproduce `estimate`
        // exactly, and the DES backend must stay within the documented
        // conservative-bound relationship on the same transfer lists.
        let wafer = Mesh::new(4, PlatformParams::dojo_like()).build();
        let wafer_table = RouteTable::build(&wafer);
        let wafer_plan = ErMapping::new(wafer.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        let cluster = DgxCluster::new(2, PlatformParams::dgx_b200()).build();
        let cluster_table = RouteTable::build(&cluster);
        let cluster_layout = ClusterLayout::new(&cluster, 8);
        let cases: [(&Topology, &RouteTable, &dyn ParallelLayout); 2] = [
            (&wafer, &wafer_table, &wafer_plan),
            (&cluster, &cluster_table, &cluster_layout),
        ];
        for (topo, table, layout) in cases {
            let model = A2aModel::new(topo, table, layout);
            let placement = ExpertPlacement::balanced(16, topo.num_devices(), 1);
            let mut gating = uniform_gating(model.num_groups(), 16, 8);
            gating.counts[0][3] += 40; // some imbalance
            let fast = model.estimate(&gating, &placement, 1024.0, 256);
            let analytic = model.estimate_with(
                CongestionBackend::Analytic.build(topo).as_ref(),
                &gating,
                &placement,
                1024.0,
                256,
            );
            assert_eq!(fast.dispatch, analytic.dispatch);
            assert_eq!(fast.combine, analytic.combine);
            assert_eq!(fast.device_tokens, analytic.device_tokens);

            let des = model.estimate_with(
                CongestionBackend::FlowSim.build(topo).as_ref(),
                &gating,
                &placement,
                1024.0,
                256,
            );
            // The memoizing tier must reproduce the DES bit-for-bit, both on
            // the first (miss) and second (hit) pricing of the same layer.
            let cached_backend = CongestionBackend::FlowSimCached.build(topo);
            for _ in 0..2 {
                let cached =
                    model.estimate_with(cached_backend.as_ref(), &gating, &placement, 1024.0, 256);
                assert_eq!(cached.dispatch, des.dispatch);
                assert_eq!(cached.combine, des.combine);
            }
            assert_eq!(des.device_tokens, analytic.device_tokens);
            assert!(
                (des.dispatch.total_bytes - analytic.dispatch.total_bytes).abs() < 1e-6,
                "backends must price identical traffic"
            );
            assert!(des.total_time() > 0.0);
            assert!(
                des.dispatch.total_time >= analytic.dispatch.serialization_time * 0.999,
                "DES {} beats the serialization bound {}",
                des.dispatch.total_time,
                analytic.dispatch.serialization_time
            );
        }
    }

    #[test]
    fn cluster_layout_all_reduce_and_sources() {
        let topo = DgxCluster::new(2, PlatformParams::dgx_b200()).build();
        let layout = ClusterLayout::new(&topo, 8);
        assert_eq!(layout.num_groups(), 2);
        assert_eq!(layout.tp_degree(), 8);
        // Token sources prefer same-node members; cross-node pulls are
        // spread by destination node (node 1 pulls from member 1).
        let sources = layout.token_sources(&topo, 0, DeviceId(9));
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].device, DeviceId(1));
        // A destination inside the group's own node is served locally.
        let local = layout.token_sources(&topo, 0, DeviceId(3));
        assert_eq!(local[0].device, DeviceId(3));
        let sched = layout.all_reduce_schedule(&topo, 1.0e6);
        assert!(sched.num_phases() > 0);
        assert!(layout.ftd_of_device(DeviceId(0)).is_none());
    }

    #[test]
    fn without_all_gather_halves_ar_schedule() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        let with_ag = plan.all_reduce_schedule(&topo, 1.0e6).num_phases();
        let without = plan
            .clone()
            .without_all_gather()
            .all_reduce_schedule(&topo, 1.0e6)
            .num_phases();
        assert_eq!(without * 2, with_ag);
    }
}
