//! Expert Sharding Parallelism (paper §VI-B5, Fig. 14a).
//!
//! Models with few but large experts (DBRX, Mixtral) can slice each expert
//! across an *ESP group* of devices. The communication pattern changes:
//! tokens must be **gathered by every member** of their expert's ESP group
//! (each member holds only a slice of the weights), and the members'
//! partial outputs are **all-reduced** within the group.
//!
//! Under ER-Mapping the natural ESP group is the FTD: all TP groups' tokens
//! already reside inside each FTD after the attention all-gather, so the
//! cross-mesh token all-to-all is eliminated and only the intra-group
//! all-reduce remains. On GPU clusters the ESP group is the node.

use wsc_collectives::{ring_all_reduce, Ring};
use wsc_sim::{AnalyticEstimate, FlowSchedule};
use wsc_topology::{DeviceId, RouteTable, Topology};

use crate::comm::ParallelLayout;
use crate::mapping::MappingPlan;

/// Communication estimate for one MoE layer under ESP.
#[derive(Clone, Debug)]
pub struct EspEstimate {
    /// Token gather into the ESP groups.
    pub gather: AnalyticEstimate,
    /// Partial-sum all-reduce within each ESP group, seconds.
    pub reduce_time: f64,
}

impl EspEstimate {
    /// Total ESP communication time.
    pub fn total_time(&self) -> f64 {
        self.gather.total_time + self.reduce_time
    }
}

/// The canonical ESP groups for a wafer mapping: its FTDs.
pub fn esp_groups_from_plan(plan: &MappingPlan) -> Vec<Vec<DeviceId>> {
    plan.ftds().iter().map(|f| f.devices().to_vec()).collect()
}

/// ESP groups for a switch cluster: one group per run of `group_size`
/// consecutive devices (a node for DGX).
///
/// # Panics
///
/// Panics if `group_size` is zero or does not divide the device count.
pub fn esp_groups_by_node(topo: &Topology, group_size: usize) -> Vec<Vec<DeviceId>> {
    assert!(group_size > 0, "group size must be positive");
    assert_eq!(
        topo.num_devices() % group_size,
        0,
        "groups must tile devices"
    );
    (0..topo.num_devices() / group_size)
        .map(|g| {
            (0..group_size)
                .map(|r| DeviceId((g * group_size + r) as u32))
                .collect()
        })
        .collect()
}

/// Prices one layer's ESP communication: every ESP group receives an equal
/// share of the routed tokens; each member gathers the full share, then the
/// group all-reduces its partial outputs.
///
/// `layout` provides token sources (where each TP group's tokens live).
pub fn esp_estimate(
    topo: &Topology,
    table: &RouteTable,
    layout: &dyn ParallelLayout,
    esp_groups: &[Vec<DeviceId>],
    tokens_per_group: u32,
    top_k: u32,
    token_bytes: f64,
) -> EspEstimate {
    let num_tp_groups = layout.num_groups();
    // Tokens routed to each ESP group, from each TP group.
    let tokens_per_esp_from_tp = tokens_per_group as f64 * top_k as f64 / esp_groups.len() as f64;
    let bytes_per_esp_from_tp = tokens_per_esp_from_tp * token_bytes;

    // Gather: every member of the ESP group fetches every TP group's share.
    let mut pairs: Vec<(DeviceId, DeviceId, f64)> = Vec::new();
    for group in esp_groups {
        for &member in group {
            for g in 0..num_tp_groups {
                for source in layout.token_sources(topo, g, member) {
                    if source.device != member {
                        pairs.push((
                            source.device,
                            member,
                            bytes_per_esp_from_tp * source.fraction,
                        ));
                    }
                }
            }
        }
    }
    let gather = wsc_sim::AnalyticModel::new(topo).estimate_pairs(table, pairs);

    // All-reduce of partial outputs within each ESP group.
    let reduce_bytes = tokens_per_esp_from_tp * num_tp_groups as f64 * token_bytes;
    let schedules: Vec<FlowSchedule> = esp_groups
        .iter()
        .filter(|g| g.len() >= 2)
        .map(|g| ring_all_reduce(topo, &Ring::new(g.clone()), reduce_bytes))
        .collect();
    let reduce_time = if schedules.is_empty() {
        0.0
    } else {
        wsc_sim::AnalyticModel::new(topo)
            .estimate_schedule(&FlowSchedule::merge_lockstep(schedules.iter()))
            .total_time
    };

    EspEstimate {
        gather,
        reduce_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ClusterLayout;
    use crate::mapping::{ErMapping, TpShape};
    use wsc_topology::{DgxCluster, Mesh, PlatformParams};

    #[test]
    fn er_ftd_esp_gather_is_cheap() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        let groups = esp_groups_from_plan(&plan);
        let est = esp_estimate(&topo, &table, &plan, &groups, 256, 2, 12288.0);
        // Gather stays within 2x2 FTDs: max 2 hops.
        assert!(est.gather.max_hops <= 2);
        assert!(est.reduce_time > 0.0);
    }

    #[test]
    fn gpu_esp_gather_crosses_nodes() {
        let topo = DgxCluster::new(4, PlatformParams::dgx_b200()).build();
        let table = RouteTable::build(&topo);
        let layout = ClusterLayout::new(&topo, 8);
        let groups = esp_groups_by_node(&topo, 8);
        let est = esp_estimate(&topo, &table, &layout, &groups, 256, 2, 12288.0);
        assert!(est.gather.max_hops >= 2);
        assert!(est.total_time() > 0.0);
    }

    #[test]
    fn wsc_esp_beats_gpu_esp() {
        // The Fig. 14a headline: WSC outperforms DGX by ~50% under ESP.
        let gpu_topo = DgxCluster::new(4, PlatformParams::dgx_b200()).build();
        let gpu_table = RouteTable::build(&gpu_topo);
        let gpu_layout = ClusterLayout::new(&gpu_topo, 8);
        let gpu = esp_estimate(
            &gpu_topo,
            &gpu_table,
            &gpu_layout,
            &esp_groups_by_node(&gpu_topo, 8),
            256,
            2,
            12288.0,
        );

        let wsc_topo = Mesh::new(6, PlatformParams::dojo_like()).build();
        let wsc_table = RouteTable::build(&wsc_topo);
        let plan = ErMapping::new(wsc_topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        let wsc = esp_estimate(
            &wsc_topo,
            &wsc_table,
            &plan,
            &esp_groups_from_plan(&plan),
            256,
            2,
            12288.0,
        );
        assert!(
            wsc.total_time() < gpu.total_time(),
            "wsc {} vs gpu {}",
            wsc.total_time(),
            gpu.total_time()
        );
    }
}
