//! The topology-aware balancer (paper Algorithm 1).

use wsc_topology::DeviceId;

use super::{device_heats, stale_replicas, BalanceAction, BalanceContext, Balancer};

/// Algorithm 1 of the paper:
///
/// 1. `Heat_d ← Σ Load_e / Num_e` for the experts on each device.
/// 2. Pick the hottest device; its most popular per-replica expert is the
///    migration source `src_e`.
/// 3. `cold_d ← { d : Heat_d < Heat_hottest − Load_src/Num_src }`, keeping
///    only devices with a free shadow slot not already hosting `src_e`.
/// 4. Break if `cold_d` is empty; otherwise pick the **topologically
///    nearest** member of `cold_d` to the source replica — any cold device
///    reduces the peak equally, so the tie-break minimises migration
///    distance and keeps the balancer agile (§V-C).
/// 5. Copy, increment `Num`, update heats; repeat.
///
/// # Example
///
/// ```
/// use moentwine_core::balancer::{Balancer, BalanceContext, TopologyAwareBalancer};
/// use moentwine_core::placement::ExpertPlacement;
/// use wsc_topology::{Mesh, PlatformParams, RouteTable};
///
/// let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
/// let table = RouteTable::build(&topo);
/// let placement = ExpertPlacement::balanced(4, 4, 1);
/// let loads = vec![100.0, 1.0, 1.0, 1.0];
/// let mut balancer = TopologyAwareBalancer::new(4);
/// let actions = balancer.plan_layer(&BalanceContext {
///     layer: 0,
///     expert_loads: &loads,
///     placement: &placement,
///     table: &table,
/// });
/// assert!(!actions.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct TopologyAwareBalancer {
    max_actions_per_layer: usize,
    release_threshold: f64,
}

impl TopologyAwareBalancer {
    /// Creates a balancer emitting at most `max_actions_per_layer`
    /// replications per planning call.
    pub fn new(max_actions_per_layer: usize) -> Self {
        TopologyAwareBalancer {
            max_actions_per_layer,
            release_threshold: 0.05,
        }
    }

    /// Sets the stale-replica release threshold.
    pub fn with_release_threshold(mut self, threshold: f64) -> Self {
        self.release_threshold = threshold;
        self
    }
}

impl Balancer for TopologyAwareBalancer {
    fn plan_layer(&mut self, ctx: &BalanceContext<'_>) -> Vec<BalanceAction> {
        let mut actions = stale_replicas(
            ctx.placement,
            ctx.expert_loads,
            ctx.layer,
            self.release_threshold,
        );
        let mut placement = ctx.placement.clone();
        for a in &actions {
            if let BalanceAction::Release { expert, device, .. } = *a {
                placement.remove_replica(expert, device);
            }
        }

        for _ in 0..self.max_actions_per_layer {
            let heats = device_heats(&placement, ctx.expert_loads);
            // Line 3: hottest device.
            let hottest = (0..placement.num_devices())
                .map(|d| DeviceId(d as u32))
                .max_by(|&a, &b| heats[a.index()].partial_cmp(&heats[b.index()]).unwrap())
                .expect("at least one device");
            // Line 4: its most popular per-replica expert.
            let Some((src_e, src_share)) = placement
                .device_experts(hottest)
                .into_iter()
                .map(|e| (e, ctx.expert_loads[e] / placement.num_replicas(e) as f64))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            else {
                break;
            };
            if src_share <= 0.0 {
                break;
            }
            // The replica we copy from is the one on the hottest device.
            let source = hottest;
            // Line 5: cold set — "devices whose Heat_d would not exceed the
            // current maximum after hosting this expert" (§V-C), with the
            // post-replication share Load/(Num+1).
            let new_share = ctx.expert_loads[src_e] / (placement.num_replicas(src_e) + 1) as f64;
            let cold: Vec<DeviceId> = (0..placement.num_devices())
                .map(|d| DeviceId(d as u32))
                .filter(|&d| {
                    heats[d.index()] + new_share < heats[hottest.index()]
                        && placement.has_free_slot(d)
                        && !placement.hosts(d, src_e)
                })
                .collect();
            // Line 6: break if empty.
            if cold.is_empty() {
                break;
            }
            // Line 7: topologically nearest cold device.
            let target = cold
                .into_iter()
                .min_by_key(|&d| (ctx.table.hops(source, d), d))
                .expect("non-empty cold set");
            // Lines 8–9: copy and update.
            placement
                .add_replica(src_e, target)
                .expect("target validated");
            actions.push(BalanceAction::Replicate {
                layer: ctx.layer,
                expert: src_e,
                source,
                target,
            });
        }
        actions
    }

    fn name(&self) -> &'static str {
        "topology-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::ExpertPlacement;
    use wsc_topology::{Mesh, PlatformParams, RouteTable, Topology};

    fn fixture() -> (Topology, RouteTable) {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        (topo, table)
    }

    #[test]
    fn prefers_nearest_cold_device() {
        let (_topo, table) = fixture();
        // 16 devices; expert 0 on device 0 is hot; devices 1 and 15 equally
        // cold — the balancer must choose device 1 (1 hop from device 0).
        let placement = ExpertPlacement::balanced(16, 16, 1);
        let mut loads = vec![1.0; 16];
        loads[0] = 50.0;
        let mut b = TopologyAwareBalancer::new(1);
        let actions = b.plan_layer(&BalanceContext {
            layer: 0,
            expert_loads: &loads,
            placement: &placement,
            table: &table,
        });
        match actions.last() {
            Some(&BalanceAction::Replicate {
                expert,
                target,
                source,
                ..
            }) => {
                assert_eq!(expert, 0);
                assert_eq!(source, DeviceId(0));
                // Nearest cold devices to (0,0) are (1,0)=id1 and (0,1)=id4.
                assert_eq!(table.hops(DeviceId(0), target), 1);
            }
            other => panic!("expected replicate, got {other:?}"),
        }
    }

    #[test]
    fn terminates_when_no_cold_devices() {
        let (_topo, table) = fixture();
        let placement = ExpertPlacement::balanced(16, 16, 1);
        let loads = vec![5.0; 16];
        let mut b = TopologyAwareBalancer::new(8);
        let actions = b.plan_layer(&BalanceContext {
            layer: 0,
            expert_loads: &loads,
            placement: &placement,
            table: &table,
        });
        assert!(actions.is_empty());
    }

    #[test]
    fn replication_reduces_peak_heat() {
        let (_topo, table) = fixture();
        let mut placement = ExpertPlacement::balanced(16, 16, 1);
        let mut loads = vec![1.0; 16];
        loads[5] = 64.0;
        let mut b = TopologyAwareBalancer::new(4);
        let actions = b.plan_layer(&BalanceContext {
            layer: 0,
            expert_loads: &loads,
            placement: &placement,
            table: &table,
        });
        let before = placement
            .device_loads(&loads)
            .into_iter()
            .fold(0.0, f64::max);
        for a in &actions {
            if let BalanceAction::Replicate { expert, target, .. } = *a {
                placement.add_replica(expert, target).unwrap();
            }
        }
        let after = placement
            .device_loads(&loads)
            .into_iter()
            .fold(0.0, f64::max);
        assert!(after < before, "{after} vs {before}");
    }

    #[test]
    fn migration_distance_below_greedy() {
        // With the hot device in a corner and equally-cold candidates
        // everywhere, topology-aware migrations are short.
        let (_topo, table) = fixture();
        let placement = ExpertPlacement::balanced(16, 16, 2);
        let mut loads = vec![2.0; 16];
        loads[0] = 40.0;
        loads[1] = 30.0;
        let mut b = TopologyAwareBalancer::new(4);
        let actions = b.plan_layer(&BalanceContext {
            layer: 0,
            expert_loads: &loads,
            placement: &placement,
            table: &table,
        });
        for a in actions {
            if let BalanceAction::Replicate { source, target, .. } = a {
                assert!(table.hops(source, target) <= 3, "{source}->{target}");
            }
        }
    }
}
