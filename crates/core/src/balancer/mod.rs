//! Expert load-balancing strategies (paper §V).
//!
//! A balancer inspects per-expert historical loads and the current
//! [`ExpertPlacement`] of one layer and
//! proposes actions: *replicate* an expert into a shadow slot elsewhere, or
//! *release* a stale shadow replica. Whether executing those actions stalls
//! inference is the engine's concern (invasive vs non-invasive execution,
//! see [`migration`](crate::migration)).
//!
//! Implementations:
//!
//! * [`GreedyBalancer`] — the EPLB-style baseline: replicate the globally
//!   hottest expert onto the globally coldest device, ignoring distance.
//! * [`TopologyAwareBalancer`] — the paper's Algorithm 1: migrate the most
//!   popular expert of the *hottest* device to the **topologically nearest**
//!   device that stays below the current peak heat.

mod greedy;
mod topo_aware;
mod trigger;

pub use greedy::GreedyBalancer;
pub use topo_aware::TopologyAwareBalancer;
pub use trigger::{cumulative_imbalance, Trigger};

use serde::{Deserialize, Serialize};
use wsc_topology::{DeviceId, RouteTable};

use crate::placement::{ExpertId, ExpertPlacement};

/// Everything a balancer sees when planning one layer.
pub struct BalanceContext<'a> {
    /// Sparse-layer index.
    pub layer: usize,
    /// Smoothed historical load per expert (the `Load_e` of Algorithm 1).
    pub expert_loads: &'a [f64],
    /// Current placement of the layer.
    pub placement: &'a ExpertPlacement,
    /// Route table for topology distances.
    pub table: &'a RouteTable,
}

/// One balancing action.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum BalanceAction {
    /// Copy `expert`'s weights from `source` into a shadow slot on `target`.
    Replicate {
        /// Layer the expert belongs to.
        layer: usize,
        /// The expert to replicate.
        expert: ExpertId,
        /// Replica to copy from (weights travel from here).
        source: DeviceId,
        /// Device receiving the new replica.
        target: DeviceId,
    },
    /// Drop the shadow replica of `expert` on `device` (no data movement).
    Release {
        /// Layer the expert belongs to.
        layer: usize,
        /// The expert whose replica is dropped.
        expert: ExpertId,
        /// Device freeing the slot.
        device: DeviceId,
    },
}

/// A load-balancing strategy. Object-safe; the engine holds a boxed
/// balancer. `Send` is a supertrait so an engine owning one can be moved
/// across worker-pool threads (see `crate::fleet`).
pub trait Balancer: Send {
    /// Plans actions for one layer. Implementations must not mutate the
    /// placement; the engine applies actions according to its execution
    /// policy.
    fn plan_layer(&mut self, ctx: &BalanceContext<'_>) -> Vec<BalanceAction>;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Which balancer (and execution style) an engine run uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BalancerKind {
    /// No balancing at all.
    None,
    /// EPLB-style greedy, executed invasively (migration on the critical
    /// path).
    Greedy,
    /// Algorithm 1, executed invasively.
    TopologyAware,
    /// Algorithm 1, executed non-invasively on cold links (the full
    /// NI-Balancer).
    NonInvasive,
}

impl BalancerKind {
    /// Stable lowercase name (`"no-balance"` / `"greedy"` /
    /// `"topology-aware"` / `"non-invasive"`), matching the `FromStr`
    /// spelling and the scenario-spec JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            BalancerKind::None => "no-balance",
            BalancerKind::Greedy => "greedy",
            BalancerKind::TopologyAware => "topology-aware",
            BalancerKind::NonInvasive => "non-invasive",
        }
    }
}

impl std::fmt::Display for BalancerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BalancerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "no-balance" | "none" => Ok(BalancerKind::None),
            "greedy" => Ok(BalancerKind::Greedy),
            "topology-aware" => Ok(BalancerKind::TopologyAware),
            "non-invasive" | "ni" => Ok(BalancerKind::NonInvasive),
            other => Err(format!(
                "unknown balancer kind {other:?} (expected \"no-balance\", \
                 \"greedy\", \"topology-aware\", or \"non-invasive\")"
            )),
        }
    }
}

/// Shared helper: per-device heat (`Σ Load_e / Num_e`, Algorithm 1 line 1)
/// given a tentative placement.
pub(crate) fn device_heats(placement: &ExpertPlacement, expert_loads: &[f64]) -> Vec<f64> {
    placement.device_loads(expert_loads)
}

/// Shared helper: release shadow replicas that no longer pull their weight.
/// A replica is stale when its per-replica share is below `threshold ×` the
/// mean device load — this keeps slots available as the scenario mixture
/// drifts (paper §V-B: "continuous fine-tuning of slot assignments").
pub(crate) fn stale_replicas(
    placement: &ExpertPlacement,
    expert_loads: &[f64],
    layer: usize,
    threshold: f64,
) -> Vec<BalanceAction> {
    let heats = device_heats(placement, expert_loads);
    let mean = heats.iter().sum::<f64>() / heats.len() as f64;
    if mean <= 0.0 {
        return Vec::new();
    }
    let mut actions = Vec::new();
    for d in 0..placement.num_devices() {
        let device = DeviceId(d as u32);
        for &e in placement.shadow_experts(device) {
            let share = expert_loads[e] / placement.num_replicas(e) as f64;
            if share < threshold * mean {
                actions.push(BalanceAction::Release {
                    layer,
                    expert: e,
                    device,
                });
            }
        }
    }
    actions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balancer_kind_display() {
        assert_eq!(BalancerKind::NonInvasive.to_string(), "non-invasive");
        assert_eq!(BalancerKind::Greedy.to_string(), "greedy");
    }

    #[test]
    fn stale_replica_detection() {
        let mut p = ExpertPlacement::balanced(4, 4, 1);
        p.add_replica(0, DeviceId(2)).unwrap();
        // Expert 0 has negligible load → its replica on device 2 is stale.
        let loads = [0.01, 10.0, 10.0, 10.0];
        let actions = stale_replicas(&p, &loads, 0, 0.1);
        assert_eq!(
            actions,
            vec![BalanceAction::Release {
                layer: 0,
                expert: 0,
                device: DeviceId(2)
            }]
        );
        // A busy replica is kept.
        let busy = [40.0, 10.0, 10.0, 10.0];
        assert!(stale_replicas(&p, &busy, 0, 0.1).is_empty());
    }
}
