//! The balancing trigger of paper Eq. 2.

use serde::{Deserialize, Serialize};

/// Decides *when* to rebalance (paper Eq. 2):
///
/// ```text
/// Σ_{i=1}^{L} (max(load_i) − µ(load_i)) / µ(load_i)  >  α
/// Δt_mig ≥ β          (β = 0 disables the cooldown)
/// ```
///
/// The cumulative imbalance across all `L` layers must exceed `alpha`, and
/// — once a migration has fired — at least `beta` iterations must have
/// passed since it (the *cooldown*; a fire at exactly `last + beta` is
/// allowed). Invasive balancers use `beta > 0` to avoid interrupting every
/// iteration. `beta = 0` **disables the cooldown entirely**: the trigger
/// fires on every evaluation where the imbalance exceeds `alpha`, including
/// repeated evaluations at the same iteration — this is the non-invasive
/// balancer's continuous fine-tuning mode, not a special case of the
/// spacing rule. The first fire is never delayed: with no prior migration
/// there is nothing to space from.
///
/// # Example
///
/// ```
/// use moentwine_core::balancer::Trigger;
///
/// let mut t = Trigger::new(10.0, 5);
/// assert!(!t.should_balance(0, 8.0));  // below alpha
/// assert!(t.should_balance(1, 12.0));  // fires
/// assert!(!t.should_balance(3, 12.0)); // within beta window
/// assert!(t.should_balance(6, 12.0));  // window elapsed
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Trigger {
    alpha: f64,
    beta_iterations: u64,
    last_migration: Option<u64>,
}

impl Trigger {
    /// Creates a trigger with cumulative-imbalance threshold `alpha` and
    /// minimum migration spacing `beta_iterations`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    pub fn new(alpha: f64, beta_iterations: u64) -> Self {
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be ≥ 0");
        Trigger {
            alpha,
            beta_iterations,
            last_migration: None,
        }
    }

    /// The imbalance threshold.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The spacing requirement in iterations.
    pub fn beta_iterations(&self) -> u64 {
        self.beta_iterations
    }

    /// Evaluates Eq. 2 at `iteration` with the measured cumulative
    /// imbalance; records the migration time when it fires.
    ///
    /// `beta_iterations == 0` disables the cooldown branch outright (see
    /// the type docs), rather than relying on the spacing comparison to be
    /// vacuously true — the two happen to coincide for the `Some(last)`
    /// path, but keeping the disable explicit pins the documented contract.
    pub fn should_balance(&mut self, iteration: u64, cumulative_imbalance: f64) -> bool {
        if cumulative_imbalance <= self.alpha {
            return false;
        }
        if self.beta_iterations > 0 {
            if let Some(last) = self.last_migration {
                if iteration.saturating_sub(last) < self.beta_iterations {
                    return false;
                }
            }
        }
        self.last_migration = Some(iteration);
        true
    }

    /// Iteration of the last fired migration, if any.
    pub fn last_migration(&self) -> Option<u64> {
        self.last_migration
    }
}

/// The cumulative imbalance statistic of Eq. 2 over per-layer device loads:
/// `Σ_layers (max − mean) / mean`. Layers with zero mean contribute nothing.
pub fn cumulative_imbalance<'a>(per_layer_loads: impl IntoIterator<Item = &'a [f64]>) -> f64 {
    let mut total = 0.0;
    for loads in per_layer_loads {
        if loads.is_empty() {
            continue;
        }
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        if mean > 0.0 {
            let max = loads.iter().copied().fold(0.0, f64::max);
            total += (max - mean) / mean;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_zero_fires_every_iteration() {
        let mut t = Trigger::new(1.0, 0);
        assert!(t.should_balance(0, 2.0));
        assert!(t.should_balance(0, 2.0));
        assert!(t.should_balance(1, 2.0));
    }

    /// Satellite contract: `beta == 0` means *cooldown disabled* — above
    /// alpha it fires on every evaluation, even many at the same iteration,
    /// and the recorded migration history never suppresses a fire.
    #[test]
    fn beta_zero_disables_cooldown_entirely() {
        let mut t = Trigger::new(1.0, 0);
        for i in [0, 0, 0, 1, 1, 5, 5, 6] {
            assert!(t.should_balance(i, 1.5), "iteration {i}");
            assert_eq!(t.last_migration(), Some(i));
        }
        // Dropping below alpha is still the only way to hold fire.
        assert!(!t.should_balance(7, 1.0));
    }

    /// The cooldown boundary for `beta > 0`: a refire at exactly
    /// `last + beta` is allowed (Δt ≥ β), one iteration earlier is not,
    /// and the *first* fire is never delayed.
    #[test]
    fn beta_cooldown_boundary_is_inclusive() {
        let mut t = Trigger::new(1.0, 5);
        assert!(t.should_balance(0, 2.0), "first fire is undelayed");
        assert!(!t.should_balance(4, 2.0), "within cooldown");
        assert_eq!(t.last_migration(), Some(0), "blocked fire must not restamp");
        assert!(t.should_balance(5, 2.0), "boundary Δt == β fires");
        assert!(!t.should_balance(9, 2.0));
        assert!(t.should_balance(10, 2.0));
    }

    #[test]
    fn below_alpha_never_fires() {
        let mut t = Trigger::new(5.0, 0);
        for i in 0..10 {
            assert!(!t.should_balance(i, 4.9));
        }
        assert_eq!(t.last_migration(), None);
    }

    #[test]
    fn imbalance_statistic() {
        // One layer: max 4, mean 2 → (4-2)/2 = 1.
        let a: &[f64] = &[4.0, 2.0, 1.0, 1.0];
        let x = cumulative_imbalance([a]);
        assert!((x - 1.0).abs() < 1e-12);
        // Balanced layer contributes zero.
        let b: &[f64] = &[2.0, 2.0];
        let y = cumulative_imbalance([a, b]);
        assert!((y - 1.0).abs() < 1e-12);
        // Empty / zero layers are ignored.
        let z: &[f64] = &[0.0, 0.0];
        assert_eq!(cumulative_imbalance([z]), 0.0);
    }
}
