//! The EPLB-style greedy balancer (the paper's invasive baseline).

use wsc_topology::DeviceId;

use super::{device_heats, stale_replicas, BalanceAction, BalanceContext, Balancer};

/// Greedy balancing as done by EPLB and FasterMoE-style systems: repeatedly
/// replicate the globally hottest per-replica expert onto the globally
/// coldest device with a free slot — **ignoring topology**, so replicas may
/// land many hops away and migration traffic is expensive (the deficiency
/// §V-C motivates the topology-aware variant with).
///
/// # Example
///
/// ```
/// use moentwine_core::balancer::{Balancer, BalanceContext, GreedyBalancer};
/// use moentwine_core::placement::ExpertPlacement;
/// use wsc_topology::{Mesh, PlatformParams, RouteTable};
///
/// let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
/// let table = RouteTable::build(&topo);
/// let placement = ExpertPlacement::balanced(4, 4, 1);
/// let loads = vec![100.0, 1.0, 1.0, 1.0];
/// let mut balancer = GreedyBalancer::new(4);
/// let actions = balancer.plan_layer(&BalanceContext {
///     layer: 0,
///     expert_loads: &loads,
///     placement: &placement,
///     table: &table,
/// });
/// assert!(!actions.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct GreedyBalancer {
    max_actions_per_layer: usize,
    release_threshold: f64,
}

impl GreedyBalancer {
    /// Creates a greedy balancer emitting at most `max_actions_per_layer`
    /// replications per planning call.
    pub fn new(max_actions_per_layer: usize) -> Self {
        GreedyBalancer {
            max_actions_per_layer,
            release_threshold: 0.05,
        }
    }

    /// Sets the stale-replica release threshold (fraction of mean device
    /// load below which a shadow replica is dropped).
    pub fn with_release_threshold(mut self, threshold: f64) -> Self {
        self.release_threshold = threshold;
        self
    }
}

impl Balancer for GreedyBalancer {
    fn plan_layer(&mut self, ctx: &BalanceContext<'_>) -> Vec<BalanceAction> {
        let mut actions = stale_replicas(
            ctx.placement,
            ctx.expert_loads,
            ctx.layer,
            self.release_threshold,
        );
        let mut placement = ctx.placement.clone();
        for a in &actions {
            if let BalanceAction::Release { expert, device, .. } = *a {
                placement.remove_replica(expert, device);
            }
        }

        for _ in 0..self.max_actions_per_layer {
            let heats = device_heats(&placement, ctx.expert_loads);
            // Globally hottest per-replica expert.
            let Some((expert, share)) = (0..placement.num_experts())
                .map(|e| (e, ctx.expert_loads[e] / placement.num_replicas(e) as f64))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            else {
                break;
            };
            // Globally coldest device that can host it.
            let Some(target) = (0..placement.num_devices())
                .map(|d| DeviceId(d as u32))
                .filter(|&d| placement.has_free_slot(d) && !placement.hosts(d, expert))
                .min_by(|&a, &b| heats[a.index()].partial_cmp(&heats[b.index()]).unwrap())
            else {
                break;
            };
            // Only replicate if it actually reduces the peak.
            let new_share = ctx.expert_loads[expert] / (placement.num_replicas(expert) + 1) as f64;
            if heats[target.index()] + new_share >= heats.iter().copied().fold(0.0, f64::max) {
                break;
            }
            let source = placement.primary_device(expert);
            let _ = share;
            placement
                .add_replica(expert, target)
                .expect("target validated");
            actions.push(BalanceAction::Replicate {
                layer: ctx.layer,
                expert,
                source,
                target,
            });
        }
        actions
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::ExpertPlacement;
    use wsc_topology::{Mesh, PlatformParams, RouteTable};

    fn ctx_fixture() -> (wsc_topology::Topology, RouteTable) {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        (topo, table)
    }

    #[test]
    fn replicates_hot_expert_to_cold_device() {
        let (_topo, table) = ctx_fixture();
        let placement = ExpertPlacement::balanced(4, 4, 1);
        let loads = vec![90.0, 10.0, 10.0, 2.0];
        let mut b = GreedyBalancer::new(1);
        let actions = b.plan_layer(&BalanceContext {
            layer: 3,
            expert_loads: &loads,
            placement: &placement,
            table: &table,
        });
        assert_eq!(actions.len(), 1);
        match actions[0] {
            BalanceAction::Replicate {
                layer,
                expert,
                target,
                ..
            } => {
                assert_eq!(layer, 3);
                assert_eq!(expert, 0);
                assert_eq!(target, DeviceId(3)); // coldest device
            }
            other => panic!("expected replicate, got {other:?}"),
        }
    }

    #[test]
    fn balanced_loads_produce_no_actions() {
        let (_topo, table) = ctx_fixture();
        let placement = ExpertPlacement::balanced(4, 4, 1);
        let loads = vec![10.0; 4];
        let mut b = GreedyBalancer::new(4);
        let actions = b.plan_layer(&BalanceContext {
            layer: 0,
            expert_loads: &loads,
            placement: &placement,
            table: &table,
        });
        assert!(actions.is_empty(), "{actions:?}");
    }

    #[test]
    fn respects_action_cap() {
        let (_topo, table) = ctx_fixture();
        let placement = ExpertPlacement::balanced(8, 4, 2);
        let loads = vec![100.0, 90.0, 80.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let mut b = GreedyBalancer::new(2);
        let actions = b.plan_layer(&BalanceContext {
            layer: 0,
            expert_loads: &loads,
            placement: &placement,
            table: &table,
        });
        let replications = actions
            .iter()
            .filter(|a| matches!(a, BalanceAction::Replicate { .. }))
            .count();
        assert!(replications <= 2);
    }
}
