//! Streaming serving summaries: P² quantile sketches and O(1)-memory
//! accumulators behind [`SummaryMode::Streaming`].
//!
//! The exact [`ServingSummary`](super::ServingSummary) path retains every
//! completed [`RequestRecord`] and sorts at summary time — O(requests)
//! memory and O(n log n) at the barrier, which caps fleet simulations far
//! below the million-request traffic the ROADMAP targets. This module
//! maintains the same summary fields incrementally:
//!
//! * **Percentiles** (TTFT / TPOT / e2e / queueing) through the P² marker
//!   algorithm (Jain & Chlamtac, CACM 1985): five markers per tracked
//!   quantile, updated in O(1) per observation, warm-started from an exact
//!   prefix buffer of [`P2Quantile::WARMUP`] samples so small runs report
//!   *exactly* the nearest-rank value the exact path computes.
//! * **Goodput, occupancy, and counters** through plain running sums.
//!
//! The error contract (pinned by the differential proptest in
//! `tests/fleet_scheduler.rs` and documented in DESIGN.md §10): for ≤
//! [`P2Quantile::WARMUP`] samples the streaming estimate equals the exact
//! nearest-rank percentile bit-for-bit; beyond that, each estimate lies
//! within the exact distribution's neighboring-rank window (p50 within the
//! exact [p35, p65], p95 within [p85, p100], p99 within [p90, p100]) —
//! rank-windowed bounds rather than value-relative ones, since no O(1)
//! sketch can bound value error on adversarial bimodal data.

use serde::{Deserialize, Serialize};

use moe_workload::{ClassSpec, RequestRecord};

use super::metrics::{percentile, ClassServingSummary, ServingSummary};

/// How request-level serving summaries are maintained.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum SummaryMode {
    /// Retain every completed [`RequestRecord`] and compute exact
    /// nearest-rank percentiles at summary time (the golden oracle).
    #[default]
    Exact,
    /// Fold completions into [`P2Quantile`] sketches as they finish:
    /// O(1) memory per metric, no retained records, percentile estimates
    /// within the documented rank windows of the exact path.
    Streaming,
}

impl SummaryMode {
    /// Stable lowercase name (`"exact"` / `"streaming"`), matching the
    /// `FromStr` spelling and the scenario-spec JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            SummaryMode::Exact => "exact",
            SummaryMode::Streaming => "streaming",
        }
    }
}

impl std::fmt::Display for SummaryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SummaryMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(SummaryMode::Exact),
            "streaming" => Ok(SummaryMode::Streaming),
            other => Err(format!(
                "unknown summary mode {other:?} (expected \"exact\" or \"streaming\")"
            )),
        }
    }
}

/// A P² (piecewise-parabolic) single-quantile estimator with an exact
/// warm-up prefix.
///
/// The first [`P2Quantile::WARMUP`] observations are buffered and answered
/// by exact nearest-rank; past that the buffer seeds the five P² markers
/// (min, q/2, q, (1+q)/2, max) and is dropped, after which every
/// observation costs O(1) time and the estimator occupies O(1) memory.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    q: f64,
    /// Exact prefix buffer; empty once the markers have been seeded.
    warmup: Vec<f64>,
    /// Marker heights (estimated quantile values), ascending.
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks, stored as integers in f64).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// Observations answered exactly (and buffered) before the sketch
    /// switches to O(1) marker updates.
    pub const WARMUP: usize = 64;

    /// A sketch tracking the `q`-quantile, `q` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        P2Quantile {
            q,
            warmup: Vec::new(),
            heights: [0.0; 5],
            positions: [0.0; 5],
            desired: [0.0; 5],
            count: 0,
        }
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one observation into the sketch.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "latencies are finite");
        self.count += 1;
        if self.count <= Self::WARMUP as u64 {
            self.warmup.push(x);
            return;
        }
        // Seed lazily on the first post-warm-up sample, so every estimate
        // over ≤ WARMUP observations is answered from the exact buffer.
        if !self.warmup.is_empty() {
            self.seed_markers();
        }
        self.p2_update(x);
    }

    /// Seeds the five markers from the sorted warm-up buffer and drops it.
    fn seed_markers(&mut self) {
        let mut sorted = std::mem::take(&mut self.warmup);
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let n = sorted.len();
        for (i, d) in self.marker_quantiles().iter().enumerate() {
            // 1-based rank of this marker in an n-sample set.
            let desired = 1.0 + d * (n - 1) as f64;
            self.desired[i] = desired;
            self.positions[i] = desired.round().clamp(1.0, n as f64);
        }
        // Marker ranks must be strictly increasing for the P² adjustment
        // step (zero-width cells divide by zero). Extreme quantiles round
        // neighbors onto the same rank: push ties up, pin the max marker to
        // rank n, then push back down below it (WARMUP ≥ 5 leaves room).
        for i in 1..5 {
            if self.positions[i] <= self.positions[i - 1] {
                self.positions[i] = self.positions[i - 1] + 1.0;
            }
        }
        self.positions[4] = n as f64;
        for i in (0..4).rev() {
            if self.positions[i] >= self.positions[i + 1] {
                self.positions[i] = self.positions[i + 1] - 1.0;
            }
        }
        for i in 0..5 {
            self.heights[i] = sorted[self.positions[i] as usize - 1];
        }
    }

    /// The five tracked cumulative-probability points.
    fn marker_quantiles(&self) -> [f64; 5] {
        [0.0, self.q / 2.0, self.q, (1.0 + self.q) / 2.0, 1.0]
    }

    /// One classic P² update (find cell, shift positions, adjust interior
    /// markers parabolically or linearly).
    fn p2_update(&mut self, x: f64) {
        let h = &mut self.heights;
        // 1. Locate the cell and extend the extremes.
        let k = if x < h[0] {
            h[0] = x;
            0
        } else if x >= h[4] {
            h[4] = h[4].max(x);
            3
        } else {
            // h[k] <= x < h[k+1] for some k in 0..=3.
            (0..4)
                .rfind(|&i| h[i] <= x)
                .expect("x >= h[0] in this branch")
        };
        // 2. Shift actual positions above the cell; advance desired ones.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for (i, d) in self.marker_quantiles().iter().enumerate() {
            self.desired[i] += d;
        }
        // 3. Adjust the three interior markers toward their desired ranks.
        for i in 1..4 {
            let delta = self.desired[i] - self.positions[i];
            let room_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let room_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (delta >= 1.0 && room_up) || (delta <= -1.0 && room_down) {
                let s = delta.signum();
                let parabolic = self.parabolic(i, s);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, s)
                    };
                self.positions[i] += s;
            }
        }
    }

    /// Piecewise-parabolic height prediction for marker `i` moved by `s`.
    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabola would leave the bracket.
    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate: exact nearest-rank during warm-up,
    /// the central P² marker afterwards. 0.0 before any observation
    /// (mirroring [`percentile`] on an empty slice).
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if !self.warmup.is_empty() {
            let mut sorted = self.warmup.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            return percentile(&sorted, self.q * 100.0);
        }
        self.heights[2]
    }
}

/// Incremental [`ServingSummary`] accumulator: the streaming counterpart
/// of [`ServingSummary::from_records`], fed one completion (and one
/// iteration-occupancy sample) at a time in O(1) memory.
///
/// Sketches do not merge, so a fleet keeps its *own* aggregate
/// `StreamingSummary` and feeds it every replica's completions as they
/// drain (see `Fleet`); per-replica instances live inside each engine.
#[derive(Clone, Debug)]
pub struct StreamingSummary {
    completed: u64,
    token_sum: f64,
    ttft_p50: P2Quantile,
    ttft_p95: P2Quantile,
    ttft_p99: P2Quantile,
    tpot_p50: P2Quantile,
    tpot_p95: P2Quantile,
    tpot_p99: P2Quantile,
    e2e_p50: P2Quantile,
    e2e_p99: P2Quantile,
    queueing_p50: P2Quantile,
    queueing_p99: P2Quantile,
    iterations: u64,
    queue_depth_sum: f64,
    active_sum: f64,
    max_queue_depth: u64,
    /// Per-tenant-class sketch sets, one per configured class in configured
    /// order (empty for workload-free runs).
    classes: Vec<ClassSketch>,
}

/// One tenant class's streaming state: a TTFT/TPOT sketch ladder plus the
/// exact attainment counters (attainment is a counting statistic, so both
/// summary modes report it identically).
#[derive(Clone, Debug)]
struct ClassSketch {
    spec: ClassSpec,
    completed: u64,
    ttft_within: u64,
    tpot_defined: u64,
    tpot_within: u64,
    ttft_p50: P2Quantile,
    ttft_p95: P2Quantile,
    ttft_p99: P2Quantile,
    tpot_p50: P2Quantile,
    tpot_p95: P2Quantile,
    tpot_p99: P2Quantile,
}

impl ClassSketch {
    fn new(spec: ClassSpec) -> Self {
        ClassSketch {
            spec,
            completed: 0,
            ttft_within: 0,
            tpot_defined: 0,
            tpot_within: 0,
            ttft_p50: P2Quantile::new(0.50),
            ttft_p95: P2Quantile::new(0.95),
            ttft_p99: P2Quantile::new(0.99),
            tpot_p50: P2Quantile::new(0.50),
            tpot_p95: P2Quantile::new(0.95),
            tpot_p99: P2Quantile::new(0.99),
        }
    }

    fn observe(&mut self, record: &RequestRecord) {
        self.completed += 1;
        let ttft = record.ttft();
        if ttft <= self.spec.ttft_slo {
            self.ttft_within += 1;
        }
        self.ttft_p50.observe(ttft);
        self.ttft_p95.observe(ttft);
        self.ttft_p99.observe(ttft);
        if let Some(tpot) = record.tpot() {
            self.tpot_defined += 1;
            if tpot <= self.spec.tpot_slo {
                self.tpot_within += 1;
            }
            self.tpot_p50.observe(tpot);
            self.tpot_p95.observe(tpot);
            self.tpot_p99.observe(tpot);
        }
    }

    fn summary(&self, rejected: u64, shed: u64) -> ClassServingSummary {
        let mut c = ClassServingSummary {
            class: self.spec.class,
            completed: self.completed as usize,
            rejected,
            shed,
            ttft_slo: self.spec.ttft_slo,
            tpot_slo: self.spec.tpot_slo,
            ..Default::default()
        };
        if self.completed > 0 {
            c.ttft_attainment = self.ttft_within as f64 / self.completed as f64;
            c.ttft_p50 = self.ttft_p50.estimate();
            c.ttft_p95 = self.ttft_p95.estimate().max(c.ttft_p50);
            c.ttft_p99 = self.ttft_p99.estimate().max(c.ttft_p95);
        }
        if self.tpot_defined > 0 {
            c.tpot_attainment = self.tpot_within as f64 / self.tpot_defined as f64;
            c.tpot_p50 = self.tpot_p50.estimate();
            c.tpot_p95 = self.tpot_p95.estimate().max(c.tpot_p50);
            c.tpot_p99 = self.tpot_p99.estimate().max(c.tpot_p95);
        }
        c
    }
}

impl StreamingSummary {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingSummary {
            completed: 0,
            token_sum: 0.0,
            ttft_p50: P2Quantile::new(0.50),
            ttft_p95: P2Quantile::new(0.95),
            ttft_p99: P2Quantile::new(0.99),
            tpot_p50: P2Quantile::new(0.50),
            tpot_p95: P2Quantile::new(0.95),
            tpot_p99: P2Quantile::new(0.99),
            e2e_p50: P2Quantile::new(0.50),
            e2e_p99: P2Quantile::new(0.99),
            queueing_p50: P2Quantile::new(0.50),
            queueing_p99: P2Quantile::new(0.99),
            iterations: 0,
            queue_depth_sum: 0.0,
            active_sum: 0.0,
            max_queue_depth: 0,
            classes: Vec::new(),
        }
    }

    /// An empty accumulator that additionally tracks one sketch set (and
    /// the exact attainment counters) per configured tenant class.
    pub fn with_classes(classes: &[ClassSpec]) -> Self {
        let mut s = Self::new();
        s.classes = classes.iter().map(|c| ClassSketch::new(*c)).collect();
        s
    }

    /// Folds one completed request into every latency sketch and the
    /// goodput counters (the streaming analogue of pushing a record onto
    /// the exact path's retained vector).
    pub fn observe_record(&mut self, record: &RequestRecord) {
        self.completed += 1;
        self.token_sum += record.input_len as f64 + record.output_len as f64;
        let ttft = record.ttft();
        self.ttft_p50.observe(ttft);
        self.ttft_p95.observe(ttft);
        self.ttft_p99.observe(ttft);
        if let Some(tpot) = record.tpot() {
            self.tpot_p50.observe(tpot);
            self.tpot_p95.observe(tpot);
            self.tpot_p99.observe(tpot);
        }
        let e2e = record.e2e_latency();
        self.e2e_p50.observe(e2e);
        self.e2e_p99.observe(e2e);
        let queueing = record.queueing_delay();
        self.queueing_p50.observe(queueing);
        self.queueing_p99.observe(queueing);
        if let Some(class) = self
            .classes
            .iter_mut()
            .find(|c| c.spec.class == record.class)
        {
            class.observe(record);
        }
    }

    /// Folds one iteration's occupancy sample (the streaming analogue of
    /// the exact path's scan over `history`).
    pub fn observe_iteration(&mut self, queue_depth: u64, active_requests: u64) {
        self.iterations += 1;
        self.queue_depth_sum += queue_depth as f64;
        self.active_sum += active_requests as f64;
        self.max_queue_depth = self.max_queue_depth.max(queue_depth);
    }

    /// Requests folded in so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Materializes the summary. Queue counters and the simulated span are
    /// owned by the caller (engine or fleet), exactly as in
    /// [`ServingSummary::from_records`].
    pub fn summary(
        &self,
        admission_rejects: u64,
        peak_kv_tokens: u64,
        sim_seconds: f64,
    ) -> ServingSummary {
        self.summary_with_workload(
            admission_rejects,
            peak_kv_tokens,
            sim_seconds,
            [0, 0],
            [0, 0],
        )
    }

    /// Like [`StreamingSummary::summary`], additionally stamping the
    /// per-class shed/reject counters (indexed by
    /// [`RequestClass::index`](moe_workload::RequestClass::index), owned by
    /// the caller's queues) into the per-class sections. The streaming
    /// counterpart of
    /// [`ServingSummary::from_records_with_workload`].
    pub fn summary_with_workload(
        &self,
        admission_rejects: u64,
        peak_kv_tokens: u64,
        sim_seconds: f64,
        shed_by_class: [u64; 2],
        rejected_by_class: [u64; 2],
    ) -> ServingSummary {
        let mut s = ServingSummary {
            completed: self.completed as usize,
            admission_rejects,
            sim_seconds,
            peak_kv_tokens,
            max_queue_depth: self.max_queue_depth,
            ..Default::default()
        };
        if self.iterations > 0 {
            let n = self.iterations as f64;
            s.mean_queue_depth = self.queue_depth_sum / n;
            s.mean_active_requests = self.active_sum / n;
        }
        s.shed = shed_by_class.iter().sum();
        for class in &self.classes {
            let index = class.spec.class.index();
            s.classes
                .push(class.summary(rejected_by_class[index], shed_by_class[index]));
        }
        if self.completed == 0 {
            return s;
        }
        // Independent sketches over the same stream can cross by their
        // individual estimation error; ladders are clamped monotone at
        // read-out (a no-op whenever the estimates are already ordered,
        // in particular everywhere the exact-within-warm-up contract
        // applies).
        s.ttft_p50 = self.ttft_p50.estimate();
        s.ttft_p95 = self.ttft_p95.estimate().max(s.ttft_p50);
        s.ttft_p99 = self.ttft_p99.estimate().max(s.ttft_p95);
        s.tpot_p50 = self.tpot_p50.estimate();
        s.tpot_p95 = self.tpot_p95.estimate().max(s.tpot_p50);
        s.tpot_p99 = self.tpot_p99.estimate().max(s.tpot_p95);
        s.e2e_p50 = self.e2e_p50.estimate();
        s.e2e_p99 = self.e2e_p99.estimate().max(s.e2e_p50);
        s.queueing_p50 = self.queueing_p50.estimate();
        s.queueing_p99 = self.queueing_p99.estimate().max(s.queueing_p50);
        if sim_seconds > 0.0 {
            s.goodput_rps = self.completed as f64 / sim_seconds;
            s.goodput_tokens_per_s = self.token_sum / sim_seconds;
        }
        s
    }
}

impl Default for StreamingSummary {
    fn default() -> Self {
        StreamingSummary::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-uniform stream in (0, 1) (SplitMix64 bits).
    fn stream(seed: u64, n: usize) -> Vec<f64> {
        let mut z = seed;
        (0..n)
            .map(|_| {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^= x >> 31;
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn exact(samples: &[f64], p: f64) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        percentile(&sorted, p)
    }

    #[test]
    fn warmup_prefix_is_exactly_nearest_rank() {
        let samples = stream(7, P2Quantile::WARMUP);
        for p in [0.5, 0.95, 0.99] {
            let mut sketch = P2Quantile::new(p);
            for (i, &x) in samples.iter().enumerate() {
                sketch.observe(x);
                assert_eq!(
                    sketch.estimate(),
                    exact(&samples[..=i], p * 100.0),
                    "exact prefix broke at n={} q={p}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn empty_sketch_reports_zero() {
        assert_eq!(P2Quantile::new(0.5).estimate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn tracks_uniform_quantiles_closely() {
        for seed in [3, 17, 91] {
            let samples = stream(seed, 20_000);
            for (q, tol) in [(0.5, 0.02), (0.95, 0.01), (0.99, 0.01)] {
                let mut sketch = P2Quantile::new(q);
                for &x in &samples {
                    sketch.observe(x);
                }
                let err = (sketch.estimate() - q).abs();
                assert!(
                    err < tol,
                    "seed {seed} q={q}: estimate {} off by {err}",
                    sketch.estimate()
                );
            }
        }
    }

    #[test]
    fn estimate_stays_within_observed_range() {
        // Adversarial bimodal stream: the estimate must still be bracketed
        // by the observed min/max (the P² markers are clamped).
        let samples: Vec<f64> = (0..5000)
            .map(|i| if i % 2 == 0 { 1.0e-4 } else { 9.0 })
            .collect();
        let mut sketch = P2Quantile::new(0.5);
        for &x in &samples {
            sketch.observe(x);
        }
        let e = sketch.estimate();
        assert!((1.0e-4..=9.0).contains(&e), "estimate {e} escaped range");
    }

    #[test]
    fn summary_mode_names_round_trip() {
        for mode in [SummaryMode::Exact, SummaryMode::Streaming] {
            assert_eq!(mode.name().parse::<SummaryMode>().unwrap(), mode);
        }
        assert!("exactly".parse::<SummaryMode>().is_err());
        assert_eq!(SummaryMode::default(), SummaryMode::Exact);
    }

    fn test_record(id: u64, arrival: f64, ttft: f64, e2e: f64) -> RequestRecord {
        use moe_workload::{RequestClass, RequestId, Scenario};
        RequestRecord {
            id: RequestId(id),
            scenario: Scenario::Chat,
            class: if id.is_multiple_of(3) {
                RequestClass::Batch
            } else {
                RequestClass::Interactive
            },
            input_len: 10,
            output_len: 4,
            arrival,
            admitted: arrival + 0.5,
            first_token: arrival + ttft,
            finish: arrival + e2e,
            prefill_scheduled: 10,
            decode_scheduled: 4,
        }
    }

    #[test]
    fn streaming_summary_matches_exact_on_small_runs() {
        let records: Vec<RequestRecord> = (0..32)
            .map(|i| test_record(i, i as f64, 1.0 + i as f64, 3.0 + 2.0 * i as f64))
            .collect();
        let mut streaming = StreamingSummary::new();
        for r in &records {
            streaming.observe_record(r);
        }
        streaming.observe_iteration(2, 3);
        streaming.observe_iteration(4, 1);
        let s = streaming.summary(7, 123, 10.0);

        let history = vec![
            crate::engine::IterationMetrics {
                sim_time: 5.0,
                queue_depth: 2,
                active_requests: 3,
                ..Default::default()
            },
            crate::engine::IterationMetrics {
                sim_time: 10.0,
                queue_depth: 4,
                active_requests: 1,
                ..Default::default()
            },
        ];
        let exact = ServingSummary::from_records(&records, &history, 7, 123);
        // ≤ WARMUP samples: every percentile is bit-identical to exact.
        assert_eq!(s, exact);
    }

    /// The per-class sections agree bit-for-bit between the two summary
    /// modes on small runs: percentiles through the exact warm-up prefix,
    /// attainment through exact counters in both paths.
    #[test]
    fn streaming_class_sections_match_exact_within_warmup() {
        let classes = vec![
            ClassSpec::interactive().with_slo(10.0, 0.8),
            ClassSpec::batch().with_slo(30.0, 2.0),
        ];
        let records: Vec<RequestRecord> = (0..40)
            .map(|i| test_record(i, i as f64, 1.0 + i as f64, 3.0 + 2.0 * i as f64))
            .collect();
        let mut streaming = StreamingSummary::with_classes(&classes);
        for r in &records {
            streaming.observe_record(r);
        }
        let history = vec![crate::engine::IterationMetrics {
            sim_time: 50.0,
            ..Default::default()
        }];
        streaming.observe_iteration(0, 0);
        let shed = [2, 5];
        let rejects = [1, 0];
        let s = streaming.summary_with_workload(1, 0, 50.0, shed, rejects);
        let exact = ServingSummary::from_records_with_workload(
            &records, &history, 1, 0, shed, rejects, &classes,
        );
        assert_eq!(s, exact);
        assert_eq!(s.shed, 7);
        assert_eq!(s.classes.len(), 2);
        assert!(s.classes[0].ttft_attainment > 0.0);
    }
}
