//! Per-iteration metrics and run summaries.

use serde::{Deserialize, Serialize};

/// Timing and load measurements for one inference iteration (sums over all
/// sparse layers).
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct IterationMetrics {
    /// Iteration index.
    pub iteration: u64,
    /// Tokens entering the MoE layers this iteration (per TP group).
    pub tokens_per_group: u32,
    /// Attention compute time, seconds.
    pub attention_compute: f64,
    /// Attention all-reduce time, seconds.
    pub all_reduce: f64,
    /// MoE dispatch all-to-all time, seconds.
    pub dispatch: f64,
    /// MoE combine all-to-all time, seconds.
    pub combine: f64,
    /// MoE expert compute time (max over devices, summed over layers),
    /// seconds.
    pub moe_compute: f64,
    /// Stall caused by invasive expert migration, seconds.
    pub migration_stall: f64,
    /// End-to-end iteration time after comm/compute overlap, seconds.
    pub iteration_time: f64,
    /// Average over layers of max/mean device token load.
    pub load_ratio: f64,
    /// Average over layers of the maximum per-device token load.
    pub max_device_tokens: f64,
    /// Average over layers of the mean per-device token load.
    pub avg_device_tokens: f64,
    /// Replications issued this iteration.
    pub migrations_started: u64,
    /// Replications that became active this iteration.
    pub migrations_completed: u64,
}

impl IterationMetrics {
    /// Total all-to-all time (dispatch + combine).
    pub fn all_to_all(&self) -> f64 {
        self.dispatch + self.combine
    }

    /// Whether this iteration was interrupted by invasive migration.
    pub fn interrupted(&self) -> bool {
        self.migration_stall > 0.0
    }
}

/// Aggregate statistics over a run (optionally excluding a warm-up prefix).
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct RunSummary {
    /// Iterations aggregated.
    pub iterations: usize,
    /// Mean iteration time, seconds.
    pub mean_iteration_time: f64,
    /// Mean attention compute time per iteration, seconds.
    pub mean_attention_compute: f64,
    /// Mean all-reduce time per iteration, seconds.
    pub mean_all_reduce: f64,
    /// Mean all-to-all (dispatch + combine) time per iteration, seconds.
    pub mean_all_to_all: f64,
    /// Mean MoE compute time per iteration, seconds.
    pub mean_moe_compute: f64,
    /// Mean invasive-migration stall per iteration, seconds.
    pub mean_migration_stall: f64,
    /// Mean max/mean device-load ratio.
    pub mean_load_ratio: f64,
    /// Total replications issued.
    pub migrations_started: u64,
    /// Total replications activated.
    pub migrations_completed: u64,
    /// Fraction of iterations interrupted by invasive migration.
    pub interruption_rate: f64,
    /// Mean tokens per group per iteration.
    pub mean_tokens_per_group: f64,
    /// Per-device MoE throughput: routed tokens processed per second per
    /// device, counting only MoE phase time (compute ∥ all-to-all).
    pub tokens_per_second_per_device: f64,
}

impl RunSummary {
    /// Aggregates `history[skip..]`.
    pub fn from_history(history: &[IterationMetrics], skip: usize, num_devices: usize) -> Self {
        let slice = &history[skip.min(history.len())..];
        let n = slice.len();
        if n == 0 {
            return RunSummary::default();
        }
        let nf = n as f64;
        let mut s = RunSummary {
            iterations: n,
            ..Default::default()
        };
        let mut total_selections = 0.0;
        let mut total_moe_time = 0.0;
        for m in slice {
            s.mean_iteration_time += m.iteration_time / nf;
            s.mean_attention_compute += m.attention_compute / nf;
            s.mean_all_reduce += m.all_reduce / nf;
            s.mean_all_to_all += m.all_to_all() / nf;
            s.mean_moe_compute += m.moe_compute / nf;
            s.mean_migration_stall += m.migration_stall / nf;
            s.mean_load_ratio += m.load_ratio / nf;
            s.migrations_started += m.migrations_started;
            s.migrations_completed += m.migrations_completed;
            if m.interrupted() {
                s.interruption_rate += 1.0 / nf;
            }
            s.mean_tokens_per_group += m.tokens_per_group as f64 / nf;
            total_selections += m.avg_device_tokens * num_devices as f64;
            total_moe_time +=
                m.moe_compute.max(m.all_to_all()) + m.migration_stall;
        }
        if total_moe_time > 0.0 {
            s.tokens_per_second_per_device =
                total_selections / total_moe_time / num_devices as f64;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(t: f64, stall: f64) -> IterationMetrics {
        IterationMetrics {
            iteration_time: t,
            migration_stall: stall,
            dispatch: 1.0,
            combine: 2.0,
            ..Default::default()
        }
    }

    #[test]
    fn all_to_all_sums_halves() {
        assert_eq!(metric(1.0, 0.0).all_to_all(), 3.0);
    }

    #[test]
    fn summary_means_and_interruption_rate() {
        let history = vec![metric(1.0, 0.0), metric(3.0, 0.5)];
        let s = RunSummary::from_history(&history, 0, 4);
        assert!((s.mean_iteration_time - 2.0).abs() < 1e-12);
        assert!((s.interruption_rate - 0.5).abs() < 1e-12);
        assert_eq!(s.iterations, 2);
    }

    #[test]
    fn warmup_skip() {
        let history = vec![metric(100.0, 0.0), metric(1.0, 0.0)];
        let s = RunSummary::from_history(&history, 1, 4);
        assert_eq!(s.iterations, 1);
        assert!((s.mean_iteration_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_history_is_safe() {
        let s = RunSummary::from_history(&[], 0, 4);
        assert_eq!(s.iterations, 0);
        assert_eq!(s.mean_iteration_time, 0.0);
    }
}
