//! Per-iteration metrics, run summaries, and request-level serving
//! summaries (SLO percentiles).

use moe_workload::{ClassSpec, RequestClass, RequestRecord};
use serde::{Deserialize, Serialize};

/// Timing and load measurements for one inference iteration (sums over all
/// sparse layers).
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct IterationMetrics {
    /// Iteration index.
    pub iteration: u64,
    /// Tokens entering the MoE layers this iteration (per TP group).
    pub tokens_per_group: u32,
    /// Attention compute time, seconds.
    pub attention_compute: f64,
    /// Attention all-reduce time, seconds.
    pub all_reduce: f64,
    /// MoE dispatch all-to-all time, seconds.
    pub dispatch: f64,
    /// MoE combine all-to-all time, seconds.
    pub combine: f64,
    /// MoE expert compute time (max over devices, summed over layers),
    /// seconds.
    pub moe_compute: f64,
    /// Stall caused by invasive expert migration, seconds.
    pub migration_stall: f64,
    /// End-to-end iteration time after comm/compute overlap, seconds.
    pub iteration_time: f64,
    /// Average over layers of max/mean device token load.
    pub load_ratio: f64,
    /// Average over layers of the maximum per-device token load.
    pub max_device_tokens: f64,
    /// Average over layers of the mean per-device token load.
    pub avg_device_tokens: f64,
    /// Replications issued this iteration.
    pub migrations_started: u64,
    /// Replications that became active this iteration.
    pub migrations_completed: u64,
    /// Simulated wall-clock time at the end of this iteration, seconds
    /// (cumulative priced iteration durations).
    pub sim_time: f64,
    /// Requests arrived but not yet admitted when the iteration was
    /// scheduled (0 in fixed-batch mode).
    pub queue_depth: u64,
    /// Requests resident (admitted, not complete) when the iteration was
    /// scheduled (0 in fixed-batch mode).
    pub active_requests: u64,
    /// KV tokens reserved against the admission budget (0 in fixed-batch
    /// mode).
    pub kv_tokens_in_use: u64,
    /// Requests that completed at the end of this iteration.
    pub requests_completed: u64,
}

impl IterationMetrics {
    /// Total all-to-all time (dispatch + combine).
    pub fn all_to_all(&self) -> f64 {
        self.dispatch + self.combine
    }

    /// Whether this iteration was interrupted by invasive migration.
    pub fn interrupted(&self) -> bool {
        self.migration_stall > 0.0
    }
}

/// Aggregate statistics over a run (optionally excluding a warm-up prefix).
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct RunSummary {
    /// Iterations aggregated.
    pub iterations: usize,
    /// Mean iteration time, seconds.
    pub mean_iteration_time: f64,
    /// Mean attention compute time per iteration, seconds.
    pub mean_attention_compute: f64,
    /// Mean all-reduce time per iteration, seconds.
    pub mean_all_reduce: f64,
    /// Mean all-to-all (dispatch + combine) time per iteration, seconds.
    pub mean_all_to_all: f64,
    /// Mean MoE compute time per iteration, seconds.
    pub mean_moe_compute: f64,
    /// Mean invasive-migration stall per iteration, seconds.
    pub mean_migration_stall: f64,
    /// Mean max/mean device-load ratio.
    pub mean_load_ratio: f64,
    /// Total replications issued.
    pub migrations_started: u64,
    /// Total replications activated.
    pub migrations_completed: u64,
    /// Fraction of iterations interrupted by invasive migration.
    pub interruption_rate: f64,
    /// Mean tokens per group per iteration.
    pub mean_tokens_per_group: f64,
    /// Per-device MoE throughput: routed tokens processed per second per
    /// device, counting only MoE phase time (compute ∥ all-to-all).
    pub tokens_per_second_per_device: f64,
}

impl RunSummary {
    /// Aggregates `history[skip..]`.
    pub fn from_history(history: &[IterationMetrics], skip: usize, num_devices: usize) -> Self {
        let slice = &history[skip.min(history.len())..];
        let n = slice.len();
        if n == 0 {
            return RunSummary::default();
        }
        let nf = n as f64;
        let mut s = RunSummary {
            iterations: n,
            ..Default::default()
        };
        let mut total_selections = 0.0;
        let mut total_moe_time = 0.0;
        for m in slice {
            s.mean_iteration_time += m.iteration_time / nf;
            s.mean_attention_compute += m.attention_compute / nf;
            s.mean_all_reduce += m.all_reduce / nf;
            s.mean_all_to_all += m.all_to_all() / nf;
            s.mean_moe_compute += m.moe_compute / nf;
            s.mean_migration_stall += m.migration_stall / nf;
            s.mean_load_ratio += m.load_ratio / nf;
            s.migrations_started += m.migrations_started;
            s.migrations_completed += m.migrations_completed;
            if m.interrupted() {
                s.interruption_rate += 1.0 / nf;
            }
            s.mean_tokens_per_group += m.tokens_per_group as f64 / nf;
            total_selections += m.avg_device_tokens * num_devices as f64;
            total_moe_time += m.moe_compute.max(m.all_to_all()) + m.migration_stall;
        }
        if total_moe_time > 0.0 {
            s.tokens_per_second_per_device = total_selections / total_moe_time / num_devices as f64;
        }
        s
    }
}

/// Nearest-rank percentile of an **ascending-sorted** slice: the smallest
/// element with at least `p`% of the samples at or below it.
///
/// # Empty input
///
/// Returns `0.0` for an empty slice — the documented "no samples" value
/// every summary field defaults to (a percentile of zero observations has
/// no order statistic to report, and serving latencies are strictly
/// positive, so `0.0` is unambiguous). Callers that must distinguish
/// "no samples" from a true zero should check `is_empty()` first.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`. Debug builds additionally assert
/// (with a message naming the contract) that the input is sorted.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if sorted.is_empty() {
        debug_assert!(
            sorted.is_empty(),
            "percentile of an empty slice is defined as 0.0 (no samples)"
        );
        return 0.0;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted ascending"
    );
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Sorts `samples` and reads the (p50, p95, p99) nearest-rank ladder in
/// one pass — the triple every serving metric reports. Percentiles a
/// metric does not surface (e.g. e2e p95) are simply unused by the caller.
fn sort_and_ladder(mut samples: Vec<f64>) -> (f64, f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    (
        percentile(&samples, 50.0),
        percentile(&samples, 95.0),
        percentile(&samples, 99.0),
    )
}

/// Request-level serving statistics over a run: SLO percentiles (TTFT,
/// TPOT, end-to-end latency, queueing delay), goodput, queue/KV occupancy,
/// and admission rejects. Produced by
/// [`InferenceEngine::serving_summary`](super::InferenceEngine::serving_summary)
/// alongside the per-iteration [`RunSummary`].
///
/// Latency percentiles are over **completed** requests only (nearest-rank,
/// see [`percentile`]); TPOT percentiles additionally exclude requests with
/// fewer than two decoded tokens, for which TPOT is undefined. Goodput
/// counts only completed requests: `goodput_rps` is completions per
/// simulated second, `goodput_tokens_per_s` their prompt+output tokens per
/// simulated second.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct ServingSummary {
    /// Requests completed within the run.
    pub completed: usize,
    /// Requests rejected at admission (footprint exceeds the KV budget).
    pub admission_rejects: u64,
    /// Simulated wall-clock time covered, seconds.
    pub sim_seconds: f64,
    /// Completed requests per simulated second.
    pub goodput_rps: f64,
    /// Prompt + output tokens of completed requests per simulated second.
    pub goodput_tokens_per_s: f64,
    /// Median time-to-first-token, seconds.
    pub ttft_p50: f64,
    /// 95th-percentile time-to-first-token, seconds.
    pub ttft_p95: f64,
    /// 99th-percentile time-to-first-token, seconds.
    pub ttft_p99: f64,
    /// Median time-per-output-token, seconds.
    pub tpot_p50: f64,
    /// 95th-percentile time-per-output-token, seconds.
    pub tpot_p95: f64,
    /// 99th-percentile time-per-output-token, seconds.
    pub tpot_p99: f64,
    /// Median end-to-end request latency, seconds.
    pub e2e_p50: f64,
    /// 99th-percentile end-to-end request latency, seconds.
    pub e2e_p99: f64,
    /// Median queueing delay before admission, seconds.
    pub queueing_p50: f64,
    /// 99th-percentile queueing delay before admission, seconds.
    pub queueing_p99: f64,
    /// Mean un-admitted queue depth over iterations.
    pub mean_queue_depth: f64,
    /// Maximum un-admitted queue depth over iterations.
    pub max_queue_depth: u64,
    /// Mean resident (admitted) request count over iterations.
    pub mean_active_requests: f64,
    /// High-water mark of reserved KV tokens.
    pub peak_kv_tokens: u64,
    /// Requests shed past their class deadline while waiting (0 for
    /// workload-free runs — no class ever sheds by default).
    pub shed: u64,
    /// Per-tenant-class breakdown, one entry per configured class in
    /// configured order. Empty for workload-free runs, which keeps their
    /// serialized summaries byte-identical to the pre-class format.
    pub classes: Vec<ClassServingSummary>,
}

/// Per-tenant-class serving statistics: completion/reject/shed counts, the
/// class's latency percentiles, and percentile *attainment* against its SLO
/// targets (the fraction of completed requests meeting the target).
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct ClassServingSummary {
    /// The tenant class.
    pub class: RequestClass,
    /// Requests of this class completed within the run.
    pub completed: usize,
    /// Requests of this class rejected at admission.
    pub rejected: u64,
    /// Requests of this class shed past their deadline.
    pub shed: u64,
    /// Median time-to-first-token, seconds.
    pub ttft_p50: f64,
    /// 95th-percentile time-to-first-token, seconds.
    pub ttft_p95: f64,
    /// 99th-percentile time-to-first-token, seconds.
    pub ttft_p99: f64,
    /// Median time-per-output-token, seconds.
    pub tpot_p50: f64,
    /// 95th-percentile time-per-output-token, seconds.
    pub tpot_p95: f64,
    /// 99th-percentile time-per-output-token, seconds.
    pub tpot_p99: f64,
    /// The class's TTFT SLO target, seconds.
    pub ttft_slo: f64,
    /// The class's TPOT SLO target, seconds.
    pub tpot_slo: f64,
    /// Fraction of completed requests with TTFT ≤ the target (0.0 with no
    /// completions — the "no samples" convention).
    pub ttft_attainment: f64,
    /// Fraction of TPOT-defined completed requests with TPOT ≤ the target
    /// (0.0 with none defined).
    pub tpot_attainment: f64,
}

impl ServingSummary {
    /// Builds a summary from completion records and the iteration history.
    ///
    /// * `records` — completed-request lifecycle records, any order.
    /// * `history` — the run's per-iteration metrics (queue-depth /
    ///   occupancy statistics; the last entry's `sim_time` is the covered
    ///   simulated span).
    /// * `admission_rejects` / `peak_kv_tokens` — queue counters.
    pub fn from_records(
        records: &[RequestRecord],
        history: &[IterationMetrics],
        admission_rejects: u64,
        peak_kv_tokens: u64,
    ) -> Self {
        Self::from_records_with_workload(
            records,
            history,
            admission_rejects,
            peak_kv_tokens,
            [0, 0],
            [0, 0],
            &[],
        )
    }

    /// Like [`ServingSummary::from_records`], with the per-class workload
    /// counters and the configured class list: the summary gains a total
    /// `shed` count and one [`ClassServingSummary`] per configured class
    /// (in configured order). `shed_by_class` / `rejected_by_class` are
    /// indexed by [`RequestClass::index`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_records_with_workload(
        records: &[RequestRecord],
        history: &[IterationMetrics],
        admission_rejects: u64,
        peak_kv_tokens: u64,
        shed_by_class: [u64; 2],
        rejected_by_class: [u64; 2],
        classes: &[ClassSpec],
    ) -> Self {
        let mut s = Self::from_records_base(records, history, admission_rejects, peak_kv_tokens);
        s.shed = shed_by_class.iter().sum();
        for spec in classes {
            let class_records: Vec<&RequestRecord> =
                records.iter().filter(|r| r.class == spec.class).collect();
            let mut c = ClassServingSummary {
                class: spec.class,
                completed: class_records.len(),
                rejected: rejected_by_class[spec.class.index()],
                shed: shed_by_class[spec.class.index()],
                ttft_slo: spec.ttft_slo,
                tpot_slo: spec.tpot_slo,
                ..Default::default()
            };
            if !class_records.is_empty() {
                (c.ttft_p50, c.ttft_p95, c.ttft_p99) =
                    sort_and_ladder(class_records.iter().map(|r| r.ttft()).collect());
                let within = class_records
                    .iter()
                    .filter(|r| r.ttft() <= spec.ttft_slo)
                    .count();
                c.ttft_attainment = within as f64 / class_records.len() as f64;
            }
            let tpots: Vec<f64> = class_records.iter().filter_map(|r| r.tpot()).collect();
            if !tpots.is_empty() {
                let within = tpots.iter().filter(|&&t| t <= spec.tpot_slo).count();
                c.tpot_attainment = within as f64 / tpots.len() as f64;
                (c.tpot_p50, c.tpot_p95, c.tpot_p99) = sort_and_ladder(tpots);
            }
            s.classes.push(c);
        }
        s
    }

    fn from_records_base(
        records: &[RequestRecord],
        history: &[IterationMetrics],
        admission_rejects: u64,
        peak_kv_tokens: u64,
    ) -> Self {
        let sim_seconds = history.last().map_or(0.0, |m| m.sim_time);
        let mut s = ServingSummary {
            completed: records.len(),
            admission_rejects,
            sim_seconds,
            peak_kv_tokens,
            ..Default::default()
        };
        if !history.is_empty() {
            let n = history.len() as f64;
            for m in history {
                s.mean_queue_depth += m.queue_depth as f64 / n;
                s.mean_active_requests += m.active_requests as f64 / n;
                s.max_queue_depth = s.max_queue_depth.max(m.queue_depth);
            }
        }
        if records.is_empty() {
            return s;
        }
        (s.ttft_p50, s.ttft_p95, s.ttft_p99) =
            sort_and_ladder(records.iter().map(RequestRecord::ttft).collect());
        (s.tpot_p50, s.tpot_p95, s.tpot_p99) =
            sort_and_ladder(records.iter().filter_map(RequestRecord::tpot).collect());
        (s.e2e_p50, _, s.e2e_p99) =
            sort_and_ladder(records.iter().map(RequestRecord::e2e_latency).collect());
        (s.queueing_p50, _, s.queueing_p99) =
            sort_and_ladder(records.iter().map(RequestRecord::queueing_delay).collect());
        if sim_seconds > 0.0 {
            s.goodput_rps = records.len() as f64 / sim_seconds;
            let tokens: f64 = records
                .iter()
                .map(|r| r.input_len as f64 + r.output_len as f64)
                .sum();
            s.goodput_tokens_per_s = tokens / sim_seconds;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_workload::{RequestId, Scenario};

    fn metric(t: f64, stall: f64) -> IterationMetrics {
        IterationMetrics {
            iteration_time: t,
            migration_stall: stall,
            dispatch: 1.0,
            combine: 2.0,
            ..Default::default()
        }
    }

    #[test]
    fn all_to_all_sums_halves() {
        assert_eq!(metric(1.0, 0.0).all_to_all(), 3.0);
    }

    #[test]
    fn summary_means_and_interruption_rate() {
        let history = vec![metric(1.0, 0.0), metric(3.0, 0.5)];
        let s = RunSummary::from_history(&history, 0, 4);
        assert!((s.mean_iteration_time - 2.0).abs() < 1e-12);
        assert!((s.interruption_rate - 0.5).abs() < 1e-12);
        assert_eq!(s.iterations, 2);
    }

    #[test]
    fn warmup_skip() {
        let history = vec![metric(100.0, 0.0), metric(1.0, 0.0)];
        let s = RunSummary::from_history(&history, 1, 4);
        assert_eq!(s.iterations, 1);
        assert!((s.mean_iteration_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_history_is_safe() {
        let s = RunSummary::from_history(&[], 0, 4);
        assert_eq!(s.iterations, 0);
        assert_eq!(s.mean_iteration_time, 0.0);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    /// The documented empty-input contract: every percentile of zero
    /// samples is 0.0, at both endpoints and in between.
    #[test]
    fn percentile_of_empty_slice_is_zero_everywhere() {
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile(&[], p), 0.0);
        }
        assert_eq!(sort_and_ladder(Vec::new()), (0.0, 0.0, 0.0));
    }

    /// A single sample is every percentile of itself (nearest rank clamps
    /// to the only element).
    #[test]
    fn percentile_of_singleton_is_the_element() {
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile(&[3.5], p), 3.5);
        }
        assert_eq!(sort_and_ladder(vec![3.5]), (3.5, 3.5, 3.5));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn percentile_rejects_out_of_range_p() {
        percentile(&[1.0], 101.0);
    }

    /// The hoisted helper sorts its input itself and matches direct
    /// nearest-rank reads on the sorted data.
    #[test]
    fn sort_and_ladder_matches_percentile_on_unsorted_input() {
        let samples: Vec<f64> = (1..=100).rev().map(f64::from).collect();
        assert_eq!(sort_and_ladder(samples), (50.0, 95.0, 99.0));
    }

    fn record(id: u64, arrival: f64, ttft: f64, e2e: f64, out: u32) -> RequestRecord {
        RequestRecord {
            id: RequestId(id),
            scenario: Scenario::Chat,
            class: RequestClass::Interactive,
            input_len: 10,
            output_len: out,
            arrival,
            admitted: arrival + 0.5,
            first_token: arrival + ttft,
            finish: arrival + e2e,
            prefill_scheduled: 10,
            decode_scheduled: out,
        }
    }

    #[test]
    fn serving_summary_percentiles_and_goodput() {
        let records: Vec<RequestRecord> = (0..4)
            .map(|i| record(i, i as f64, 1.0 + i as f64, 3.0 + i as f64, 4))
            .collect();
        let history = vec![
            IterationMetrics {
                sim_time: 5.0,
                queue_depth: 2,
                active_requests: 3,
                ..Default::default()
            },
            IterationMetrics {
                sim_time: 10.0,
                queue_depth: 4,
                active_requests: 1,
                ..Default::default()
            },
        ];
        let s = ServingSummary::from_records(&records, &history, 7, 123);
        assert_eq!(s.completed, 4);
        assert_eq!(s.admission_rejects, 7);
        assert_eq!(s.peak_kv_tokens, 123);
        assert_eq!(s.sim_seconds, 10.0);
        // TTFTs are [1, 2, 3, 4]: nearest-rank p50 = 2, p99 = 4.
        assert_eq!(s.ttft_p50, 2.0);
        assert_eq!(s.ttft_p99, 4.0);
        assert_eq!(s.e2e_p50, 4.0);
        assert_eq!(s.queueing_p50, 0.5);
        assert_eq!(s.goodput_rps, 0.4);
        assert_eq!(s.goodput_tokens_per_s, 4.0 * 14.0 / 10.0);
        assert_eq!(s.mean_queue_depth, 3.0);
        assert_eq!(s.max_queue_depth, 4);
        assert_eq!(s.mean_active_requests, 2.0);
        // TPOT = (e2e - ttft) / (out - 1) = 2/3 for every record.
        assert!((s.tpot_p50 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn serving_summary_excludes_undefined_tpot() {
        // A single-token response has no inter-token gap.
        let records = vec![record(0, 0.0, 1.0, 1.0, 1), record(1, 0.0, 1.0, 3.0, 3)];
        let history = vec![IterationMetrics {
            sim_time: 4.0,
            ..Default::default()
        }];
        let s = ServingSummary::from_records(&records, &history, 0, 0);
        assert_eq!(s.tpot_p50, 1.0); // only the 3-token record contributes
        assert_eq!(s.tpot_p99, 1.0);
    }

    #[test]
    fn serving_summary_empty_is_safe() {
        let s = ServingSummary::from_records(&[], &[], 0, 0);
        assert_eq!(s.completed, 0);
        assert_eq!(s.goodput_rps, 0.0);
        assert_eq!(s.ttft_p99, 0.0);
        assert_eq!(s.shed, 0);
        assert!(s.classes.is_empty());
    }

    #[test]
    fn per_class_summary_reports_attainment_against_slo() {
        // Interactive TTFTs [1, 2, 3, 4] against a 2.5 s target: 2 of 4
        // within. One batch record with TTFT 1 against 2.0: within.
        let mut records: Vec<RequestRecord> = (0..4)
            .map(|i| record(i, i as f64, 1.0 + i as f64, 3.0 + i as f64, 4))
            .collect();
        records.push(RequestRecord {
            class: RequestClass::Batch,
            ..record(4, 0.0, 1.0, 3.0, 4)
        });
        let history = vec![IterationMetrics {
            sim_time: 10.0,
            ..Default::default()
        }];
        let classes = vec![
            ClassSpec::interactive().with_slo(2.5, 1.0),
            ClassSpec::batch().with_slo(2.0, 0.1),
        ];
        let s = ServingSummary::from_records_with_workload(
            &records,
            &history,
            1,
            0,
            [0, 3],
            [1, 0],
            &classes,
        );
        assert_eq!(s.shed, 3);
        assert_eq!(s.classes.len(), 2);
        let i = &s.classes[0];
        assert_eq!(i.class, RequestClass::Interactive);
        assert_eq!((i.completed, i.rejected, i.shed), (4, 1, 0));
        assert_eq!(i.ttft_p50, 2.0);
        assert_eq!(i.ttft_attainment, 0.5);
        // Every interactive TPOT is 2/3 ≤ 1.0.
        assert_eq!(i.tpot_attainment, 1.0);
        let b = &s.classes[1];
        assert_eq!(b.class, RequestClass::Batch);
        assert_eq!((b.completed, b.rejected, b.shed), (1, 0, 3));
        assert_eq!(b.ttft_attainment, 1.0);
        // Batch TPOT 2/3 > 0.1: missed.
        assert_eq!(b.tpot_attainment, 0.0);
        assert_eq!((b.ttft_slo, b.tpot_slo), (2.0, 0.1));
        // The class-free constructor stays class-free.
        let plain = ServingSummary::from_records(&records, &history, 1, 0);
        assert!(plain.classes.is_empty());
        assert_eq!(plain.shed, 0);
    }

    /// A configured class with zero completions reports the "no samples"
    /// zeros, not NaN.
    #[test]
    fn empty_class_attainment_is_zero() {
        let classes = vec![ClassSpec::interactive(), ClassSpec::batch()];
        let records = vec![record(0, 0.0, 1.0, 3.0, 4)];
        let s = ServingSummary::from_records_with_workload(
            &records,
            &[],
            0,
            0,
            [0, 0],
            [0, 0],
            &classes,
        );
        let b = &s.classes[1];
        assert_eq!(b.completed, 0);
        assert_eq!(b.ttft_attainment, 0.0);
        assert_eq!(b.tpot_attainment, 0.0);
        assert_eq!(b.ttft_p99, 0.0);
    }
}
