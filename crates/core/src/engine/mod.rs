//! The end-to-end per-iteration inference simulator.
//!
//! [`InferenceEngine`] drives the full loop of paper Fig. 11(e): for every
//! sparse layer of every iteration it prices attention compute overlapped
//! with the all-reduce, gating, dispatch all-to-all overlapped with expert
//! compute, and combine; it tracks per-layer expert loads, fires the Eq. 2
//! trigger, runs the configured balancer, and executes migrations either
//! invasively (stall on the critical path) or non-invasively (drained on
//! phase-cold links by the [`MigrationEngine`](crate::migration)).
//!
//! Communication is priced through the pluggable
//! [`CongestionModel`](wsc_sim::CongestionModel) backend selected by
//! [`EngineConfig::backend`], a three-tier fidelity ladder: the default
//! analytical congestion model (per-link volumes over precomputed routes)
//! for production-scale sweeps, the memoizing `flow-sim-cached` tier for
//! engine-scope experiments that want DES fidelity at near-analytic
//! amortized cost (repeated layer/iteration schedules are simulated once),
//! or the uncached flow-level simulator when every collective must be
//! re-simulated (see DESIGN.md §5 for the fidelity ladder and
//! `tests/analytic_vs_des.rs` for the cross-validation contract).

mod metrics;
mod sketch;

pub use metrics::{percentile, ClassServingSummary, IterationMetrics, RunSummary, ServingSummary};
pub use sketch::{P2Quantile, StreamingSummary, SummaryMode};

use moe_model::{CostModel, InferencePhase, ModelConfig, Precision};
use moe_workload::{
    BatchScheduler, ClassPolicy, ClassSpec, RequestClass, RequestGenerator, RequestRecord,
    SchedulingMode, TraceGenerator, WorkloadMix, WorkloadProfile,
};
use serde::{Deserialize, Serialize};
use wsc_sim::{CongestionBackend, CongestionModel};
use wsc_topology::{RouteTable, Topology};

use crate::balancer::{
    cumulative_imbalance, BalanceAction, BalanceContext, Balancer, BalancerKind, GreedyBalancer,
    TopologyAwareBalancer, Trigger,
};
use crate::comm::{A2aModel, ParallelLayout};
use crate::config::ConfigError;
use crate::migration::{enqueue_replications, invasive_stall, MigrationEngine, MigrationPhase};
use crate::placement::ExpertPlacement;

pub use crate::balancer::cumulative_imbalance as imbalance_statistic;

/// Diurnal amplitude of the default serving arrival process (engine
/// `Scheduled` mode and the fleet's global stream draw from the same cycle,
/// so fleet and single-replica sweep curves stay comparable). Alias of
/// [`moe_workload::DEFAULT_DIURNAL_AMPLITUDE`], the default of
/// [`WorkloadProfile`]'s diurnal arrival source.
pub const ARRIVAL_DIURNAL_AMPLITUDE: f64 = moe_workload::DEFAULT_DIURNAL_AMPLITUDE;

/// Diurnal cycle period of the default serving arrival process, seconds.
/// Alias of [`moe_workload::DEFAULT_DIURNAL_PERIOD_SECS`].
pub const ARRIVAL_DIURNAL_PERIOD_SECS: f64 = moe_workload::DEFAULT_DIURNAL_PERIOD_SECS;

/// How iteration batches are produced.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum BatchMode {
    /// A fixed batch every iteration (the communication experiments).
    Fixed {
        /// Tokens per TP group per iteration.
        tokens_per_group: u32,
        /// Average attended context length.
        avg_context: f64,
        /// Roofline phase.
        phase: InferencePhase,
    },
    /// Request-pool driven batches (the balancer experiments, §VI-C).
    Scheduled {
        /// Serving discipline.
        mode: SchedulingMode,
        /// Token budget per group per iteration.
        max_batch_tokens: u32,
        /// Concurrent decode sequences per group.
        max_active: usize,
        /// Request arrival rate (requests/second, whole system).
        request_rate: f64,
        /// Wall-clock estimate of one iteration (drives arrival admission).
        iteration_period: f64,
    },
    /// Externally-fed serving: like [`BatchMode::Scheduled`] but with no
    /// internal arrival generator — requests enter only through
    /// [`InferenceEngine::offer_request`]. This is the replica shape in a
    /// fleet deployment, where a front-end router owns the global arrival
    /// stream (see [`crate::fleet`]).
    External {
        /// Serving discipline.
        mode: SchedulingMode,
        /// Token budget per group per iteration.
        max_batch_tokens: u32,
        /// Concurrent decode sequences per group.
        max_active: usize,
    },
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The MoE model being served.
    pub model: ModelConfig,
    /// Device cost model.
    pub cost: CostModel,
    /// Scenario mixture driving expert selection.
    pub workload: WorkloadMix,
    /// Serving workload shape: arrival source (diurnal Poisson, phase
    /// schedule, or trace replay) and tenant request classes with SLO
    /// targets. The default profile reproduces the legacy diurnal stream
    /// bit-for-bit with a single class-free tenant, so workload-free
    /// scenarios are byte-unchanged. Only consulted by the serving batch
    /// modes ([`BatchMode::Scheduled`] generates from it;
    /// [`BatchMode::External`] applies its class shed policy while the
    /// fleet router owns the arrival stream).
    pub workload_profile: WorkloadProfile,
    /// Batch production mode.
    pub batch: BatchMode,
    /// Communication-pricing fidelity: the fast analytic congestion model
    /// (default), the memoizing cached DES (`FlowSimCached` — DES estimates,
    /// repeated schedules priced once), or the flow-level DES re-simulating
    /// every collective.
    pub backend: CongestionBackend,
    /// Balancing strategy.
    pub balancer: BalancerKind,
    /// Eq. 2 `α`, specified per layer (total `α = this × L`).
    pub trigger_alpha_per_layer: f64,
    /// Eq. 2 `β` in iterations (forced to 0 for non-invasive balancing).
    pub trigger_beta: u64,
    /// Shadow slots per device.
    pub slots_per_device: usize,
    /// Cap on replications per layer per balancing event.
    pub max_actions_per_layer: usize,
    /// Master seed.
    pub seed: u64,
    /// Estimate the all-to-all on every `k`-th layer, reusing between
    /// (1 = every layer).
    pub comm_layer_stride: usize,
    /// Micro-batches for communication/compute overlap (PipeMoE-style).
    pub pipeline_microbatches: usize,
    /// Force uniform gating (isolates mapping effects, §VI-B).
    pub uniform_gating: bool,
    /// Bandwidth available to non-invasive migration on cold links, bytes/s.
    pub cold_bandwidth: f64,
    /// EMA factor for historical expert loads in `(0, 1]`.
    pub load_ema: f64,
    /// Fraction of aggregate device HBM available to the KV cache in
    /// [`BatchMode::Scheduled`]; the serving layer's admission budget is
    /// `kv_token_capacity(kv_hbm_fraction × Σ hbm_bytes)` (weights,
    /// activations, and fragmentation take the rest).
    pub kv_hbm_fraction: f64,
    /// Entry bound of the memoizing schedule cache when `backend` is
    /// [`CongestionBackend::FlowSimCached`] (ignored by the stateless
    /// tiers). Defaults to [`wsc_sim::DEFAULT_CACHE_ENTRIES`].
    pub cache_entries: usize,
    /// How serving summaries are maintained: [`SummaryMode::Exact`] retains
    /// every completion record and the full iteration history (the golden
    /// oracle); [`SummaryMode::Streaming`] folds completions into P²
    /// sketches and keeps only the latest history entry — O(1) memory in
    /// request count, for million-request fleet runs.
    pub summary: SummaryMode,
}

impl EngineConfig {
    /// Reasonable defaults for `model`: fixed 256-token decode batches,
    /// mixed workload, no balancing.
    pub fn new(model: ModelConfig) -> Self {
        EngineConfig {
            cost: CostModel::new(moe_model::DeviceSpec::b200()),
            workload: WorkloadMix::mixed(500.0),
            workload_profile: WorkloadProfile::default(),
            batch: BatchMode::Fixed {
                tokens_per_group: 256,
                avg_context: 4096.0,
                phase: InferencePhase::Decode,
            },
            backend: CongestionBackend::Analytic,
            balancer: BalancerKind::None,
            trigger_alpha_per_layer: 0.25,
            trigger_beta: 10,
            slots_per_device: 1,
            max_actions_per_layer: 4,
            seed: 7,
            comm_layer_stride: 1,
            pipeline_microbatches: 4,
            uniform_gating: false,
            cold_bandwidth: 4.0e12,
            load_ema: 0.3,
            kv_hbm_fraction: 0.3,
            cache_entries: wsc_sim::DEFAULT_CACHE_ENTRIES,
            summary: SummaryMode::Exact,
            model,
        }
    }

    /// Sets the summary maintenance mode (builder style).
    pub fn with_summary(mut self, summary: SummaryMode) -> Self {
        self.summary = summary;
        self
    }

    /// Sets the balancer kind (builder style).
    pub fn with_balancer(mut self, kind: BalancerKind) -> Self {
        self.balancer = kind;
        self
    }

    /// Sets the communication-pricing backend (builder style).
    pub fn with_backend(mut self, backend: CongestionBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the workload mix (builder style).
    pub fn with_workload(mut self, workload: WorkloadMix) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the serving workload profile (builder style): arrival source
    /// and tenant classes.
    pub fn with_workload_profile(mut self, profile: WorkloadProfile) -> Self {
        self.workload_profile = profile;
        self
    }

    /// Sets the batch mode (builder style).
    pub fn with_batch(mut self, batch: BatchMode) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Bounds the cached backend's schedule cache (builder style); only
    /// meaningful with [`CongestionBackend::FlowSimCached`].
    pub fn with_cache_entries(mut self, cache_entries: usize) -> Self {
        self.cache_entries = cache_entries;
        self
    }

    /// Checks the configuration's internal consistency: stride and
    /// micro-batch counts ≥ 1, `load_ema` and `kv_hbm_fraction` in
    /// `(0, 1]`, and at least one schedule-cache entry. This is the single
    /// validation gate behind [`InferenceEngine::try_new`],
    /// [`Fleet::try_new`](crate::fleet::Fleet::try_new), and the
    /// `moentwine-spec` scenario layer.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ConfigError`] variant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.comm_layer_stride < 1 {
            return Err(ConfigError::CommLayerStrideZero);
        }
        if self.pipeline_microbatches < 1 {
            return Err(ConfigError::PipelineMicrobatchesZero);
        }
        if !(self.load_ema > 0.0 && self.load_ema <= 1.0) {
            return Err(ConfigError::LoadEmaOutOfRange {
                value: self.load_ema,
            });
        }
        if !(self.kv_hbm_fraction > 0.0 && self.kv_hbm_fraction <= 1.0) {
            return Err(ConfigError::KvHbmFractionOutOfRange {
                value: self.kv_hbm_fraction,
            });
        }
        if self.cache_entries < 1 {
            return Err(ConfigError::CacheEntriesZero);
        }
        self.workload_profile.validate()?;
        Ok(())
    }
}

/// The end-to-end inference simulator. See the [module docs](self).
pub struct InferenceEngine<'a> {
    topo: &'a Topology,
    table: &'a RouteTable,
    layout: &'a dyn ParallelLayout,
    config: EngineConfig,
    /// Communication-pricing backend built from `config.backend`.
    backend: Box<dyn CongestionModel + 'a>,
    a2a: A2aModel<'a>,
    trace: TraceGenerator,
    scheduler: Option<BatchScheduler>,
    placements: Vec<ExpertPlacement>,
    /// `[layer][expert]` smoothed historical loads.
    loads: Vec<Vec<f64>>,
    balancer: Option<Box<dyn Balancer>>,
    invasive: bool,
    migration: MigrationEngine,
    trigger: Trigger,
    iteration: u64,
    /// Simulated wall-clock time: the sum of priced iteration durations.
    clock: f64,
    /// Lifecycle records of completed requests (serving modes under
    /// [`SummaryMode::Exact`]; empty under [`SummaryMode::Streaming`]).
    completed: Vec<RequestRecord>,
    /// Streaming accumulator ([`SummaryMode::Streaming`] only).
    streaming: Option<StreamingSummary>,
    /// Completions since the last [`Self::take_fresh_completions`] drain —
    /// populated only in streaming [`BatchMode::External`], where the fleet
    /// folds them into its own aggregate sketch every round. Bounded by the
    /// drain cadence, not by total request count.
    fresh: Vec<RequestRecord>,
    /// All-reduce cost decomposition: `time = ser_per_byte × bytes + lat`.
    ar_ser_per_byte: f64,
    ar_latency: f64,
    /// Per-iteration metrics, in order.
    pub history: Vec<IterationMetrics>,
}

impl<'a> InferenceEngine<'a> {
    /// Builds an engine over a topology, its route table, and a layout.
    ///
    /// This is a thin wrapper over [`InferenceEngine::try_new`] for call
    /// sites that treat an inconsistent config as a programming error.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero stride or
    /// micro-batches, EMA or KV fraction out of range) — the panic message
    /// is the [`ConfigError`]'s display text.
    pub fn new(
        topo: &'a Topology,
        table: &'a RouteTable,
        layout: &'a dyn ParallelLayout,
        config: EngineConfig,
    ) -> Self {
        Self::try_new(topo, table, layout, config)
            .unwrap_or_else(|e| panic!("invalid engine config: {e}"))
    }

    /// Builds an engine over a topology, its route table, and a layout,
    /// reporting configuration inconsistencies as typed errors instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by
    /// [`EngineConfig::validate`].
    pub fn try_new(
        topo: &'a Topology,
        table: &'a RouteTable,
        layout: &'a dyn ParallelLayout,
        config: EngineConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let num_layers = config.model.num_sparse_layers as usize;
        let num_experts = config.model.num_experts as usize;
        let num_groups = layout.num_groups();

        let trace = {
            let t = TraceGenerator::new(
                &config.model,
                config.workload.clone(),
                num_groups,
                256,
                config.seed,
            );
            if config.uniform_gating {
                t.with_uniform_gating()
            } else {
                t
            }
        };

        // Admission budget for the serving modes: the KV tokens that fit in
        // the HBM share set aside for cache, across the whole platform
        // (`validate` has already pinned the fraction to (0, 1]).
        let kv_budget = || {
            let kv_bytes =
                config.kv_hbm_fraction * config.cost.device().hbm_bytes * topo.num_devices() as f64;
            config
                .model
                .kv_token_capacity(kv_bytes, Precision::Fp16)
                .max(1)
        };
        let scheduler = match &config.batch {
            BatchMode::Fixed { .. } => None,
            BatchMode::Scheduled {
                mode,
                max_batch_tokens,
                max_active,
                request_rate,
                iteration_period,
            } => {
                // The workload profile owns the arrival source (diurnal
                // Poisson by default, phase schedule, or trace replay) and
                // the tenant-class mixture. Request scenarios follow the
                // gating workload mix so length profiles and expert
                // affinities stay coherent (time-varying mixes use their
                // initial blend). The seed streams are unchanged from the
                // legacy construction, so the default profile reproduces
                // the pre-profile request stream bit-for-bit.
                let generator = RequestGenerator::try_from_profile(
                    &config.workload_profile,
                    *request_rate,
                    config.workload.weights(0),
                    config.seed ^ 0x5EED,
                    config.seed ^ 0xFEED,
                )?;
                Some(
                    BatchScheduler::new(
                        *mode,
                        *max_batch_tokens,
                        *max_active,
                        *iteration_period,
                        generator,
                    )
                    .with_kv_budget(kv_budget())
                    .with_class_policy(ClassPolicy::from_classes(&config.workload_profile.classes)),
                )
            }
            BatchMode::External {
                mode,
                max_batch_tokens,
                max_active,
            } => Some(
                BatchScheduler::external(*mode, *max_batch_tokens, *max_active)
                    .with_kv_budget(kv_budget())
                    .with_class_policy(ClassPolicy::from_classes(&config.workload_profile.classes)),
            ),
        };

        let placements = (0..num_layers)
            .map(|_| {
                ExpertPlacement::balanced(num_experts, topo.num_devices(), config.slots_per_device)
            })
            .collect();

        let (balancer, invasive): (Option<Box<dyn Balancer>>, bool) = match config.balancer {
            BalancerKind::None => (None, false),
            BalancerKind::Greedy => (
                Some(Box::new(GreedyBalancer::new(config.max_actions_per_layer))),
                true,
            ),
            BalancerKind::TopologyAware => (
                Some(Box::new(TopologyAwareBalancer::new(
                    config.max_actions_per_layer,
                ))),
                true,
            ),
            BalancerKind::NonInvasive => (
                Some(Box::new(TopologyAwareBalancer::new(
                    config.max_actions_per_layer,
                ))),
                false,
            ),
        };

        let beta = if config.balancer == BalancerKind::NonInvasive {
            0
        } else {
            config.trigger_beta
        };
        let trigger = Trigger::new(config.trigger_alpha_per_layer * num_layers as f64, beta);

        let mut migration = MigrationEngine::new(config.cold_bandwidth);
        if layout.ftd_of_device(wsc_topology::DeviceId(0)).is_none() {
            migration = migration.phase_agnostic();
        }

        // All-reduce cost decomposition from a unit-byte schedule, priced by
        // the configured backend (both backends are linear in bytes for a
        // fixed schedule shape, so slope+intercept extraction is exact).
        let backend = config
            .backend
            .build_with_cache_capacity(topo, config.cache_entries);
        let unit = layout.all_reduce_schedule(topo, 1.0);
        let est = backend.price_schedule(&unit);
        let a2a = A2aModel::new(topo, table, layout);

        Ok(InferenceEngine {
            topo,
            table,
            layout,
            backend,
            a2a,
            trace,
            scheduler,
            placements,
            loads: vec![vec![0.0; num_experts]; num_layers],
            balancer,
            invasive,
            migration,
            trigger,
            iteration: 0,
            clock: 0.0,
            completed: Vec::new(),
            streaming: match config.summary {
                SummaryMode::Exact => None,
                // One P² sketch set per tenant class; the default profile
                // keeps the class list empty so workload-free summaries are
                // byte-identical to the pre-profile layout.
                SummaryMode::Streaming => Some(if config.workload_profile.is_default() {
                    StreamingSummary::new()
                } else {
                    StreamingSummary::with_classes(&config.workload_profile.classes)
                }),
            },
            fresh: Vec::new(),
            ar_ser_per_byte: est.serialization_time,
            ar_latency: est.latency_time,
            history: Vec::new(),
            config,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The active communication-pricing backend.
    pub fn backend(&self) -> &dyn CongestionModel {
        self.backend.as_ref()
    }

    /// Current per-layer placements.
    pub fn placements(&self) -> &[ExpertPlacement] {
        &self.placements
    }

    /// PipeMoE-style overlap: with `m` micro-batches the longer stream
    /// hides the shorter except for one pipeline-fill fragment.
    fn overlap(&self, compute: f64, comm: f64) -> f64 {
        let m = self.config.pipeline_microbatches as f64;
        compute.max(comm) + compute.min(comm) / m
    }

    /// Runs `iterations` steps.
    pub fn run(&mut self, iterations: usize) -> RunSummary {
        for _ in 0..iterations {
            self.step();
        }
        RunSummary::from_history(&self.history, 0, self.topo.num_devices())
    }

    /// Executes one iteration and records its metrics.
    pub fn step(&mut self) -> &IterationMetrics {
        let config = &self.config;
        let model = &config.model;
        let tp = self.layout.tp_degree();
        let num_layers = model.num_sparse_layers as usize;

        // 1. Batch shape. Scheduled mode runs on the simulated wall clock:
        // the iteration is scheduled at the current clock and closed after
        // its priced duration is known (step 5).
        let mut serving_stats: Option<(u64, u64, u64)> = None;
        let (tokens_per_group, avg_context, phase) = match &config.batch {
            BatchMode::Fixed {
                tokens_per_group,
                avg_context,
                phase,
            } => (*tokens_per_group, *avg_context, *phase),
            BatchMode::Scheduled { .. } | BatchMode::External { .. } => {
                let scheduler = self
                    .scheduler
                    .as_mut()
                    .expect("serving modes have a scheduler");
                let spec = scheduler.next_batch_at(self.clock);
                let queue = scheduler.queue();
                serving_stats = Some((
                    queue.queue_depth() as u64,
                    queue.num_active() as u64,
                    queue.kv_tokens_in_use(),
                ));
                (
                    spec.total_tokens().max(1),
                    spec.avg_context.max(1.0),
                    spec.phase,
                )
            }
        };
        self.trace.set_tokens_per_group(tokens_per_group);
        let trace = self.trace.next_iteration();

        // 2. Attention phase costs (identical across layers).
        let attn =
            config
                .cost
                .attention_time(model, tokens_per_group as f64, avg_context, tp, phase);
        let ar_bytes = tokens_per_group as f64 * model.token_bytes(Precision::Fp16);
        let ar_time = self.ar_ser_per_byte * ar_bytes + self.ar_latency;
        let attn_phase = self.overlap(attn.total(), ar_time);

        // 3. Per-layer MoE phases.
        let token_bytes = model.token_bytes(Precision::Fp16);
        let mut metrics = IterationMetrics {
            iteration: self.iteration,
            tokens_per_group,
            ..Default::default()
        };
        if let Some((queue_depth, active_requests, kv_tokens_in_use)) = serving_stats {
            metrics.queue_depth = queue_depth;
            metrics.active_requests = active_requests;
            metrics.kv_tokens_in_use = kv_tokens_in_use;
        }
        let mut per_layer_loads: Vec<Vec<f64>> = Vec::with_capacity(num_layers);
        let mut cached_comm: Option<(f64, f64)> = None;
        for (l, gating) in trace.layers.iter().enumerate() {
            let est = self.a2a.estimate_with(
                self.backend.as_ref(),
                gating,
                &self.placements[l],
                token_bytes,
                tokens_per_group,
            );
            let (dispatch_t, combine_t) = if l % config.comm_layer_stride == 0 {
                let t = (est.dispatch.total_time, est.combine.total_time);
                cached_comm = Some(t);
                t
            } else {
                cached_comm.unwrap_or((est.dispatch.total_time, est.combine.total_time))
            };

            // Expert compute: slowest device.
            let mut moe_comp: f64 = 0.0;
            for d in 0..self.topo.num_devices() {
                let t = config
                    .cost
                    .moe_device_time(model, est.device_tokens[d], est.device_active_experts[d])
                    .total();
                moe_comp = moe_comp.max(t);
            }
            // Shared experts run where the tokens live.
            if model.num_shared_experts > 0 {
                let local_tokens = trace.layers[l].total_selections() as f64
                    / model.experts_per_token as f64
                    / self.topo.num_devices() as f64;
                moe_comp += config
                    .cost
                    .moe_device_time(model, local_tokens, model.num_shared_experts as f64)
                    .total();
            }

            let a2a_time = dispatch_t + combine_t;
            let moe_phase = self.overlap(moe_comp, a2a_time);

            // Accumulate.
            metrics.attention_compute += attn.total();
            metrics.all_reduce += ar_time;
            metrics.dispatch += dispatch_t;
            metrics.combine += combine_t;
            metrics.moe_compute += moe_comp;
            metrics.iteration_time += attn_phase + moe_phase;

            let max = est.device_tokens.iter().copied().fold(0.0, f64::max);
            let mean = est.device_tokens.iter().sum::<f64>() / est.device_tokens.len() as f64;
            metrics.max_device_tokens += max / num_layers as f64;
            metrics.avg_device_tokens += mean / num_layers as f64;
            metrics.load_ratio += if mean > 0.0 { max / mean } else { 1.0 } / num_layers as f64;

            // Non-invasive migration progress on cold links.
            for done in self.migration.advance(MigrationPhase::Local, attn_phase) {
                if self.placements[done.layer]
                    .add_replica(done.expert, done.target)
                    .is_ok()
                {
                    metrics.migrations_completed += 1;
                }
            }
            for done in self.migration.advance(MigrationPhase::Global, moe_phase) {
                if self.placements[done.layer]
                    .add_replica(done.expert, done.target)
                    .is_ok()
                {
                    metrics.migrations_completed += 1;
                }
            }

            // Historical loads (EMA).
            let totals = gating.expert_totals();
            let ema = config.load_ema;
            for (slot, &t) in self.loads[l].iter_mut().zip(&totals) {
                *slot = (1.0 - ema) * *slot + ema * t as f64;
            }
            per_layer_loads.push(self.placements[l].device_loads(&self.loads[l]));
        }

        // 4. Balancing trigger (Eq. 2) and execution.
        if let Some(balancer) = self.balancer.as_mut() {
            let imbalance = cumulative_imbalance(per_layer_loads.iter().map(Vec::as_slice));
            if self.trigger.should_balance(self.iteration, imbalance) {
                let expert_bytes = model.expert_bytes(config.cost.linear_precision);
                let mut stall_pairs: Vec<(wsc_topology::DeviceId, wsc_topology::DeviceId, f64)> =
                    Vec::new();
                for l in 0..num_layers {
                    let actions = balancer.plan_layer(&BalanceContext {
                        layer: l,
                        expert_loads: &self.loads[l],
                        placement: &self.placements[l],
                        table: self.table,
                    });
                    if self.invasive {
                        for action in &actions {
                            match *action {
                                BalanceAction::Replicate {
                                    layer,
                                    expert,
                                    source,
                                    target,
                                } => {
                                    if self.placements[layer].add_replica(expert, target).is_ok() {
                                        stall_pairs.push((source, target, expert_bytes));
                                        metrics.migrations_started += 1;
                                        metrics.migrations_completed += 1;
                                    }
                                }
                                BalanceAction::Release {
                                    layer,
                                    expert,
                                    device,
                                } => {
                                    self.placements[layer].remove_replica(expert, device);
                                }
                            }
                        }
                    } else {
                        let before = self.migration.in_flight();
                        let releases = enqueue_replications(
                            &mut self.migration,
                            self.topo,
                            self.table,
                            self.layout,
                            &actions,
                            expert_bytes,
                        );
                        metrics.migrations_started += (self.migration.in_flight() - before) as u64;
                        for action in releases {
                            if let BalanceAction::Release {
                                layer,
                                expert,
                                device,
                            } = action
                            {
                                self.placements[layer].remove_replica(expert, device);
                            }
                        }
                    }
                }
                if self.invasive && !stall_pairs.is_empty() {
                    // The migrations run concurrently on the idle-but-shared
                    // fabric, interrupting inference (paper Fig. 7b).
                    let est = invasive_stall(self.backend.as_ref(), self.table, &stall_pairs);
                    metrics.migration_stall = est.total_time;
                    metrics.iteration_time += est.total_time;
                }
            }
        }

        // 5. Advance the simulated wall clock by the priced iteration
        // duration and close the serving iteration at the new time: TTFT /
        // TPOT / completion events are stamped with modeled hardware time.
        self.clock += metrics.iteration_time;
        metrics.sim_time = self.clock;
        if let Some(scheduler) = self.scheduler.as_mut() {
            scheduler.finish_iteration(self.clock);
            let mut done = scheduler.drain_completed();
            metrics.requests_completed = done.len() as u64;
            match self.streaming.as_mut() {
                Some(streaming) => {
                    for record in &done {
                        streaming.observe_record(record);
                    }
                    // In a fleet the router owns the aggregate sketch too:
                    // stage the records for its per-round drain (sketches
                    // don't merge). Standalone streaming engines drop them.
                    if matches!(self.config.batch, BatchMode::External { .. }) {
                        self.fresh.append(&mut done);
                    }
                }
                None => self.completed.append(&mut done),
            }
        }
        if let Some(streaming) = self.streaming.as_mut() {
            streaming.observe_iteration(metrics.queue_depth, metrics.active_requests);
            // O(1) history: keep only the latest entry (its `sim_time` is
            // the covered span; occupancy means live in the sketch).
            self.history.clear();
        }

        self.iteration += 1;
        self.history.push(metrics);
        self.history.last().expect("just pushed")
    }

    /// Simulated wall-clock time elapsed so far, seconds.
    pub fn sim_time(&self) -> f64 {
        self.clock
    }

    /// Jumps the simulated clock forward to `t` (no-op if `t` is in the
    /// past) without pricing an iteration. Used by the fleet's event-heap
    /// scheduler to park an idle replica and resume it at the next arrival:
    /// the serving scheduler re-synchronizes on the next
    /// `next_batch_at(clock)` call, so no phantom idle iterations are
    /// priced or recorded.
    pub fn fast_forward(&mut self, t: f64) {
        self.clock = self.clock.max(t);
    }

    /// Feeds one routed request to this replica's serving queue
    /// ([`BatchMode::External`]; also accepted in [`BatchMode::Scheduled`],
    /// where it mixes with generated arrivals). Requests must be offered in
    /// non-decreasing arrival order per engine.
    ///
    /// # Panics
    ///
    /// Panics in [`BatchMode::Fixed`], which has no request lifecycle.
    pub fn offer_request(&mut self, request: moe_workload::Request) {
        self.scheduler
            .as_mut()
            .expect("offer_request requires a serving batch mode")
            .offer(request);
    }

    /// Removes and returns every not-yet-admitted request from this
    /// replica's serving queue (fleet drain/crash re-routing; see
    /// [`moe_workload::ServingQueue::evict_waiting`]).
    ///
    /// # Panics
    ///
    /// Panics in [`BatchMode::Fixed`], which has no request lifecycle.
    pub fn evict_waiting_requests(&mut self) -> Vec<moe_workload::Request> {
        self.scheduler
            .as_mut()
            .expect("eviction requires a serving batch mode")
            .evict_waiting()
    }

    /// Removes and returns every resident request with its lost progress
    /// (fleet crash re-queue; see
    /// [`moe_workload::ServingQueue::evict_resident`]).
    ///
    /// # Panics
    ///
    /// Panics in [`BatchMode::Fixed`], which has no request lifecycle.
    pub fn evict_resident_requests(&mut self) -> Vec<moe_workload::InterruptedRequest> {
        self.scheduler
            .as_mut()
            .expect("eviction requires a serving batch mode")
            .evict_resident()
    }

    /// Where a routed request currently sits inside this replica's serving
    /// queue (speculative-dispatch probe; a completed or never-offered
    /// request reports [`moe_workload::CopyStatus::Absent`]).
    pub fn copy_status(&self, id: moe_workload::RequestId) -> moe_workload::CopyStatus {
        self.scheduler
            .as_ref()
            .map_or(moe_workload::CopyStatus::Absent, |s| {
                s.queue().copy_status(id)
            })
    }

    /// Cancels a waiting or active request, releasing its KV reservation
    /// and unwinding its admitted-token accounting (speculative
    /// loser-copy teardown; see
    /// [`moe_workload::ServingQueue::cancel_request`]). Returns `false`
    /// when the request is not resident.
    ///
    /// # Panics
    ///
    /// Panics in [`BatchMode::Fixed`], which has no request lifecycle.
    pub fn cancel_request(&mut self, id: moe_workload::RequestId) -> bool {
        self.scheduler
            .as_mut()
            .expect("cancellation requires a serving batch mode")
            .cancel_request(id)
    }

    /// Removes one completion record by id — newest match first — from the
    /// retained records ([`SummaryMode::Exact`]) or the undrained fresh
    /// staging buffer (streaming fleets). Speculative loser copies that
    /// finished before their group resolved are deleted through here so
    /// fleet aggregates count each logical request once. Under
    /// [`SummaryMode::Streaming`] the replica's own sketch has already
    /// folded the record in; only the fleet-level aggregate excludes it.
    pub fn remove_completed(&mut self, id: moe_workload::RequestId) -> Option<RequestRecord> {
        if let Some(pos) = self.completed.iter().rposition(|r| r.id == id) {
            return Some(self.completed.remove(pos));
        }
        if let Some(pos) = self.fresh.iter().rposition(|r| r.id == id) {
            return Some(self.fresh.remove(pos));
        }
        None
    }

    /// This replica's serving load as observed by a fleet router (`None`
    /// in [`BatchMode::Fixed`]).
    pub fn replica_snapshot(&self) -> Option<moe_workload::ReplicaSnapshot> {
        self.scheduler.as_ref().map(|s| {
            let q = s.queue();
            moe_workload::ReplicaSnapshot {
                queue_depth: q.queue_depth(),
                active: q.num_active(),
                kv_tokens_in_use: q.kv_tokens_in_use(),
                kv_budget_tokens: q.kv_budget_tokens(),
                mode: q.mode(),
            }
        })
    }

    /// Lifecycle records of every request completed so far (empty in
    /// [`BatchMode::Fixed`] and in [`SummaryMode::Streaming`], which folds
    /// records into sketches instead of retaining them).
    pub fn completed_requests(&self) -> &[RequestRecord] {
        &self.completed
    }

    /// Drains the completions staged since the last drain (streaming
    /// [`BatchMode::External`] only; empty otherwise). The fleet calls this
    /// every round to feed its own aggregate [`StreamingSummary`].
    pub fn take_fresh_completions(&mut self) -> Vec<RequestRecord> {
        std::mem::take(&mut self.fresh)
    }

    /// Memory proxy: records and iteration-history entries currently
    /// retained. O(completed requests) under [`SummaryMode::Exact`];
    /// bounded (last history entry + undrained fresh completions) under
    /// [`SummaryMode::Streaming`].
    pub fn retained_records(&self) -> usize {
        self.completed.len() + self.fresh.len() + self.history.len()
    }

    /// Request-level serving statistics over the run so far: SLO
    /// percentiles, goodput, queue occupancy, and admission rejects.
    /// Zeroed in [`BatchMode::Fixed`], which has no request lifecycle.
    /// Under [`SummaryMode::Streaming`] the percentiles are the sketch
    /// estimates (exact for runs of ≤ [`P2Quantile::WARMUP`] completions).
    pub fn serving_summary(&self) -> ServingSummary {
        let (rejects, peak_kv) = self.scheduler.as_ref().map_or((0, 0), |s| {
            (s.queue().rejected(), s.queue().peak_kv_tokens())
        });
        let (shed_by_class, rejected_by_class) = self.class_counters();
        let classes: &[ClassSpec] = if self.config.workload_profile.is_default() {
            &[]
        } else {
            &self.config.workload_profile.classes
        };
        match self.streaming.as_ref() {
            Some(streaming) => streaming.summary_with_workload(
                rejects,
                peak_kv,
                self.clock,
                shed_by_class,
                rejected_by_class,
            ),
            None => ServingSummary::from_records_with_workload(
                &self.completed,
                &self.history,
                rejects,
                peak_kv,
                shed_by_class,
                rejected_by_class,
                classes,
            ),
        }
    }

    /// Per-class `(shed, rejected)` admission counters of this replica's
    /// serving queue, indexed by [`RequestClass::index`]. All zeros in
    /// [`BatchMode::Fixed`]. The fleet sums these across replicas for its
    /// aggregate per-class attainment report.
    pub fn class_counters(&self) -> ([u64; 2], [u64; 2]) {
        self.scheduler.as_ref().map_or(([0; 2], [0; 2]), |s| {
            let q = s.queue();
            let shed = [
                q.shed_for(RequestClass::Interactive),
                q.shed_for(RequestClass::Batch),
            ];
            let rejected = [
                q.rejected_for(RequestClass::Interactive),
                q.rejected_for(RequestClass::Batch),
            ];
            (shed, rejected)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{ErMapping, TpShape};
    use moe_workload::Scenario;
    use wsc_topology::{Mesh, PlatformParams};

    fn small_model() -> ModelConfig {
        // A scaled-down model for fast engine tests.
        ModelConfig::tiny()
    }

    fn fixture() -> (Topology, RouteTable, crate::mapping::MappingPlan) {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        (topo, table, plan)
    }

    #[test]
    fn engine_runs_and_records_history() {
        let (topo, table, plan) = fixture();
        let config = EngineConfig::new(small_model()).with_seed(3);
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        let summary = engine.run(5);
        assert_eq!(summary.iterations, 5);
        assert!(summary.mean_iteration_time > 0.0);
        assert!(summary.mean_all_to_all > 0.0);
        assert_eq!(engine.history.len(), 5);
    }

    #[test]
    fn non_invasive_never_stalls() {
        let (topo, table, plan) = fixture();
        let config = EngineConfig::new(small_model())
            .with_balancer(BalancerKind::NonInvasive)
            .with_workload(WorkloadMix::Fixed(Scenario::Math));
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        engine.run(30);
        assert!(engine.history.iter().all(|m| m.migration_stall == 0.0));
        // And some migrations actually happened.
        let completed: u64 = engine.history.iter().map(|m| m.migrations_completed).sum();
        assert!(completed > 0, "no migrations completed");
    }

    #[test]
    fn invasive_greedy_stalls_iterations() {
        let (topo, table, plan) = fixture();
        let config = EngineConfig::new(small_model())
            .with_balancer(BalancerKind::Greedy)
            .with_workload(WorkloadMix::Fixed(Scenario::Math));
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        engine.run(30);
        assert!(
            engine.history.iter().any(|m| m.migration_stall > 0.0),
            "greedy balancing should interrupt at least once"
        );
    }

    #[test]
    fn balancing_improves_load_ratio() {
        let (topo, table, plan) = fixture();
        let base_cfg = EngineConfig::new(small_model())
            .with_workload(WorkloadMix::Fixed(Scenario::Math))
            .with_seed(11);
        let mut unbalanced = InferenceEngine::new(&topo, &table, &plan, base_cfg.clone());
        let without = unbalanced.run(40);
        let mut balanced = InferenceEngine::new(
            &topo,
            &table,
            &plan,
            base_cfg.with_balancer(BalancerKind::NonInvasive),
        );
        let with = balanced.run(40);
        assert!(
            with.mean_load_ratio < without.mean_load_ratio,
            "balancing should reduce load ratio: {} vs {}",
            with.mean_load_ratio,
            without.mean_load_ratio
        );
    }

    #[test]
    fn backend_knob_swaps_pricing_fidelity() {
        let (topo, table, plan) = fixture();
        let run = |backend: CongestionBackend| {
            let config = EngineConfig::new(small_model())
                .with_seed(3)
                .with_backend(backend);
            let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
            assert_eq!(engine.backend().name(), backend.name());
            engine.run(3)
        };
        let analytic = run(CongestionBackend::Analytic);
        let des = run(CongestionBackend::FlowSim);
        assert!(analytic.mean_all_to_all > 0.0);
        assert!(des.mean_all_to_all > 0.0);
        // Same traffic, different fidelity: the results must be in the same
        // ballpark (the analytic model is a conservative bottleneck bound).
        let ratio = des.mean_all_to_all / analytic.mean_all_to_all;
        assert!(
            (0.2..=1.5).contains(&ratio),
            "DES/analytic a2a ratio {ratio} out of range: {} vs {}",
            des.mean_all_to_all,
            analytic.mean_all_to_all
        );
    }

    #[test]
    fn cached_backend_reproduces_flow_sim_run_exactly() {
        let (topo, table, plan) = fixture();
        let run = |backend: CongestionBackend| {
            let config = EngineConfig::new(small_model())
                .with_seed(9)
                .with_backend(backend);
            InferenceEngine::new(&topo, &table, &plan, config).run(4)
        };
        let des = run(CongestionBackend::FlowSim);
        let cached = run(CongestionBackend::FlowSimCached);
        assert_eq!(des.mean_iteration_time, cached.mean_iteration_time);
        assert_eq!(des.mean_all_to_all, cached.mean_all_to_all);
        assert_eq!(des.mean_all_reduce, cached.mean_all_reduce);
    }

    #[test]
    fn deterministic_given_seed() {
        let (topo, table, plan) = fixture();
        let mk = || {
            let config = EngineConfig::new(small_model()).with_seed(42);
            let mut e = InferenceEngine::new(&topo, &table, &plan, config);
            e.run(5).mean_iteration_time
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn scheduled_decode_mode_runs() {
        let (topo, table, plan) = fixture();
        let config = EngineConfig::new(small_model()).with_batch(BatchMode::Scheduled {
            mode: SchedulingMode::DecodeOnly,
            max_batch_tokens: 512,
            max_active: 64,
            request_rate: 200.0,
            iteration_period: 0.02,
        });
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        let summary = engine.run(20);
        assert!(summary.mean_tokens_per_group >= 1.0);
    }

    #[test]
    fn serving_clock_advances_by_priced_durations() {
        let (topo, table, plan) = fixture();
        let config =
            EngineConfig::new(small_model())
                .with_seed(21)
                .with_batch(BatchMode::Scheduled {
                    mode: SchedulingMode::Hybrid,
                    max_batch_tokens: 512,
                    max_active: 64,
                    request_rate: 400.0,
                    iteration_period: 0.02,
                });
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        engine.run(60);
        let total: f64 = engine.history.iter().map(|m| m.iteration_time).sum();
        assert!((engine.sim_time() - total).abs() < 1e-12);
        // sim_time is the cumulative sum, strictly increasing.
        let mut last = 0.0;
        for m in &engine.history {
            assert!(m.sim_time > last);
            last = m.sim_time;
        }
    }

    #[test]
    fn serving_summary_reports_request_latencies() {
        let (topo, table, plan) = fixture();
        // Privacy requests are short (median 384 in / 128 out), so full
        // lifecycles fit in a few hundred decode iterations.
        let config = EngineConfig::new(small_model())
            .with_seed(23)
            .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
            .with_batch(BatchMode::Scheduled {
                mode: SchedulingMode::Hybrid,
                max_batch_tokens: 2048,
                max_active: 128,
                request_rate: 2000.0,
                iteration_period: 0.02,
            });
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        engine.run(600);
        let s = engine.serving_summary();
        assert!(s.completed > 0, "no request completed in 300 iterations");
        assert!(s.sim_seconds > 0.0);
        assert!(s.goodput_rps > 0.0);
        assert!(s.ttft_p50 > 0.0);
        assert!(s.ttft_p50 <= s.ttft_p95);
        assert!(s.ttft_p95 <= s.ttft_p99);
        assert!(s.tpot_p50 <= s.tpot_p99);
        assert!(s.e2e_p50 >= s.ttft_p50, "e2e includes TTFT");
        for r in engine.completed_requests() {
            assert!(r.arrival <= r.admitted);
            assert!(r.admitted <= r.first_token);
            assert!(r.first_token <= r.finish);
        }
        // Fixed-batch mode has no request lifecycle.
        let fixed = InferenceEngine::new(&topo, &table, &plan, EngineConfig::new(small_model()));
        assert_eq!(fixed.serving_summary().completed, 0);
    }

    #[test]
    fn streaming_summary_is_exact_within_warmup_and_retains_nothing() {
        let (topo, table, plan) = fixture();
        let base = EngineConfig::new(small_model())
            .with_seed(23)
            .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
            .with_batch(BatchMode::Scheduled {
                mode: SchedulingMode::Hybrid,
                max_batch_tokens: 2048,
                max_active: 128,
                request_rate: 2.0e4,
                iteration_period: 0.02,
            });
        let mut exact = InferenceEngine::new(&topo, &table, &plan, base.clone());
        let mut streaming = InferenceEngine::new(
            &topo,
            &table,
            &plan,
            base.with_summary(SummaryMode::Streaming),
        );
        exact.run(600);
        streaming.run(600);
        let e = exact.serving_summary();
        let s = streaming.serving_summary();
        assert!(e.completed > 0, "scenario produced no completions");
        assert!(
            e.completed <= P2Quantile::WARMUP,
            "scenario outgrew the warm-up window ({}); lower the rate",
            e.completed
        );
        // Within the warm-up window every percentile is bit-identical.
        assert_eq!(s.completed, e.completed);
        assert_eq!(s.ttft_p50, e.ttft_p50);
        assert_eq!(s.ttft_p95, e.ttft_p95);
        assert_eq!(s.ttft_p99, e.ttft_p99);
        assert_eq!(s.tpot_p50, e.tpot_p50);
        assert_eq!(s.tpot_p99, e.tpot_p99);
        assert_eq!(s.e2e_p50, e.e2e_p50);
        assert_eq!(s.e2e_p99, e.e2e_p99);
        assert_eq!(s.queueing_p50, e.queueing_p50);
        assert_eq!(s.queueing_p99, e.queueing_p99);
        assert_eq!(s.sim_seconds, e.sim_seconds);
        assert_eq!(s.goodput_rps, e.goodput_rps);
        assert_eq!(s.goodput_tokens_per_s, e.goodput_tokens_per_s);
        assert_eq!(s.max_queue_depth, e.max_queue_depth);
        assert_eq!(s.peak_kv_tokens, e.peak_kv_tokens);
        // Occupancy means differ only in summation order.
        assert!((s.mean_queue_depth - e.mean_queue_depth).abs() < 1e-9);
        assert!((s.mean_active_requests - e.mean_active_requests).abs() < 1e-9);
        // And the streaming engine held on to nothing but the last entry.
        assert!(streaming.completed_requests().is_empty());
        assert_eq!(streaming.retained_records(), 1);
        assert!(exact.retained_records() > e.completed);
    }

    #[test]
    fn fast_forward_parks_the_clock_monotonically() {
        let (topo, table, plan) = fixture();
        let config = EngineConfig::new(small_model())
            .with_seed(5)
            .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
            .with_batch(BatchMode::External {
                mode: SchedulingMode::Hybrid,
                max_batch_tokens: 2048,
                max_active: 128,
            });
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        engine.step();
        let t = engine.sim_time();
        engine.fast_forward(t - 1.0); // past: no-op
        assert_eq!(engine.sim_time(), t);
        engine.fast_forward(t + 5.0);
        assert_eq!(engine.sim_time(), t + 5.0);
        // The next priced iteration starts from the jumped clock.
        let m = engine.step().sim_time;
        assert!(m > t + 5.0);
    }

    #[test]
    fn kv_budget_caps_resident_requests() {
        let (topo, table, plan) = fixture();
        // A deliberately starved KV share: admission must throttle and the
        // reservation high-water mark must respect the derived budget.
        let mut config = EngineConfig::new(small_model())
            .with_seed(31)
            .with_workload(WorkloadMix::Fixed(Scenario::Chat))
            .with_batch(BatchMode::Scheduled {
                mode: SchedulingMode::Hybrid,
                max_batch_tokens: 2048,
                max_active: 4096,
                request_rate: 5000.0,
                iteration_period: 0.02,
            });
        // ≈2100 KV tokens: room for roughly two median chat requests, so
        // admission throttles while arrivals keep landing.
        config.kv_hbm_fraction = 3e-6;
        let model = config.model.clone();
        let kv_bytes =
            config.kv_hbm_fraction * config.cost.device().hbm_bytes * topo.num_devices() as f64;
        let budget = model.kv_token_capacity(kv_bytes, Precision::Fp16).max(1);
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        engine.run(100);
        let s = engine.serving_summary();
        assert!(
            s.peak_kv_tokens <= budget,
            "{} > {budget}",
            s.peak_kv_tokens
        );
        assert!(
            s.mean_queue_depth > 0.0,
            "starved budget should leave requests queued"
        );
    }

    #[test]
    fn per_class_summary_gated_on_profile() {
        let (topo, table, plan) = fixture();
        let serving = |profile: WorkloadProfile| {
            let config = EngineConfig::new(small_model())
                .with_seed(23)
                .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
                .with_workload_profile(profile)
                .with_batch(BatchMode::Scheduled {
                    mode: SchedulingMode::Hybrid,
                    max_batch_tokens: 2048,
                    max_active: 128,
                    request_rate: 2000.0,
                    iteration_period: 0.02,
                });
            let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
            engine.run(600);
            engine.serving_summary()
        };
        // The default profile keeps summaries class-free (byte-stability of
        // workload-free scenarios).
        let default = serving(WorkloadProfile::default());
        assert!(default.completed > 0, "scenario produced no completions");
        assert!(default.classes.is_empty());
        assert_eq!(default.shed, 0);
        // A two-tenant profile reports one section per class, and the class
        // sections partition the completions.
        let profile = WorkloadProfile {
            classes: vec![
                moe_workload::ClassSpec::interactive().with_weight(3.0),
                moe_workload::ClassSpec::batch(),
            ],
            ..Default::default()
        };
        let s = serving(profile);
        assert_eq!(s.classes.len(), 2);
        assert_eq!(s.classes[0].class, RequestClass::Interactive);
        assert_eq!(s.classes[1].class, RequestClass::Batch);
        let total: usize = s.classes.iter().map(|c| c.completed).sum();
        assert_eq!(total, s.completed);
        assert!(s.classes[0].completed > 0, "interactive share never served");
    }

    #[test]
    fn trace_replay_profile_drives_scheduled_mode() {
        let (topo, table, plan) = fixture();
        let rows: Vec<moe_workload::TraceRequest> = (0..20)
            .map(|i| moe_workload::TraceRequest {
                arrival: 1e-6 * i as f64,
                scenario: Scenario::Privacy,
                input_len: 64,
                output_len: 8,
                class: RequestClass::Interactive,
            })
            .collect();
        let profile = WorkloadProfile {
            arrivals: moe_workload::ArrivalSpec::Trace(rows),
            ..Default::default()
        };
        let config = EngineConfig::new(small_model())
            .with_seed(23)
            .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
            .with_workload_profile(profile)
            .with_batch(BatchMode::Scheduled {
                mode: SchedulingMode::Hybrid,
                max_batch_tokens: 2048,
                max_active: 128,
                request_rate: 2000.0, // ignored by replay sources
                iteration_period: 0.02,
            });
        let mut engine = InferenceEngine::new(&topo, &table, &plan, config);
        engine.run(600);
        let s = engine.serving_summary();
        assert_eq!(s.completed, 20, "every trace row served exactly once");
        assert_eq!(s.admission_rejects, 0);
    }

    #[test]
    fn validate_reports_exact_variants() {
        use crate::config::ConfigError;
        let base = || EngineConfig::new(small_model());
        assert_eq!(base().validate(), Ok(()));

        let mut c = base();
        c.comm_layer_stride = 0;
        assert_eq!(c.validate(), Err(ConfigError::CommLayerStrideZero));

        let mut c = base();
        c.pipeline_microbatches = 0;
        assert_eq!(c.validate(), Err(ConfigError::PipelineMicrobatchesZero));

        let mut c = base();
        c.kv_hbm_fraction = 0.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::KvHbmFractionOutOfRange { value: 0.0 })
        );
        c.kv_hbm_fraction = 1.5;
        assert_eq!(
            c.validate(),
            Err(ConfigError::KvHbmFractionOutOfRange { value: 1.5 })
        );

        let mut c = base();
        c.load_ema = 0.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::LoadEmaOutOfRange { value: 0.0 })
        );
        c.load_ema = 1.25;
        assert_eq!(
            c.validate(),
            Err(ConfigError::LoadEmaOutOfRange { value: 1.25 })
        );

        let c = base().with_cache_entries(0);
        assert_eq!(c.validate(), Err(ConfigError::CacheEntriesZero));
    }

    #[test]
    fn try_new_surfaces_validation_and_new_panics() {
        use crate::config::ConfigError;
        let (topo, table, plan) = fixture();
        let mut config = EngineConfig::new(small_model());
        config.comm_layer_stride = 0;
        let err = InferenceEngine::try_new(&topo, &table, &plan, config).err();
        assert_eq!(err, Some(ConfigError::CommLayerStrideZero));
    }

    #[test]
    #[should_panic(expected = "stride must be ≥ 1")]
    fn new_panics_on_zero_stride() {
        let (topo, table, plan) = fixture();
        let mut config = EngineConfig::new(small_model());
        config.comm_layer_stride = 0;
        let _ = InferenceEngine::new(&topo, &table, &plan, config);
    }

    #[test]
    fn cache_entries_knob_reaches_backend() {
        let (topo, table, plan) = fixture();
        // A 1-entry cache still prices correctly (bit-identity contract is
        // capacity-independent), proving the knob is threaded through.
        let run = |entries: usize| {
            let config = EngineConfig::new(small_model())
                .with_seed(9)
                .with_backend(CongestionBackend::FlowSimCached)
                .with_cache_entries(entries);
            InferenceEngine::new(&topo, &table, &plan, config).run(3)
        };
        let tiny = run(1);
        let default = run(wsc_sim::DEFAULT_CACHE_ENTRIES);
        assert_eq!(tiny.mean_iteration_time, default.mean_iteration_time);
        assert_eq!(tiny.mean_all_to_all, default.mean_all_to_all);
    }
}
