//! Typed configuration validation: the single [`ConfigError`] enum.
//!
//! Every constructor in the stack that used to die in a bare `assert!` deep
//! inside [`InferenceEngine::new`](crate::engine::InferenceEngine::new) or
//! [`Fleet::new`](crate::fleet::Fleet::new) now reports through this enum:
//! [`EngineConfig::validate`](crate::engine::EngineConfig::validate) checks
//! the engine knobs, [`InferenceEngine::try_new`] /
//! [`Fleet::try_new`](crate::fleet::Fleet::try_new) surface the same checks
//! as `Result`s, and the declarative scenario layer (`moentwine-spec`)
//! reuses the enum for spec-level failures (unknown presets, malformed
//! JSON, schema mismatches), so a scenario file fails with one typed error
//! wherever in the tree the inconsistency lives.
//!
//! The old panicking constructors survive as thin wrappers that format the
//! [`ConfigError`], so existing call sites and `should_panic` contracts are
//! unchanged.
//!
//! [`InferenceEngine::try_new`]: crate::engine::InferenceEngine::try_new

use crate::mapping::MappingError;

/// Why a configuration (an [`EngineConfig`](crate::engine::EngineConfig), a
/// [`FleetConfig`](crate::fleet::FleetConfig), or a `moentwine-spec`
/// scenario tree) cannot be materialized.
#[derive(Clone, PartialEq, Debug)]
pub enum ConfigError {
    /// `comm_layer_stride` must be ≥ 1 (1 = estimate every layer).
    CommLayerStrideZero,
    /// `pipeline_microbatches` must be ≥ 1 (the overlap model divides by it).
    PipelineMicrobatchesZero,
    /// `kv_hbm_fraction` must be in `(0, 1]`: the serving admission budget
    /// is a positive share of aggregate HBM.
    KvHbmFractionOutOfRange {
        /// The rejected value.
        value: f64,
    },
    /// `load_ema` must be in `(0, 1]` (EMA factor of historical loads).
    LoadEmaOutOfRange {
        /// The rejected value.
        value: f64,
    },
    /// `cache_entries` must be ≥ 1: the memoizing backend needs at least
    /// one schedule slot.
    CacheEntriesZero,
    /// A fleet needs at least one replica.
    ReplicasZero,
    /// Fleet replicas need a serving batch mode
    /// ([`BatchMode::Scheduled`](crate::engine::BatchMode::Scheduled) or
    /// [`BatchMode::External`](crate::engine::BatchMode::External)), not
    /// [`BatchMode::Fixed`](crate::engine::BatchMode::Fixed).
    FleetNeedsServingBatch,
    /// Fleet event times must be finite, non-negative, and non-decreasing;
    /// `index` is the first event out of order.
    FleetEventsUnsorted {
        /// Position of the offending event in the timeline.
        index: usize,
    },
    /// A fleet event names a replica outside the fleet as sized at that
    /// point in the timeline (scale-ups extend the valid range).
    FleetEventReplicaOutOfRange {
        /// Position of the offending event in the timeline.
        index: usize,
        /// The out-of-range replica index.
        replica: usize,
        /// Fleet size at that point in the timeline.
        replicas: usize,
    },
    /// A fleet event is a no-op or an invalid lifecycle transition
    /// (draining a non-active replica, recovering a replica that never
    /// failed, a zero-count scale-up, ...).
    FleetEventNoOp {
        /// Position of the offending event in the timeline.
        index: usize,
    },
    /// A fleet event would leave no active replica to route arrivals to.
    FleetEventLeavesNoReplicas {
        /// Position of the offending event in the timeline.
        index: usize,
    },
    /// A fleet role list must either be empty (all replicas colocated) or
    /// name a role for every initial replica.
    FleetRolesLengthMismatch {
        /// Number of roles supplied.
        roles: usize,
        /// Number of initial replicas.
        replicas: usize,
    },
    /// A disaggregated fleet needs at least one prefill-capable replica
    /// (`Colocated` or `Prefill`) to accept arrivals.
    FleetNoPrefillCapacity,
    /// A disaggregated fleet needs at least one decode-capable replica
    /// (`Colocated` or `Decode`) to accept KV hand-offs.
    FleetNoDecodeCapacity,
    /// A decode platform was supplied but no replica carries the `Decode`
    /// role, so nothing would ever run on it.
    FleetDecodePlatformUnused,
    /// A fleet event would leave no prefill-capable replica to route
    /// arrivals to.
    FleetEventLeavesNoPrefillCapacity {
        /// Position of the offending event in the timeline.
        index: usize,
    },
    /// A fleet event would leave no decode-capable replica to deliver KV
    /// hand-offs to.
    FleetEventLeavesNoDecodeCapacity {
        /// Position of the offending event in the timeline.
        index: usize,
    },
    /// A mapping could not be constructed for the requested platform
    /// (TP degree does not tile, no mesh dimensions, ...).
    Mapping(MappingError),
    /// The workload profile (arrival shape, trace, or tenant classes) is
    /// invalid.
    Workload(moe_workload::WorkloadError),
    /// A spec-level failure: `context` names the field or section, and
    /// `message` says what is wrong with it.
    Spec {
        /// The offending field or section (e.g. `"platform.kind"`).
        context: String,
        /// What went wrong.
        message: String,
    },
    /// The document is not valid JSON.
    Json(moentwine_json::ParseError),
    /// The document carries the wrong (or no) schema tag.
    SchemaMismatch {
        /// The tag found in the document, or an empty string when missing.
        found: String,
        /// The tag that was required.
        expected: String,
    },
}

impl ConfigError {
    /// Shorthand for a [`ConfigError::Spec`] failure.
    pub fn spec(context: impl Into<String>, message: impl Into<String>) -> Self {
        ConfigError::Spec {
            context: context.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::CommLayerStrideZero => {
                write!(f, "comm_layer_stride must be ≥ 1 (stride must be ≥ 1)")
            }
            ConfigError::PipelineMicrobatchesZero => {
                write!(
                    f,
                    "pipeline_microbatches must be ≥ 1 (need ≥ 1 micro-batch)"
                )
            }
            ConfigError::KvHbmFractionOutOfRange { value } => {
                write!(f, "kv_hbm_fraction must be in (0, 1], got {value}")
            }
            ConfigError::LoadEmaOutOfRange { value } => {
                write!(f, "EMA factor must be in (0, 1], got {value}")
            }
            ConfigError::CacheEntriesZero => {
                write!(f, "cache_entries must be ≥ 1")
            }
            ConfigError::ReplicasZero => write!(f, "need at least one replica"),
            ConfigError::FleetNeedsServingBatch => {
                write!(
                    f,
                    "fleet replicas need a serving batch mode, not BatchMode::Fixed"
                )
            }
            ConfigError::FleetEventsUnsorted { index } => {
                write!(
                    f,
                    "fleet event {index}: times must be finite, non-negative, and sorted"
                )
            }
            ConfigError::FleetEventReplicaOutOfRange {
                index,
                replica,
                replicas,
            } => {
                write!(
                    f,
                    "fleet event {index}: replica {replica} out of range (fleet has {replicas})"
                )
            }
            ConfigError::FleetEventNoOp { index } => {
                write!(
                    f,
                    "fleet event {index}: no-op or invalid lifecycle transition"
                )
            }
            ConfigError::FleetEventLeavesNoReplicas { index } => {
                write!(
                    f,
                    "fleet event {index}: leaves no active replica to route to"
                )
            }
            ConfigError::FleetRolesLengthMismatch { roles, replicas } => {
                write!(
                    f,
                    "fleet roles: {roles} roles for {replicas} replicas (must be empty or match)"
                )
            }
            ConfigError::FleetNoPrefillCapacity => {
                write!(f, "fleet roles: no prefill-capable replica for arrivals")
            }
            ConfigError::FleetNoDecodeCapacity => {
                write!(f, "fleet roles: no decode-capable replica for KV hand-offs")
            }
            ConfigError::FleetDecodePlatformUnused => {
                write!(
                    f,
                    "fleet decode_platform set but no replica has the decode role"
                )
            }
            ConfigError::FleetEventLeavesNoPrefillCapacity { index } => {
                write!(
                    f,
                    "fleet event {index}: leaves no prefill-capable replica for arrivals"
                )
            }
            ConfigError::FleetEventLeavesNoDecodeCapacity { index } => {
                write!(
                    f,
                    "fleet event {index}: leaves no decode-capable replica for KV hand-offs"
                )
            }
            ConfigError::Mapping(e) => write!(f, "mapping: {e}"),
            ConfigError::Workload(e) => write!(f, "workload: {e}"),
            ConfigError::Spec { context, message } => write!(f, "{context}: {message}"),
            ConfigError::Json(e) => write!(f, "{e}"),
            ConfigError::SchemaMismatch { found, expected } => {
                if found.is_empty() {
                    write!(f, "missing schema tag (expected {expected:?})")
                } else {
                    write!(f, "schema {found:?}, expected {expected:?}")
                }
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<MappingError> for ConfigError {
    fn from(e: MappingError) -> Self {
        ConfigError::Mapping(e)
    }
}

impl From<moe_workload::WorkloadError> for ConfigError {
    fn from(e: moe_workload::WorkloadError) -> Self {
        ConfigError::Workload(e)
    }
}

impl From<moentwine_json::ParseError> for ConfigError {
    fn from(e: moentwine_json::ParseError) -> Self {
        ConfigError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_stable() {
        // The panicking wrappers surface these texts; the fleet one is
        // pinned by a `should_panic(expected = "serving batch mode")` test.
        assert!(ConfigError::FleetNeedsServingBatch
            .to_string()
            .contains("serving batch mode"));
        assert!(ConfigError::CommLayerStrideZero
            .to_string()
            .contains("stride must be ≥ 1"));
        assert!(ConfigError::LoadEmaOutOfRange { value: 2.0 }
            .to_string()
            .contains("(0, 1]"));
        assert!(ConfigError::FleetEventsUnsorted { index: 2 }
            .to_string()
            .contains("fleet event 2"));
        assert_eq!(
            ConfigError::FleetEventReplicaOutOfRange {
                index: 0,
                replica: 9,
                replicas: 4,
            }
            .to_string(),
            "fleet event 0: replica 9 out of range (fleet has 4)"
        );
        assert!(ConfigError::FleetEventNoOp { index: 1 }
            .to_string()
            .contains("no-op or invalid"));
        assert!(ConfigError::FleetEventLeavesNoReplicas { index: 3 }
            .to_string()
            .contains("no active replica"));
        assert_eq!(
            ConfigError::FleetRolesLengthMismatch {
                roles: 3,
                replicas: 4,
            }
            .to_string(),
            "fleet roles: 3 roles for 4 replicas (must be empty or match)"
        );
        assert!(ConfigError::FleetNoPrefillCapacity
            .to_string()
            .contains("no prefill-capable replica"));
        assert!(ConfigError::FleetNoDecodeCapacity
            .to_string()
            .contains("no decode-capable replica"));
        assert!(ConfigError::FleetDecodePlatformUnused
            .to_string()
            .contains("decode_platform"));
        assert!(ConfigError::FleetEventLeavesNoPrefillCapacity { index: 2 }
            .to_string()
            .contains("fleet event 2"));
        assert!(ConfigError::FleetEventLeavesNoDecodeCapacity { index: 5 }
            .to_string()
            .contains("no decode-capable replica"));
        assert_eq!(
            ConfigError::Workload(moe_workload::WorkloadError::NonPositiveRate { value: 0.0 })
                .to_string(),
            "workload: rate must be positive, got 0"
        );
    }

    #[test]
    fn json_and_mapping_errors_convert() {
        let parse = moentwine_json::Value::parse("{").unwrap_err();
        assert!(matches!(ConfigError::from(parse), ConfigError::Json(_)));
        let spec = ConfigError::spec("platform.kind", "unknown kind \"torus\"");
        assert_eq!(spec.to_string(), "platform.kind: unknown kind \"torus\"");
    }
}
