//! Per-layer expert placement with shadow slots.

use serde::{Deserialize, Serialize};
use wsc_topology::DeviceId;

/// Index of an expert within one MoE layer.
pub type ExpertId = usize;

/// Where every expert of one MoE layer lives: a fixed *primary* device per
/// expert, plus dynamic *shadow replicas* occupying reserved slots on other
/// devices (the shadow-expert strategy of paper Fig. 7a).
///
/// Tokens routed to an expert are split evenly across its replicas (the
/// `Load_e / Num_e` sharing of Algorithm 1).
///
/// # Example
///
/// ```
/// use moentwine_core::placement::ExpertPlacement;
/// use wsc_topology::DeviceId;
///
/// let mut p = ExpertPlacement::balanced(8, 4, 1);
/// assert_eq!(p.primary_device(0), DeviceId(0));
/// assert_eq!(p.num_replicas(0), 1);
/// p.add_replica(0, DeviceId(3)).unwrap();
/// assert_eq!(p.num_replicas(0), 2);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ExpertPlacement {
    num_experts: usize,
    num_devices: usize,
    slots_per_device: usize,
    /// `replicas[e]` — devices hosting expert `e`; the primary is first.
    replicas: Vec<Vec<DeviceId>>,
    /// `shadow[d]` — experts occupying shadow slots on device `d`.
    shadow: Vec<Vec<ExpertId>>,
    /// `primary[d]` — experts whose primary home is device `d`.
    primary: Vec<Vec<ExpertId>>,
}

/// Errors from placement mutation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PlacementError {
    /// The target device has no free shadow slot.
    NoFreeSlot {
        /// The saturated device.
        device: DeviceId,
    },
    /// The device already hosts this expert.
    AlreadyHosted {
        /// The expert in question.
        expert: ExpertId,
        /// The hosting device.
        device: DeviceId,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoFreeSlot { device } => {
                write!(f, "device {device} has no free shadow slot")
            }
            PlacementError::AlreadyHosted { expert, device } => {
                write!(f, "expert {expert} is already hosted on {device}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

impl ExpertPlacement {
    /// The canonical initial layout: expert `e`'s primary home is device
    /// `e·D/E` (contiguous blocks when `E ≥ D`, strided spread when
    /// `E < D`), with `slots_per_device` empty shadow slots everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `num_experts` or `num_devices` is zero.
    pub fn balanced(num_experts: usize, num_devices: usize, slots_per_device: usize) -> Self {
        assert!(num_experts > 0, "need at least one expert");
        assert!(num_devices > 0, "need at least one device");
        let mut replicas = Vec::with_capacity(num_experts);
        let mut primary = vec![Vec::new(); num_devices];
        for e in 0..num_experts {
            let d = DeviceId((e * num_devices / num_experts) as u32);
            replicas.push(vec![d]);
            primary[d.index()].push(e);
        }
        ExpertPlacement {
            num_experts,
            num_devices,
            slots_per_device,
            replicas,
            shadow: vec![Vec::new(); num_devices],
            primary,
        }
    }

    /// Number of experts in the layer.
    pub fn num_experts(&self) -> usize {
        self.num_experts
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Shadow slots per device.
    pub fn slots_per_device(&self) -> usize {
        self.slots_per_device
    }

    /// Devices hosting expert `e` (primary first).
    pub fn replicas(&self, e: ExpertId) -> &[DeviceId] {
        &self.replicas[e]
    }

    /// Number of devices hosting expert `e` (the `Num_e` of Algorithm 1).
    pub fn num_replicas(&self, e: ExpertId) -> usize {
        self.replicas[e].len()
    }

    /// The fixed primary home of expert `e`.
    pub fn primary_device(&self, e: ExpertId) -> DeviceId {
        self.replicas[e][0]
    }

    /// Experts whose primary home is `d`.
    pub fn primary_experts(&self, d: DeviceId) -> &[ExpertId] {
        &self.primary[d.index()]
    }

    /// Experts occupying shadow slots on `d`.
    pub fn shadow_experts(&self, d: DeviceId) -> &[ExpertId] {
        &self.shadow[d.index()]
    }

    /// All experts hosted on `d` (primary then shadow).
    pub fn device_experts(&self, d: DeviceId) -> Vec<ExpertId> {
        let mut all = self.primary[d.index()].clone();
        all.extend_from_slice(&self.shadow[d.index()]);
        all
    }

    /// Whether `d` hosts expert `e` (as primary or shadow).
    pub fn hosts(&self, d: DeviceId, e: ExpertId) -> bool {
        self.replicas[e].contains(&d)
    }

    /// Whether `d` has at least one unoccupied shadow slot.
    pub fn has_free_slot(&self, d: DeviceId) -> bool {
        self.shadow[d.index()].len() < self.slots_per_device
    }

    /// Installs a shadow replica of `e` on `d`.
    ///
    /// # Errors
    ///
    /// Fails if `d` already hosts `e` or has no free slot.
    pub fn add_replica(&mut self, e: ExpertId, d: DeviceId) -> Result<(), PlacementError> {
        if self.hosts(d, e) {
            return Err(PlacementError::AlreadyHosted {
                expert: e,
                device: d,
            });
        }
        if !self.has_free_slot(d) {
            return Err(PlacementError::NoFreeSlot { device: d });
        }
        self.shadow[d.index()].push(e);
        self.replicas[e].push(d);
        Ok(())
    }

    /// Removes the shadow replica of `e` on `d`, freeing its slot. Returns
    /// `false` if `d` held no shadow replica of `e` (primaries are never
    /// removed).
    pub fn remove_replica(&mut self, e: ExpertId, d: DeviceId) -> bool {
        let Some(pos) = self.shadow[d.index()].iter().position(|&x| x == e) else {
            return false;
        };
        self.shadow[d.index()].remove(pos);
        let rpos = self.replicas[e]
            .iter()
            .position(|&x| x == d)
            .expect("replica list consistent with shadow list");
        debug_assert!(rpos > 0, "primary replicas are not removable");
        self.replicas[e].remove(rpos);
        true
    }

    /// Per-device expected token load given per-expert loads, with each
    /// expert's load split evenly across its replicas. Returns a vector
    /// indexed by device.
    pub fn device_loads(&self, expert_loads: &[f64]) -> Vec<f64> {
        let mut loads = vec![0.0; self.num_devices];
        for (e, replicas) in self.replicas.iter().enumerate() {
            let share = expert_loads[e] / replicas.len() as f64;
            for &d in replicas {
                loads[d.index()] += share;
            }
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_spreads_experts() {
        // E > D: contiguous blocks.
        let p = ExpertPlacement::balanced(8, 4, 1);
        assert_eq!(p.primary_experts(DeviceId(0)), &[0, 1]);
        assert_eq!(p.primary_experts(DeviceId(3)), &[6, 7]);
        // E < D: strided spread, some devices empty.
        let p = ExpertPlacement::balanced(4, 8, 1);
        assert_eq!(p.primary_device(1), DeviceId(2));
        assert!(p.primary_experts(DeviceId(1)).is_empty());
    }

    #[test]
    fn add_remove_replica_roundtrip() {
        let mut p = ExpertPlacement::balanced(4, 4, 1);
        p.add_replica(2, DeviceId(0)).unwrap();
        assert!(p.hosts(DeviceId(0), 2));
        assert!(!p.has_free_slot(DeviceId(0)));
        assert!(p.remove_replica(2, DeviceId(0)));
        assert!(p.has_free_slot(DeviceId(0)));
        assert!(!p.remove_replica(2, DeviceId(0)));
    }

    #[test]
    fn slot_exhaustion_errors() {
        let mut p = ExpertPlacement::balanced(8, 2, 1);
        p.add_replica(4, DeviceId(0)).unwrap();
        let err = p.add_replica(5, DeviceId(0)).unwrap_err();
        assert_eq!(
            err,
            PlacementError::NoFreeSlot {
                device: DeviceId(0)
            }
        );
    }

    #[test]
    fn duplicate_host_rejected() {
        let mut p = ExpertPlacement::balanced(4, 4, 2);
        let err = p.add_replica(0, DeviceId(0)).unwrap_err();
        assert!(matches!(err, PlacementError::AlreadyHosted { .. }));
    }

    #[test]
    fn device_loads_split_across_replicas() {
        let mut p = ExpertPlacement::balanced(2, 2, 1);
        // expert 0 on device 0, expert 1 on device 1.
        let loads = p.device_loads(&[10.0, 2.0]);
        assert_eq!(loads, vec![10.0, 2.0]);
        p.add_replica(0, DeviceId(1)).unwrap();
        let loads = p.device_loads(&[10.0, 2.0]);
        assert_eq!(loads, vec![5.0, 7.0]);
    }

    #[test]
    fn primaries_not_removable() {
        let mut p = ExpertPlacement::balanced(2, 2, 1);
        assert!(!p.remove_replica(0, DeviceId(0)));
        assert!(p.hosts(DeviceId(0), 0));
    }
}
