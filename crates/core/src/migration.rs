//! Expert migration execution: invasive and non-invasive.
//!
//! A replication decision moves an expert's weights (tens to hundreds of
//! MiB) across the fabric. The paper contrasts:
//!
//! * **Invasive** execution — the transfer runs on the already-busy network
//!   between iterations, stalling inference (Fig. 7b); the stall is priced
//!   with the analytical model over the migration routes.
//! * **Non-invasive** execution — the NI-Balancer decomposes the route into
//!   **Local** (intra-FTD) and **Global** (inter-FTD) segments (Fig. 11d)
//!   and drains each on the links left cold by the current phase: Local
//!   segments progress during attention/all-reduce, Global segments during
//!   MoE/all-to-all. Zero critical-path overhead, but the replica only
//!   activates once the last segment lands — balancing is delayed, not
//!   degraded.

use serde::{Deserialize, Serialize};
use wsc_sim::{AnalyticEstimate, CongestionModel};
use wsc_topology::{DeviceId, RouteTable, Topology};

use crate::balancer::BalanceAction;
use crate::comm::ParallelLayout;
use crate::placement::ExpertId;

/// Which phase's cold links a migration segment may use.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MigrationPhase {
    /// Intra-FTD segment: executes during attention (all-reduce leaves
    /// intra-FTD links cold).
    Local,
    /// Inter-FTD segment: executes during MoE (all-to-all is confined
    /// within FTDs, leaving inter-FTD links cold).
    Global,
}

/// One store-and-forward hop group of a migration route.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct MigrationSegment {
    /// Phase whose cold links carry this segment.
    pub phase: MigrationPhase,
    /// Payload bytes (the full expert weights).
    pub bytes: f64,
}

/// A migration in progress.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct InFlightMigration {
    /// Sparse-layer index.
    pub layer: usize,
    /// The expert being replicated.
    pub expert: ExpertId,
    /// Replica the weights are read from.
    pub source: DeviceId,
    /// Device receiving the new replica.
    pub target: DeviceId,
    /// Remaining segments (front is active).
    pub segments: Vec<MigrationSegment>,
    /// Bytes already moved within the active segment.
    pub progress: f64,
}

/// A migration that finished this phase; the engine activates the replica.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CompletedMigration {
    /// Sparse-layer index.
    pub layer: usize,
    /// The replicated expert.
    pub expert: ExpertId,
    /// Device that received the replica.
    pub target: DeviceId,
}

/// Decomposes a migration route into Local/Global segments using the
/// layout's FTD structure (paper Fig. 11d: Local → Global → Local). When the
/// layout defines no FTDs (clusters), the whole route is one Local segment.
pub fn decompose_route(
    topo: &Topology,
    table: &RouteTable,
    layout: &dyn ParallelLayout,
    source: DeviceId,
    target: DeviceId,
    bytes: f64,
) -> Vec<MigrationSegment> {
    let route = table.route(source, target);
    if route.is_empty() {
        return Vec::new();
    }
    let Some(_) = layout.ftd_of_device(source) else {
        return vec![MigrationSegment {
            phase: MigrationPhase::Local,
            bytes,
        }];
    };
    let mut segments: Vec<MigrationSegment> = Vec::new();
    for &l in route.links() {
        let link = topo.link(l);
        let (src_dev, dst_dev) = (
            topo.node_device(link.src)
                .expect("mesh link endpoints are devices"),
            topo.node_device(link.dst)
                .expect("mesh link endpoints are devices"),
        );
        let phase = if layout.ftd_of_device(src_dev) == layout.ftd_of_device(dst_dev) {
            MigrationPhase::Local
        } else {
            MigrationPhase::Global
        };
        match segments.last_mut() {
            Some(last) if last.phase == phase => {} // same store-and-forward leg
            _ => segments.push(MigrationSegment { phase, bytes }),
        }
    }
    segments
}

/// Tracks in-flight non-invasive migrations and drains them on phase-cold
/// links.
///
/// `cold_bandwidth` is the per-migration bandwidth available on the cold
/// links (a full on-wafer link under the Fig. 11 complementarity analysis;
/// the NVMe channel bandwidth for the NVL72 baseline).
#[derive(Clone, Debug)]
pub struct MigrationEngine {
    cold_bandwidth: f64,
    /// Clusters have no phase structure for migrations: drain in any phase.
    phase_agnostic: bool,
    in_flight: Vec<InFlightMigration>,
    /// Total bytes moved (statistics).
    pub bytes_moved: f64,
    /// Total migrations completed (statistics).
    pub migrations_completed: u64,
}

impl MigrationEngine {
    /// Creates an engine draining segments at `cold_bandwidth` bytes/s.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive.
    pub fn new(cold_bandwidth: f64) -> Self {
        assert!(cold_bandwidth > 0.0, "bandwidth must be positive");
        MigrationEngine {
            cold_bandwidth,
            phase_agnostic: false,
            in_flight: Vec::new(),
            bytes_moved: 0.0,
            migrations_completed: 0,
        }
    }

    /// Makes every phase eligible for every segment (NVMe-style side
    /// channels on GPU clusters).
    pub fn phase_agnostic(mut self) -> Self {
        self.phase_agnostic = true;
        self
    }

    /// Number of migrations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Queues a replication for background execution.
    pub fn enqueue(
        &mut self,
        layer: usize,
        expert: ExpertId,
        source: DeviceId,
        target: DeviceId,
        segments: Vec<MigrationSegment>,
    ) {
        if segments.is_empty() {
            // Degenerate co-located migration: complete instantly on next
            // advance by inserting a zero-byte local segment.
            self.in_flight.push(InFlightMigration {
                layer,
                expert,
                source,
                target,
                segments: vec![MigrationSegment {
                    phase: MigrationPhase::Local,
                    bytes: 0.0,
                }],
                progress: 0.0,
            });
            return;
        }
        self.in_flight.push(InFlightMigration {
            layer,
            expert,
            source,
            target,
            segments,
            progress: 0.0,
        });
    }

    /// Whether a migration for `(layer, expert, target)` is already queued.
    pub fn is_pending(&self, layer: usize, expert: ExpertId, target: DeviceId) -> bool {
        self.in_flight
            .iter()
            .any(|m| m.layer == layer && m.expert == expert && m.target == target)
    }

    /// Advances all in-flight migrations through a phase window of
    /// `duration` seconds, returning the migrations that completed.
    pub fn advance(&mut self, phase: MigrationPhase, duration: f64) -> Vec<CompletedMigration> {
        let mut done = Vec::new();
        let budget = self.cold_bandwidth * duration;
        let mut i = 0;
        while i < self.in_flight.len() {
            let m = &mut self.in_flight[i];
            let mut remaining_budget = budget;
            while let Some(seg) = m.segments.first().copied() {
                if !(self.phase_agnostic || seg.phase == phase) {
                    break;
                }
                let needed = seg.bytes - m.progress;
                if needed <= remaining_budget {
                    remaining_budget -= needed;
                    self.bytes_moved += needed;
                    m.segments.remove(0);
                    m.progress = 0.0;
                    // A store-and-forward boundary: the next segment may be
                    // the other phase, in which case we stop here.
                } else {
                    m.progress += remaining_budget;
                    self.bytes_moved += remaining_budget;
                    break;
                }
                if remaining_budget <= 0.0 {
                    break;
                }
            }
            if m.segments.is_empty() {
                let m = self.in_flight.swap_remove(i);
                self.migrations_completed += 1;
                done.push(CompletedMigration {
                    layer: m.layer,
                    expert: m.expert,
                    target: m.target,
                });
            } else {
                i += 1;
            }
        }
        done
    }

    /// Drops every queued migration (used when a run resets placement).
    pub fn clear(&mut self) {
        self.in_flight.clear();
    }
}

/// Prices the inference stall caused by executing `transfers` invasively on
/// the busy fabric (paper Fig. 7b): all migrations run concurrently, and the
/// configured [`CongestionModel`] backend decides how they contend.
pub fn invasive_stall(
    backend: &dyn CongestionModel,
    table: &RouteTable,
    transfers: &[(DeviceId, DeviceId, f64)],
) -> AnalyticEstimate {
    backend.price_pairs(table, transfers)
}

/// Converts balancer actions into enqueue calls, returning the release
/// actions that must be applied immediately (releases move no data).
pub fn enqueue_replications(
    engine: &mut MigrationEngine,
    topo: &Topology,
    table: &RouteTable,
    layout: &dyn ParallelLayout,
    actions: &[BalanceAction],
    expert_bytes: f64,
) -> Vec<BalanceAction> {
    let mut releases = Vec::new();
    for action in actions {
        match *action {
            BalanceAction::Replicate {
                layer,
                expert,
                source,
                target,
            } => {
                if !engine.is_pending(layer, expert, target) {
                    let segments =
                        decompose_route(topo, table, layout, source, target, expert_bytes);
                    engine.enqueue(layer, expert, source, target, segments);
                }
            }
            BalanceAction::Release { .. } => releases.push(*action),
        }
    }
    releases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{ErMapping, TpShape};
    use wsc_topology::{Mesh, PlatformParams};

    fn fixture() -> (Topology, RouteTable, crate::mapping::MappingPlan) {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::new(topo.mesh_dims().unwrap(), TpShape::new(2, 2))
            .unwrap()
            .plan();
        (topo, table, plan)
    }

    #[test]
    fn route_decomposes_local_global_local() {
        let (topo, table, plan) = fixture();
        // (0,0) [FTD 0] to (3,3) [FTD 3]: XY route crosses FTD borders.
        let src = topo.device_at_xy(0, 0).unwrap();
        let dst = topo.device_at_xy(3, 3).unwrap();
        let segs = decompose_route(&topo, &table, &plan, src, dst, 42.0e6);
        assert!(segs.len() >= 2, "{segs:?}");
        assert!(segs.iter().any(|s| s.phase == MigrationPhase::Global));
        // Alternation: no two consecutive segments share a phase.
        for w in segs.windows(2) {
            assert_ne!(w[0].phase, w[1].phase);
        }
    }

    #[test]
    fn intra_ftd_migration_is_all_local() {
        let (topo, table, plan) = fixture();
        let src = topo.device_at_xy(0, 0).unwrap();
        let dst = topo.device_at_xy(1, 1).unwrap();
        assert_eq!(plan.ftd_of(src), plan.ftd_of(dst));
        let segs = decompose_route(&topo, &table, &plan, src, dst, 1.0e6);
        assert!(segs.iter().all(|s| s.phase == MigrationPhase::Local));
    }

    #[test]
    fn migration_progresses_only_in_matching_phase() {
        let (topo, table, plan) = fixture();
        let src = topo.device_at_xy(0, 0).unwrap();
        let dst = topo.device_at_xy(2, 0).unwrap(); // neighbouring FTD
        let bytes = 1.0e6;
        let segs = decompose_route(&topo, &table, &plan, src, dst, bytes);
        let mut engine = MigrationEngine::new(1.0e9); // 1 GB/s cold links
        engine.enqueue(0, 7, src, dst, segs);
        // Global-only phases cannot start a Local first segment.
        assert!(engine.advance(MigrationPhase::Global, 1.0).is_empty());
        assert_eq!(engine.in_flight(), 1);
        // One long Local phase finishes the local leg; then Global completes.
        assert!(engine.advance(MigrationPhase::Local, 1.0).is_empty());
        let done = engine.advance(MigrationPhase::Global, 1.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].expert, 7);
        assert_eq!(engine.in_flight(), 0);
    }

    #[test]
    fn partial_progress_accumulates_across_windows() {
        let (topo, table, plan) = fixture();
        let src = topo.device_at_xy(0, 0).unwrap();
        let dst = topo.device_at_xy(1, 0).unwrap(); // same FTD: one Local seg
        let segs = decompose_route(&topo, &table, &plan, src, dst, 10.0);
        let mut engine = MigrationEngine::new(1.0); // 1 B/s
        engine.enqueue(0, 0, src, dst, segs);
        for _ in 0..9 {
            assert!(engine.advance(MigrationPhase::Local, 1.0).is_empty());
        }
        assert_eq!(engine.advance(MigrationPhase::Local, 1.0).len(), 1);
        assert!((engine.bytes_moved - 10.0).abs() < 1e-9);
    }

    #[test]
    fn phase_agnostic_mode_ignores_phase() {
        let (topo, table, plan) = fixture();
        let src = topo.device_at_xy(0, 0).unwrap();
        let dst = topo.device_at_xy(3, 3).unwrap();
        let segs = decompose_route(&topo, &table, &plan, src, dst, 6.0);
        let mut engine = MigrationEngine::new(100.0).phase_agnostic();
        engine.enqueue(0, 0, src, dst, segs);
        let done = engine.advance(MigrationPhase::Global, 1.0);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn invasive_stall_priced_identically_by_des_and_cached_des() {
        use wsc_sim::CongestionBackend;
        let (topo, table, _plan) = fixture();
        let transfers = vec![
            (
                topo.device_at_xy(0, 0).unwrap(),
                topo.device_at_xy(3, 3).unwrap(),
                42.0e6,
            ),
            (
                topo.device_at_xy(2, 0).unwrap(),
                topo.device_at_xy(0, 2).unwrap(),
                42.0e6,
            ),
        ];
        let des = invasive_stall(
            CongestionBackend::FlowSim.build(&topo).as_ref(),
            &table,
            &transfers,
        );
        let cached_backend = CongestionBackend::FlowSimCached.build(&topo);
        // Miss then hit: both must be the DES estimate, bit-for-bit.
        for _ in 0..2 {
            let cached = invasive_stall(cached_backend.as_ref(), &table, &transfers);
            assert_eq!(des, cached);
        }
        assert!(des.total_time > 0.0);
    }

    #[test]
    fn duplicate_enqueue_detected() {
        let (topo, table, plan) = fixture();
        let src = topo.device_at_xy(0, 0).unwrap();
        let dst = topo.device_at_xy(1, 0).unwrap();
        let mut engine = MigrationEngine::new(1.0);
        let actions = vec![
            BalanceAction::Replicate {
                layer: 2,
                expert: 5,
                source: src,
                target: dst,
            };
            2
        ];
        enqueue_replications(&mut engine, &topo, &table, &plan, &actions, 100.0);
        assert_eq!(engine.in_flight(), 1);
        assert!(engine.is_pending(2, 5, dst));
    }
}
