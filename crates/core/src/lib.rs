//! MoEntwine core: the paper's contributions.
//!
//! This crate implements the two techniques of *MoEntwine: Unleashing the
//! Potential of Wafer-Scale Chips for Large-Scale Expert Parallel Inference*
//! (HPCA 2026) on top of the workspace substrates:
//!
//! * [`mapping`] — the **Full Token Domain** analysis framework and the
//!   three parallelism mappings: baseline corner blocks, **ER-Mapping**
//!   (entwined rings, Fig. 10a), and **HER-Mapping** (hierarchical, for
//!   multi-wafer systems).
//! * [`comm`] — compiles a mapping plus a gating outcome into attention
//!   all-reduce schedules and MoE dispatch/combine transfer sets.
//! * [`config`] — typed configuration validation: the [`ConfigError`] enum
//!   behind `EngineConfig::validate` / `InferenceEngine::try_new` /
//!   `Fleet::try_new` and the `moentwine-spec` scenario layer.
//! * [`placement`] — per-layer expert placement with shadow slots.
//! * [`balancer`] — the load-balancing strategies of §V: the invasive
//!   greedy baseline (EPLB-like), the **topology-aware** Algorithm 1, and
//!   the cumulative-imbalance trigger of Eq. 2.
//! * [`migration`] — expert migration execution: invasive (on the critical
//!   path) or **non-invasive** (decomposed into Local/Global steps hidden on
//!   phase-complementary cold links, Fig. 11d).
//! * [`heatmap`] — the hot/cold link analysis of Fig. 11.
//! * [`engine`] — the end-to-end per-iteration inference simulator.
//! * [`fleet`] — scale-out serving: N replica engines in lock-step behind
//!   a front-end router with pluggable dispatch policies (DESIGN.md §8).
//! * [`esp`] — Expert Sharding Parallelism (Fig. 14a).
//!
//! # Example
//!
//! ```
//! use moentwine_core::mapping::{BaselineMapping, ErMapping, TpShape};
//! use wsc_topology::{Mesh, PlatformParams};
//!
//! let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
//! let dims = topo.mesh_dims().unwrap();
//! let baseline = BaselineMapping::new(dims, TpShape::new(2, 2)).unwrap().plan();
//! let er = ErMapping::new(dims, TpShape::new(2, 2)).unwrap().plan();
//! // ER halves the average token-fetch distance (2.7 → 1.3 hops).
//! assert!(er.average_ftd_hops(&topo) < baseline.average_ftd_hops(&topo) / 1.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balancer;
pub mod comm;
pub mod config;
pub mod engine;
pub mod esp;
pub mod fleet;
pub mod heatmap;
pub mod mapping;
pub mod migration;
pub mod placement;

pub use config::ConfigError;
pub use fleet::{
    Fleet, FleetConfig, FleetHandoff, FleetScheduler, FleetSummary, PlatformRefs, ReplicaPool,
    ReplicaRole, SerialReplicaPool,
};
pub use mapping::{
    BaselineMapping, ErMapping, HierarchicalErMapping, MappingError, MappingKind, MappingPlan,
    TpShape,
};
pub use placement::{ExpertId, ExpertPlacement};
