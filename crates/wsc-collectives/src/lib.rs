//! Collective communication schedules for wafer meshes and GPU clusters.
//!
//! Collectives here are *schedule builders*: they compile a logical
//! collective (all-reduce, reduce-scatter, all-gather, all-to-all) over a
//! concrete [`Topology`](wsc_topology::Topology) into a
//! [`FlowSchedule`](wsc_sim::FlowSchedule) that the flow-level simulator or
//! the analytical model can price. The builders implemented are exactly
//! those the paper needs:
//!
//! * [`ring`] — classic bidirectional ring reduce-scatter, all-gather,
//!   and all-reduce over an arbitrary ordered device ring (neighbour rings
//!   for the baseline mapping; the paper calls these "zero-hop rings").
//! * [`stagger`] — **entwined multi-hop rings** (paper §IV-B2, Fig. 8d):
//!   several rings whose multi-hop step routes intersect are time-staggered
//!   by a parity schedule so that no two rings contend for a link in the
//!   same sub-phase.
//! * [`alltoall`] — arbitrary dispatch/combine transfer matrices, scheduled
//!   either fully concurrently or in stride-phased rounds.
//! * [`hierarchical`] — the DeepSpeed-style two-level all-reduce used by the
//!   DGX baseline (intra-node reduce-scatter → inter-node all-reduce →
//!   intra-node all-gather).
//! * [`cost`] — closed-form α-β reference times used to validate schedules,
//!   plus [`CongestionModel`](wsc_sim::CongestionModel)-driven pricing
//!   helpers for spot-checking the analytic estimate against the DES on the
//!   same schedule.
//!
//! # Example
//!
//! ```
//! use wsc_topology::{Mesh, PlatformParams};
//! use wsc_collectives::ring::{ring_all_reduce, Ring};
//!
//! let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
//! let ring = Ring::new(topo.devices().collect());
//! let sched = ring_all_reduce(&topo, &ring, 1.0e6);
//! // 2(n-1) steps for n=4 devices.
//! assert_eq!(sched.num_phases(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alltoall;
pub mod cost;
pub mod hierarchical;
pub mod ring;
pub mod stagger;

pub use alltoall::{all_to_all_concurrent, all_to_all_phased, uniform_all_to_all_matrix, Transfer};
pub use hierarchical::hierarchical_all_reduce;
pub use ring::{ring_all_gather, ring_all_reduce, ring_reduce_scatter, Ring};
pub use stagger::{staggered_ring_all_reduce, staggered_ring_reduce_scatter, StaggeredRings};
