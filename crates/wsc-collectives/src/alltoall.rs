//! All-to-all (dispatch / combine) schedules.

use serde::{Deserialize, Serialize};
use wsc_sim::{FlowSchedule, FlowSpec};
use wsc_topology::{DeviceId, Topology};

/// One point-to-point transfer of an all-to-all exchange.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Transfer {
    /// Sending device.
    pub src: DeviceId,
    /// Receiving device.
    pub dst: DeviceId,
    /// Payload bytes.
    pub bytes: f64,
}

impl Transfer {
    /// Creates a transfer.
    pub fn new(src: DeviceId, dst: DeviceId, bytes: f64) -> Self {
        Transfer { src, dst, bytes }
    }
}

/// Schedules the whole exchange as one concurrent phase.
///
/// This matches how MoE dispatch kernels behave in practice: every device
/// posts all its sends at once and the fabric arbitrates. Congestion then
/// emerges from the flow-level simulation (or the bottleneck term of the
/// analytical model) rather than from the schedule.
pub fn all_to_all_concurrent(topo: &Topology, transfers: &[Transfer]) -> FlowSchedule {
    let mut schedule = FlowSchedule::new();
    let flows = transfers
        .iter()
        .filter(|t| t.bytes > 0.0 && t.src != t.dst)
        .map(|t| FlowSpec::new(topo.route(t.src, t.dst), t.bytes))
        .collect();
    schedule.push_phase("a2a", flows);
    schedule
}

/// Schedules the exchange in `num_phases` stride-phased rounds: transfer
/// `(src, dst)` goes in round `(dst - src) mod num_phases`. Spreading the
/// permutation classes reduces transient hot-spotting on switch-based
/// fabrics at the cost of barrier overhead.
///
/// # Panics
///
/// Panics if `num_phases == 0`.
pub fn all_to_all_phased(
    topo: &Topology,
    transfers: &[Transfer],
    num_phases: usize,
) -> FlowSchedule {
    assert!(num_phases > 0, "need at least one phase");
    let mut buckets: Vec<Vec<FlowSpec>> = vec![Vec::new(); num_phases];
    let n = topo.num_devices() as i64;
    for t in transfers {
        if t.bytes <= 0.0 || t.src == t.dst {
            continue;
        }
        let stride = (t.dst.0 as i64 - t.src.0 as i64).rem_euclid(n) as usize;
        buckets[stride % num_phases].push(FlowSpec::new(topo.route(t.src, t.dst), t.bytes));
    }
    let mut schedule = FlowSchedule::new();
    for (i, flows) in buckets.into_iter().enumerate() {
        if !flows.is_empty() {
            schedule.push_phase(format!("a2a-round{i}"), flows);
        }
    }
    schedule
}

/// Builds the full uniform all-to-all transfer matrix: every device sends
/// `bytes_per_pair` to every other device. A convenient workload for
/// topology stress tests.
pub fn uniform_all_to_all_matrix(topo: &Topology, bytes_per_pair: f64) -> Vec<Transfer> {
    let mut transfers = Vec::new();
    for src in topo.devices() {
        for dst in topo.devices() {
            if src != dst {
                transfers.push(Transfer::new(src, dst, bytes_per_pair));
            }
        }
    }
    transfers
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_topology::{DgxCluster, Mesh, PlatformParams};

    #[test]
    fn concurrent_drops_empty_and_local() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let sched = all_to_all_concurrent(
            &topo,
            &[
                Transfer::new(a, b, 10.0),
                Transfer::new(a, a, 999.0),
                Transfer::new(b, a, 0.0),
            ],
        );
        assert_eq!(sched.phases()[0].flows.len(), 1);
    }

    #[test]
    fn uniform_matrix_size() {
        let topo = Mesh::new(3, PlatformParams::dojo_like()).build();
        let m = uniform_all_to_all_matrix(&topo, 1.0);
        assert_eq!(m.len(), 9 * 8);
    }

    #[test]
    fn phased_covers_all_transfers() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let m = uniform_all_to_all_matrix(&topo, 7.0);
        let sched = all_to_all_phased(&topo, &m, 3);
        let total: f64 = sched.total_bytes();
        assert!((total - 7.0 * 12.0).abs() < 1e-9);
        assert!(sched.num_phases() <= 3);
    }

    #[test]
    fn mesh_center_congestion_exceeds_edge() {
        // Uniform all-to-all on a mesh loads central links more than corner
        // links — the congestion phenomenon of paper §III-B. Under XY
        // routing on 6×6 the central x-link carries 3·3·6 flows vs 1·5·6 on
        // the edge (1.8×).
        let topo = Mesh::new(6, PlatformParams::dojo_like()).build();
        let m = uniform_all_to_all_matrix(&topo, 1.0e6);
        let sched = all_to_all_concurrent(&topo, &m);
        let result = sched.run(&topo);
        // Central horizontal link (2,2)->(3,2) vs edge link (0,0)->(1,0).
        let center_src = topo.device_at_xy(2, 2).unwrap();
        let center_dst = topo.device_at_xy(3, 2).unwrap();
        let edge_src = topo.device_at_xy(0, 0).unwrap();
        let edge_dst = topo.device_at_xy(1, 0).unwrap();
        let center_link = topo
            .link_between(topo.device_node(center_src), topo.device_node(center_dst))
            .unwrap();
        let edge_link = topo
            .link_between(topo.device_node(edge_src), topo.device_node(edge_dst))
            .unwrap();
        assert!(
            result.stats.bytes[center_link.index()] > 1.5 * result.stats.bytes[edge_link.index()]
        );
    }

    #[test]
    fn dgx_inter_node_a2a_bottlenecked_by_infiniband() {
        let params = PlatformParams::dgx_b200();
        let topo = DgxCluster::new(2, params).build();
        let m = uniform_all_to_all_matrix(&topo, 1.0e6);
        let sched = all_to_all_concurrent(&topo, &m);
        let t = sched.run(&topo).total_time;
        // 8 GPUs × 8 peers × 1 MB cross the single 400 GB/s uplink each way.
        let ib_bytes = 8.0 * 8.0 * 1.0e6;
        let lower_bound = ib_bytes / params.infiniband_bw;
        assert!(t > lower_bound, "{t} vs {lower_bound}");
    }
}
