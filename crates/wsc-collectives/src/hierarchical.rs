//! Two-level (hierarchical) all-reduce for switch-based clusters.
//!
//! The DGX baseline accelerates cross-node collectives the way
//! DeepSpeed-MoE does (paper §VI-B): reduce-scatter inside each node over
//! NVLink, all-reduce the shards across nodes over InfiniBand, then
//! all-gather inside each node. Only `1/local` of the buffer crosses the
//! slow inter-node links.

use wsc_sim::FlowSchedule;
use wsc_topology::{DeviceId, Topology};

use crate::ring::{ring_all_gather, ring_all_reduce, ring_reduce_scatter, Ring};

/// Builds a hierarchical all-reduce over `group`, treating devices that
/// share a node (per `node_of`) as one tier.
///
/// * If the whole group lives on one node (or `group` spans a single tier),
///   this degenerates to a flat ring all-reduce.
/// * Otherwise: intra-node reduce-scatter → per-shard inter-node ring
///   all-reduce (each local rank joins a ring with its peers on other
///   nodes) → intra-node all-gather.
///
/// `bytes_per_device` is the full buffer size on each member.
///
/// # Panics
///
/// Panics if `group` has fewer than two devices or nodes have unequal
/// member counts.
pub fn hierarchical_all_reduce(
    topo: &Topology,
    group: &[DeviceId],
    bytes_per_device: f64,
    node_of: impl Fn(DeviceId) -> u16,
) -> FlowSchedule {
    assert!(group.len() >= 2, "group needs at least two devices");

    // Partition the group by node, preserving order.
    let mut nodes: Vec<(u16, Vec<DeviceId>)> = Vec::new();
    for &d in group {
        let n = node_of(d);
        match nodes.iter_mut().find(|(id, _)| *id == n) {
            Some((_, members)) => members.push(d),
            None => nodes.push((n, vec![d])),
        }
    }

    if nodes.len() == 1 {
        return ring_all_reduce(topo, &Ring::new(group.to_vec()), bytes_per_device);
    }
    let local = nodes[0].1.len();
    assert!(
        nodes.iter().all(|(_, m)| m.len() == local),
        "nodes must contribute equal member counts"
    );

    let mut schedule = FlowSchedule::new();
    let append = |schedule: &mut FlowSchedule, other: FlowSchedule| {
        for phase in other.phases() {
            schedule.push_phase(phase.label.clone(), phase.flows.clone());
        }
    };

    // Stage 1: intra-node reduce-scatter (skipped for single-member nodes).
    if local > 1 {
        let stages: Vec<FlowSchedule> = nodes
            .iter()
            .map(|(_, members)| {
                ring_reduce_scatter(topo, &Ring::new(members.clone()), bytes_per_device)
            })
            .collect();
        append(&mut schedule, FlowSchedule::merge_lockstep(stages.iter()));
    }

    // Stage 2: inter-node all-reduce of each shard. Rank r of every node
    // forms a ring; all rings run concurrently over the uplinks.
    let shard = bytes_per_device / local as f64;
    let inter: Vec<FlowSchedule> = (0..local)
        .map(|r| {
            let ring: Vec<DeviceId> = nodes.iter().map(|(_, m)| m[r]).collect();
            ring_all_reduce(topo, &Ring::new(ring), shard)
        })
        .collect();
    append(&mut schedule, FlowSchedule::merge_lockstep(inter.iter()));

    // Stage 3: intra-node all-gather.
    if local > 1 {
        let stages: Vec<FlowSchedule> = nodes
            .iter()
            .map(|(_, members)| {
                ring_all_gather(topo, &Ring::new(members.clone()), bytes_per_device)
            })
            .collect();
        append(&mut schedule, FlowSchedule::merge_lockstep(stages.iter()));
    }

    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_topology::{DgxCluster, Location, PlatformParams};

    fn node_of(topo: &Topology) -> impl Fn(DeviceId) -> u16 + '_ {
        |d| match topo.location(d) {
            Location::Cluster { node, .. } => node,
            Location::Mesh { .. } => 0,
        }
    }

    #[test]
    fn single_node_degenerates_to_flat_ring() {
        let topo = DgxCluster::new(1, PlatformParams::dgx_b200()).build();
        let group: Vec<DeviceId> = topo.devices().collect();
        let sched = hierarchical_all_reduce(&topo, &group, 1.0e6, node_of(&topo));
        assert_eq!(sched.num_phases(), 2 * (8 - 1));
    }

    #[test]
    fn hierarchical_beats_flat_ring_across_nodes() {
        let topo = DgxCluster::new(4, PlatformParams::dgx_b200()).build();
        let group: Vec<DeviceId> = topo.devices().collect();
        let bytes = 64.0e6;
        let hier = hierarchical_all_reduce(&topo, &group, bytes, node_of(&topo)).run(&topo);
        let flat = ring_all_reduce(&topo, &Ring::new(group), bytes).run(&topo);
        assert!(
            hier.total_time < flat.total_time,
            "hierarchical {} vs flat {}",
            hier.total_time,
            flat.total_time
        );
    }

    #[test]
    fn cross_node_group_with_one_member_per_node() {
        let topo = DgxCluster::new(4, PlatformParams::dgx_b200()).build();
        // One GPU per node: stage 1 and 3 vanish.
        let group = vec![DeviceId(0), DeviceId(8), DeviceId(16), DeviceId(24)];
        let sched = hierarchical_all_reduce(&topo, &group, 1.0e6, node_of(&topo));
        assert_eq!(sched.num_phases(), 2 * (4 - 1));
    }

    #[test]
    #[should_panic(expected = "equal member counts")]
    fn unbalanced_nodes_rejected() {
        let topo = DgxCluster::new(2, PlatformParams::dgx_b200()).build();
        let group = vec![DeviceId(0), DeviceId(1), DeviceId(8)];
        hierarchical_all_reduce(&topo, &group, 1.0, node_of(&topo));
    }
}
