//! Closed-form α-β reference costs for validating schedules, plus
//! backend-driven pricing of the schedules themselves.
//!
//! The closed forms are paper Eq. 1-style references; [`schedule_time`] and
//! [`backend_disagreement`] price an actual [`FlowSchedule`] through any
//! [`CongestionModel`] backend, so per-collective experiments can spot-check
//! the fast analytic estimate against the DES on the same schedule. All
//! three fidelity tiers (analytic / cached DES / full DES — see
//! `wsc_sim::CongestionBackend`) plug in here; collective sweeps that price
//! the same schedule shape repeatedly should prefer the cached tier, whose
//! estimates are bit-identical to the full DES.

use wsc_sim::{CongestionModel, FlowSchedule};

/// Total time of `schedule` under the supplied backend, seconds.
pub fn schedule_time(backend: &dyn CongestionModel, schedule: &FlowSchedule) -> f64 {
    backend.price_schedule(schedule).total_time
}

/// Relative disagreement between two backends on one schedule:
/// `|t_a − t_b| / t_b` (with `t_b` from `reference`). Zero-time schedules
/// report zero disagreement.
///
/// This is the per-collective validation primitive behind the
/// `tests/analytic_vs_des.rs` contract and the Fig. spot-checks.
pub fn backend_disagreement(
    candidate: &dyn CongestionModel,
    reference: &dyn CongestionModel,
    schedule: &FlowSchedule,
) -> f64 {
    let t_ref = schedule_time(reference, schedule);
    if t_ref == 0.0 {
        return 0.0;
    }
    (schedule_time(candidate, schedule) - t_ref).abs() / t_ref
}

/// Closed-form time of a bidirectional 1-hop ring all-reduce of `n` members
/// with `bytes` per member over duplex links of `bandwidth` (per direction)
/// and per-hop `latency`:
///
/// `2(n-1) × (bytes / (2n·bandwidth) + latency)`.
///
/// # Example
///
/// ```
/// let t = wsc_collectives::cost::ring_all_reduce_time(4, 8.0e6, 4.0e12, 50e-9);
/// assert!(t > 0.0);
/// ```
pub fn ring_all_reduce_time(n: usize, bytes: f64, bandwidth: f64, latency: f64) -> f64 {
    let n_f = n as f64;
    2.0 * (n_f - 1.0) * (bytes / (2.0 * n_f * bandwidth) + latency)
}

/// Closed-form time of a staggered multi-hop ring all-reduce:
/// `parities ×` the single-ring time with `hops`-hop steps.
pub fn staggered_all_reduce_time(
    n: usize,
    bytes: f64,
    bandwidth: f64,
    latency: f64,
    hops: usize,
    parities: usize,
) -> f64 {
    let n_f = n as f64;
    parities as f64 * 2.0 * (n_f - 1.0) * (bytes / (2.0 * n_f * bandwidth) + hops as f64 * latency)
}

/// Lower bound for an all-to-all where every device sends `bytes_per_pair`
/// to each of the `n-1` others through a per-device injection bandwidth
/// `bandwidth`: the egress-limited time.
pub fn all_to_all_injection_bound(n: usize, bytes_per_pair: f64, bandwidth: f64) -> f64 {
    (n as f64 - 1.0) * bytes_per_pair / bandwidth
}

/// Bisection-limited lower bound for uniform all-to-all on an `n×n` mesh:
/// half the traffic must cross the `n` center column links (per direction).
pub fn mesh_all_to_all_bisection_bound(n: usize, bytes_per_pair: f64, bandwidth: f64) -> f64 {
    let devices = (n * n) as f64;
    // Pairs crossing the bisection in one direction: (devices/2)^2.
    let crossing_bytes = (devices / 2.0) * (devices / 2.0) * bytes_per_pair;
    crossing_bytes / (n as f64 * bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alltoall::{all_to_all_concurrent, uniform_all_to_all_matrix};
    use crate::ring::{ring_all_reduce, Ring};
    use wsc_sim::CongestionBackend;
    use wsc_topology::{Mesh, PlatformParams};

    #[test]
    fn both_backends_match_closed_form_ring_all_reduce() {
        let params = PlatformParams::dojo_like();
        let topo = Mesh::new(2, params).build();
        // 1-hop Hamiltonian cycle, as the closed form assumes.
        let ring = Ring::new(vec![
            topo.device_at_xy(0, 0).unwrap(),
            topo.device_at_xy(1, 0).unwrap(),
            topo.device_at_xy(1, 1).unwrap(),
            topo.device_at_xy(0, 1).unwrap(),
        ]);
        let bytes = 8.0e6;
        let sched = ring_all_reduce(&topo, &ring, bytes);
        let reference = ring_all_reduce_time(4, bytes, params.on_wafer_bw, params.on_wafer_latency);
        for kind in CongestionBackend::all() {
            let t = schedule_time(kind.build(&topo).as_ref(), &sched);
            assert!(
                (t - reference).abs() / reference < 1e-6,
                "{kind}: {t} vs closed form {reference}"
            );
        }
    }

    #[test]
    fn backend_disagreement_is_zero_against_itself_and_bounded_on_a2a() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let sched = all_to_all_concurrent(&topo, &uniform_all_to_all_matrix(&topo, 1.0e6));
        let analytic = CongestionBackend::Analytic.build(&topo);
        let des = CongestionBackend::FlowSim.build(&topo);
        assert_eq!(
            backend_disagreement(analytic.as_ref(), analytic.as_ref(), &sched),
            0.0
        );
        let gap = backend_disagreement(analytic.as_ref(), des.as_ref(), &sched);
        assert!(
            gap < 1.0,
            "analytic vs DES diverged by {gap:.2} on uniform a2a"
        );
    }

    #[test]
    fn cached_des_prices_collectives_identically_to_des() {
        // The memoizing tier must be invisible fidelity-wise: zero
        // disagreement (bit-identical totals) with the full DES on the same
        // entwined all-to-all schedule, on first pricing and on replay.
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let sched = all_to_all_concurrent(&topo, &uniform_all_to_all_matrix(&topo, 1.0e6));
        let des = CongestionBackend::FlowSim.build(&topo);
        let cached = CongestionBackend::FlowSimCached.build(&topo);
        assert_eq!(
            backend_disagreement(cached.as_ref(), des.as_ref(), &sched),
            0.0
        );
        // Replay hits the cache and must return the very same number.
        assert_eq!(
            schedule_time(cached.as_ref(), &sched),
            schedule_time(des.as_ref(), &sched)
        );
    }

    #[test]
    fn staggered_cost_is_parities_times_base_with_hop_latency() {
        let base = ring_all_reduce_time(4, 1e6, 1e12, 1e-7);
        let twice = staggered_all_reduce_time(4, 1e6, 1e12, 1e-7, 1, 2);
        assert!((twice - 2.0 * base).abs() < 1e-15);
    }

    #[test]
    fn mesh_a2a_respects_bisection_bound() {
        let params = PlatformParams::dojo_like();
        let topo = Mesh::new(4, params).build();
        let bytes = 1.0e6;
        let sched = all_to_all_concurrent(&topo, &uniform_all_to_all_matrix(&topo, bytes));
        let t = sched.run(&topo).total_time;
        let bound = mesh_all_to_all_bisection_bound(4, bytes, params.on_wafer_bw);
        assert!(t >= bound * 0.99, "{t} vs bound {bound}");
    }

    #[test]
    fn injection_bound_below_simulated() {
        let params = PlatformParams::dojo_like();
        let topo = Mesh::new(4, params).build();
        let bytes = 1.0e6;
        let sched = all_to_all_concurrent(&topo, &uniform_all_to_all_matrix(&topo, bytes));
        let t = sched.run(&topo).total_time;
        // Corner devices inject over 2 links.
        let bound = all_to_all_injection_bound(16, bytes, 2.0 * params.on_wafer_bw);
        assert!(t >= bound, "{t} vs {bound}");
    }
}
