//! Closed-form α-β reference costs for validating schedules.

/// Closed-form time of a bidirectional 1-hop ring all-reduce of `n` members
/// with `bytes` per member over duplex links of `bandwidth` (per direction)
/// and per-hop `latency`:
///
/// `2(n-1) × (bytes / (2n·bandwidth) + latency)`.
///
/// # Example
///
/// ```
/// let t = wsc_collectives::cost::ring_all_reduce_time(4, 8.0e6, 4.0e12, 50e-9);
/// assert!(t > 0.0);
/// ```
pub fn ring_all_reduce_time(n: usize, bytes: f64, bandwidth: f64, latency: f64) -> f64 {
    let n_f = n as f64;
    2.0 * (n_f - 1.0) * (bytes / (2.0 * n_f * bandwidth) + latency)
}

/// Closed-form time of a staggered multi-hop ring all-reduce:
/// `parities ×` the single-ring time with `hops`-hop steps.
pub fn staggered_all_reduce_time(
    n: usize,
    bytes: f64,
    bandwidth: f64,
    latency: f64,
    hops: usize,
    parities: usize,
) -> f64 {
    let n_f = n as f64;
    parities as f64
        * 2.0
        * (n_f - 1.0)
        * (bytes / (2.0 * n_f * bandwidth) + hops as f64 * latency)
}

/// Lower bound for an all-to-all where every device sends `bytes_per_pair`
/// to each of the `n-1` others through a per-device injection bandwidth
/// `bandwidth`: the egress-limited time.
pub fn all_to_all_injection_bound(n: usize, bytes_per_pair: f64, bandwidth: f64) -> f64 {
    (n as f64 - 1.0) * bytes_per_pair / bandwidth
}

/// Bisection-limited lower bound for uniform all-to-all on an `n×n` mesh:
/// half the traffic must cross the `n` center column links (per direction).
pub fn mesh_all_to_all_bisection_bound(n: usize, bytes_per_pair: f64, bandwidth: f64) -> f64 {
    let devices = (n * n) as f64;
    // Pairs crossing the bisection in one direction: (devices/2)^2.
    let crossing_bytes = (devices / 2.0) * (devices / 2.0) * bytes_per_pair;
    crossing_bytes / (n as f64 * bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alltoall::{all_to_all_concurrent, uniform_all_to_all_matrix};
    use wsc_topology::{Mesh, PlatformParams};

    #[test]
    fn staggered_cost_is_parities_times_base_with_hop_latency() {
        let base = ring_all_reduce_time(4, 1e6, 1e12, 1e-7);
        let twice = staggered_all_reduce_time(4, 1e6, 1e12, 1e-7, 1, 2);
        assert!((twice - 2.0 * base).abs() < 1e-15);
    }

    #[test]
    fn mesh_a2a_respects_bisection_bound() {
        let params = PlatformParams::dojo_like();
        let topo = Mesh::new(4, params).build();
        let bytes = 1.0e6;
        let sched = all_to_all_concurrent(&topo, &uniform_all_to_all_matrix(&topo, bytes));
        let t = sched.run(&topo).total_time;
        let bound = mesh_all_to_all_bisection_bound(4, bytes, params.on_wafer_bw);
        assert!(t >= bound * 0.99, "{t} vs bound {bound}");
    }

    #[test]
    fn injection_bound_below_simulated() {
        let params = PlatformParams::dojo_like();
        let topo = Mesh::new(4, params).build();
        let bytes = 1.0e6;
        let sched = all_to_all_concurrent(&topo, &uniform_all_to_all_matrix(&topo, bytes));
        let t = sched.run(&topo).total_time;
        // Corner devices inject over 2 links.
        let bound = all_to_all_injection_bound(16, bytes, 2.0 * params.on_wafer_bw);
        assert!(t >= bound, "{t} vs {bound}");
    }
}
