//! Time-staggered entwined rings (paper §IV-B2, Fig. 8d).
//!
//! Under ER-Mapping each TP group's all-reduce ring takes multi-hop steps
//! whose routes pass *through* members of other rings, so two rings can
//! contend for the same physical link. The paper's resolution: transfers on
//! intersecting links are time-staggered — each logical ring step is split
//! into parity sub-phases, and rings only transmit in their assigned parity
//! sub-phase. With the parity chosen from each ring's coordinate offset, no
//! two rings ever share a link within a sub-phase, so "while two-hop doubles
//! the all-reduce latency, the intersection does not worsen the latency".

use serde::{Deserialize, Serialize};
use wsc_sim::{FlowSchedule, FlowSpec};
use wsc_topology::Topology;

use crate::ring::Ring;

/// A set of rings executing the same collective in lock-step, with a parity
/// schedule resolving their link intersections.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StaggeredRings {
    /// The rings (one per TP group under ER-Mapping).
    pub rings: Vec<Ring>,
    /// `parity[r]` — the sub-phase in `0..num_parities` in which ring `r`
    /// transmits. Derived from the ring's coordinate offset by the mapping
    /// layer.
    pub parity: Vec<usize>,
    /// Number of parity sub-phases per logical ring step.
    pub num_parities: usize,
}

impl StaggeredRings {
    /// Creates a staggered ring set.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty, lengths mismatch, rings differ in size,
    /// or a parity is out of range.
    pub fn new(rings: Vec<Ring>, parity: Vec<usize>, num_parities: usize) -> Self {
        assert!(!rings.is_empty(), "need at least one ring");
        assert_eq!(rings.len(), parity.len(), "one parity per ring");
        assert!(num_parities >= 1, "need at least one parity class");
        let n = rings[0].len();
        assert!(
            rings.iter().all(|r| r.len() == n),
            "all rings must have equal length"
        );
        assert!(
            parity.iter().all(|&p| p < num_parities),
            "parity out of range"
        );
        StaggeredRings {
            rings,
            parity,
            num_parities,
        }
    }

    /// Ring length (devices per ring).
    pub fn ring_len(&self) -> usize {
        self.rings[0].len()
    }
}

/// Builds the bidirectional staggered ring all-reduce schedule.
///
/// Each of the `2(n-1)` logical ring steps expands into `num_parities`
/// sub-phases; ring `r` places its step flows (both directions, half the
/// chunk each) in sub-phase `parity[r]`.
///
/// The resulting schedule has `2(n-1) × num_parities` phases. When the
/// parity assignment is correct (verified by
/// [`phases_are_link_disjoint`]), every sub-phase is contention-free, so the
/// collective completes in `num_parities ×` the single-ring time — the
/// "doubled but not congested" behaviour of the paper for
/// `num_parities == 2`.
pub fn staggered_ring_all_reduce(
    topo: &Topology,
    rings: &StaggeredRings,
    bytes_per_device: f64,
) -> FlowSchedule {
    staggered_pass(topo, rings, bytes_per_device, &["rs", "ag"])
}

/// The reduce-scatter half of [`staggered_ring_all_reduce`] alone — used by
/// the hierarchical (multi-wafer) all-reduce, which replaces the intra-wafer
/// all-gather with an inter-wafer one (paper §IV-B4).
pub fn staggered_ring_reduce_scatter(
    topo: &Topology,
    rings: &StaggeredRings,
    bytes_per_device: f64,
) -> FlowSchedule {
    staggered_pass(topo, rings, bytes_per_device, &["rs"])
}

fn staggered_pass(
    topo: &Topology,
    rings: &StaggeredRings,
    bytes_per_device: f64,
    halves: &[&str],
) -> FlowSchedule {
    let n = rings.ring_len();
    let chunk = bytes_per_device / n as f64 / 2.0;
    let mut schedule = FlowSchedule::new();
    // Reduce-scatter then all-gather: identical flow patterns.
    for half in halves {
        for step in 0..n - 1 {
            for p in 0..rings.num_parities {
                let mut flows = Vec::new();
                for (r, ring) in rings.rings.iter().enumerate() {
                    if rings.parity[r] != p {
                        continue;
                    }
                    let devices = ring.devices();
                    if n == 2 {
                        // Two members exchange their halves directly.
                        flows.push(FlowSpec::new(
                            topo.route(devices[0], devices[1]),
                            bytes_per_device / 2.0,
                        ));
                        flows.push(FlowSpec::new(
                            topo.route(devices[1], devices[0]),
                            bytes_per_device / 2.0,
                        ));
                        continue;
                    }
                    for i in 0..n {
                        flows.push(FlowSpec::new(
                            topo.route(devices[i], devices[(i + 1) % n]),
                            chunk,
                        ));
                        flows.push(FlowSpec::new(
                            topo.route(devices[(i + 1) % n], devices[i]),
                            chunk,
                        ));
                    }
                }
                schedule.push_phase(format!("{half}-step{step}-p{p}"), flows);
            }
        }
    }
    schedule
}

/// Checks that every phase of `schedule` is link-disjoint: no two flows in
/// the same phase traverse the same link. This is the no-conflict property
/// the paper claims for entwined rings (Fig. 8d).
pub fn phases_are_link_disjoint(schedule: &FlowSchedule, topo: &Topology) -> bool {
    let mut seen = vec![0u32; topo.num_links()];
    let mut generation = 0u32;
    for phase in schedule.phases() {
        generation += 1;
        for flow in &phase.flows {
            for &l in flow.route.links() {
                if seen[l.index()] == generation {
                    return false;
                }
                seen[l.index()] = generation;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_topology::{DeviceId, Mesh, PlatformParams};

    /// The paper's 4×4 / TP=(2,2) example: four entwined rings with stride-2
    /// steps; rings whose x-offset is 0 get parity 0, x-offset 1 parity 1.
    fn er_rings(topo: &wsc_topology::Topology) -> StaggeredRings {
        let dev = |x: u16, y: u16| topo.device_at_xy(x, y).unwrap();
        let mut rings = Vec::new();
        let mut parity = Vec::new();
        for oy in 0..2u16 {
            for ox in 0..2u16 {
                rings.push(Ring::new(vec![
                    dev(ox, oy),
                    dev(ox + 2, oy),
                    dev(ox + 2, oy + 2),
                    dev(ox, oy + 2),
                ]));
                parity.push(((ox + oy) % 2) as usize);
            }
        }
        StaggeredRings::new(rings, parity, 2)
    }

    #[test]
    fn stagger_eliminates_link_conflicts() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let rings = er_rings(&topo);
        let sched = staggered_ring_all_reduce(&topo, &rings, 1.0e6);
        assert!(phases_are_link_disjoint(&sched, &topo));
    }

    #[test]
    fn unstaggered_rings_do_conflict() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let mut rings = er_rings(&topo);
        // Put everything in one parity class: conflicts appear.
        rings.parity = vec![0; rings.rings.len()];
        rings.num_parities = 1;
        let sched = staggered_ring_all_reduce(&topo, &rings, 1.0e6);
        assert!(!phases_are_link_disjoint(&sched, &topo));
    }

    #[test]
    fn two_hop_staggered_is_about_twice_single_ring() {
        // Paper §IV-B2: "two-hop doubles the all-reduce latency, [but] the
        // intersection does not worsen the latency".
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let bytes = 16.0e6;
        let staggered = staggered_ring_all_reduce(&topo, &er_rings(&topo), bytes);
        let t_staggered = staggered.run(&topo).total_time;

        // A single contiguous 4-member 1-hop ring of the baseline mapping.
        let dev = |x: u16, y: u16| topo.device_at_xy(x, y).unwrap();
        let base = crate::ring::ring_all_reduce(
            &topo,
            &Ring::new(vec![dev(0, 0), dev(1, 0), dev(1, 1), dev(0, 1)]),
            bytes,
        );
        let t_base = base.run(&topo).total_time;
        let ratio = t_staggered / t_base;
        assert!(
            (1.8..=2.3).contains(&ratio),
            "expected ≈2× slowdown, got {ratio}"
        );
    }

    #[test]
    fn phase_count() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let sched = staggered_ring_all_reduce(&topo, &er_rings(&topo), 1.0);
        // 2(n-1) logical steps × 2 parities, n=4.
        assert_eq!(sched.num_phases(), 2 * 3 * 2);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_ring_lengths_rejected() {
        let r1 = Ring::new(vec![DeviceId(0), DeviceId(1)]);
        let r2 = Ring::new(vec![DeviceId(2), DeviceId(3), DeviceId(4)]);
        StaggeredRings::new(vec![r1, r2], vec![0, 1], 2);
    }
}
