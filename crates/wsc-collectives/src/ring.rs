//! Ring collectives over arbitrary ordered device rings.

use serde::{Deserialize, Serialize};
use wsc_sim::{FlowSchedule, FlowSpec};
use wsc_topology::{DeviceId, Topology};

/// An ordered ring of devices. Step `s` sends from `devices[i]` to
/// `devices[(i+1) % n]` (and the reverse for the counter-rotating half of a
/// bidirectional collective).
///
/// The physical distance between consecutive ring members is arbitrary: the
/// baseline mapping uses neighbouring dies (1-hop steps), ER-Mapping uses
/// stride-`a` "entwined" rings (multi-hop steps).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Ring {
    devices: Vec<DeviceId>,
}

impl Ring {
    /// Creates a ring from an ordered device list.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two devices are given or if a device repeats.
    pub fn new(devices: Vec<DeviceId>) -> Self {
        assert!(devices.len() >= 2, "a ring needs at least two devices");
        let mut sorted = devices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), devices.len(), "ring devices must be unique");
        Ring { devices }
    }

    /// The devices in ring order.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Number of ring members.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Rings are never empty; provided for clippy-completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The successor of position `i`.
    pub fn next(&self, i: usize) -> DeviceId {
        self.devices[(i + 1) % self.devices.len()]
    }
}

/// Builds one directional pass of `steps` ring steps, each sending
/// `chunk_bytes` from every member to its successor (or predecessor when
/// `reverse`).
fn ring_pass(
    topo: &Topology,
    ring: &Ring,
    chunk_bytes: f64,
    steps: usize,
    reverse: bool,
    label: &str,
    schedule: &mut FlowSchedule,
) {
    let n = ring.len();
    for step in 0..steps {
        let flows = (0..n)
            .map(|i| {
                let (src, dst) = if reverse {
                    (ring.devices[(i + 1) % n], ring.devices[i])
                } else {
                    (ring.devices[i], ring.devices[(i + 1) % n])
                };
                FlowSpec::new(topo.route(src, dst), chunk_bytes)
            })
            .collect();
        schedule.push_phase(format!("{label}-step{step}"), flows);
    }
}

/// Ring reduce-scatter: after `n-1` steps each member holds the fully
/// reduced `1/n` shard of the buffer.
///
/// `bytes_per_device` is the full buffer size on each member; each step
/// moves one `bytes/n` chunk per member. The collective is bidirectional
/// (paper Fig. 8d: "packages are sent bi-directionally"): each direction
/// carries half of every chunk, halving the per-step serialization time on
/// duplex links.
pub fn ring_reduce_scatter(topo: &Topology, ring: &Ring, bytes_per_device: f64) -> FlowSchedule {
    let n = ring.len();
    let mut schedule = FlowSchedule::new();
    if n == 2 {
        // Two members exchange their halves directly in one step.
        schedule.push_phase(
            "rs-step0",
            pair_exchange(topo, ring, bytes_per_device / 2.0),
        );
        return schedule;
    }
    let chunk = bytes_per_device / n as f64 / 2.0;
    for step in 0..n - 1 {
        let mut flows = Vec::with_capacity(2 * n);
        for i in 0..n {
            flows.push(FlowSpec::new(
                topo.route(ring.devices[i], ring.devices[(i + 1) % n]),
                chunk,
            ));
            flows.push(FlowSpec::new(
                topo.route(ring.devices[(i + 1) % n], ring.devices[i]),
                chunk,
            ));
        }
        schedule.push_phase(format!("rs-step{step}"), flows);
    }
    schedule
}

/// Ring all-gather: after `n-1` steps each member holds all `n` shards.
/// Bidirectional, like [`ring_reduce_scatter`].
pub fn ring_all_gather(topo: &Topology, ring: &Ring, bytes_per_device: f64) -> FlowSchedule {
    // Identical traffic pattern to reduce-scatter (chunks rotate instead of
    // reducing, but the flows are the same).
    let mut schedule = FlowSchedule::new();
    let n = ring.len();
    if n == 2 {
        schedule.push_phase(
            "ag-step0",
            pair_exchange(topo, ring, bytes_per_device / 2.0),
        );
        return schedule;
    }
    let chunk = bytes_per_device / n as f64 / 2.0;
    for step in 0..n - 1 {
        let mut flows = Vec::with_capacity(2 * n);
        for i in 0..n {
            flows.push(FlowSpec::new(
                topo.route(ring.devices[i], ring.devices[(i + 1) % n]),
                chunk,
            ));
            flows.push(FlowSpec::new(
                topo.route(ring.devices[(i + 1) % n], ring.devices[i]),
                chunk,
            ));
        }
        schedule.push_phase(format!("ag-step{step}"), flows);
    }
    schedule
}

/// The two flows of a 2-member exchange.
fn pair_exchange(topo: &Topology, ring: &Ring, bytes: f64) -> Vec<FlowSpec> {
    let (a, b) = (ring.devices[0], ring.devices[1]);
    vec![
        FlowSpec::new(topo.route(a, b), bytes),
        FlowSpec::new(topo.route(b, a), bytes),
    ]
}

/// Ring all-reduce: reduce-scatter followed by all-gather
/// (`2(n-1)` steps total).
pub fn ring_all_reduce(topo: &Topology, ring: &Ring, bytes_per_device: f64) -> FlowSchedule {
    let mut schedule = ring_reduce_scatter(topo, ring, bytes_per_device);
    for phase in ring_all_gather(topo, ring, bytes_per_device).phases() {
        schedule.push_phase(phase.label.clone(), phase.flows.clone());
    }
    schedule
}

/// Unidirectional single-pass ring (used by the inter-node stage of the
/// hierarchical all-reduce, where duplex sharing is handled differently).
pub fn ring_pass_unidirectional(
    topo: &Topology,
    ring: &Ring,
    chunk_bytes: f64,
    steps: usize,
    label: &str,
) -> FlowSchedule {
    let mut schedule = FlowSchedule::new();
    ring_pass(topo, ring, chunk_bytes, steps, false, label, &mut schedule);
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_sim::AnalyticModel;
    use wsc_topology::{Mesh, PlatformParams};

    /// A Hamiltonian cycle over an n×n mesh (n even): boustrophedon over
    /// columns 1..n, returning along column 0. Every ring hop is exactly one
    /// mesh link, so no two ring flows share a link.
    fn hamiltonian_ring(topo: &Topology, n: u16) -> Ring {
        let mut devices = vec![topo.device_at_xy(0, 0).unwrap()];
        for y in 0..n {
            let xs: Vec<u16> = if y % 2 == 0 {
                (1..n).collect()
            } else {
                (1..n).rev().collect()
            };
            for x in xs {
                devices.push(topo.device_at_xy(x, y).unwrap());
            }
        }
        for y in (1..n).rev() {
            devices.push(topo.device_at_xy(0, y).unwrap());
        }
        Ring::new(devices)
    }

    #[test]
    fn all_reduce_has_2n_minus_2_phases() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let ring = hamiltonian_ring(&topo, 4);
        let sched = ring_all_reduce(&topo, &ring, 1.0e6);
        assert_eq!(sched.num_phases(), 2 * (16 - 1));
    }

    #[test]
    fn total_bytes_matches_theory() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let ring = hamiltonian_ring(&topo, 2);
        let bytes = 1.0e6;
        let sched = ring_all_reduce(&topo, &ring, bytes);
        // Each member ships 2(n-1)/n × bytes in total.
        let n = 4.0;
        let expect = n * 2.0 * (n - 1.0) / n * bytes;
        assert!((sched.total_bytes() - expect).abs() < 1.0);
    }

    #[test]
    fn neighbour_ring_time_matches_alpha_beta() {
        // A 1-hop ring over duplex links: each step both directions carry
        // bytes/(2n), so step time = bytes/(2n)/bw + hop latency.
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let ring = hamiltonian_ring(&topo, 4);
        let bytes = 64.0e6;
        let sched = ring_all_reduce(&topo, &ring, bytes);
        let result = sched.run(&topo);
        let n = 16.0;
        let params = PlatformParams::dojo_like();
        let step = bytes / (2.0 * n) / params.on_wafer_bw + params.on_wafer_latency;
        let expect = 2.0 * (n - 1.0) * step;
        let err = (result.total_time - expect).abs() / expect;
        assert!(err < 1e-6, "{} vs {}", result.total_time, expect);
    }

    #[test]
    fn analytic_model_agrees_with_des_on_rings() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let ring = hamiltonian_ring(&topo, 4);
        let sched = ring_all_reduce(&topo, &ring, 8.0e6);
        let des = sched.run(&topo).total_time;
        let est = AnalyticModel::new(&topo)
            .estimate_schedule(&sched)
            .total_time;
        assert!((des - est).abs() / des < 1e-6, "{des} vs {est}");
    }

    #[test]
    #[should_panic(expected = "must be unique")]
    fn duplicate_ring_members_rejected() {
        let _ = Ring::new(vec![DeviceId(0), DeviceId(1), DeviceId(0)]);
    }

    #[test]
    fn ring_next_wraps() {
        let r = Ring::new(vec![DeviceId(3), DeviceId(5), DeviceId(9)]);
        assert_eq!(r.next(2), DeviceId(3));
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }
}
