//! Interconnect topologies for wafer-scale chips (WSCs) and GPU clusters.
//!
//! This crate models the *physical* substrate of the MoEntwine stack:
//! compute devices (dies or GPUs), the directed links between them, and
//! deterministic routing. Three families of topologies are provided:
//!
//! * [`mesh::Mesh`] — a single wafer: an `n × n` 2-D mesh of dies with
//!   nearest-neighbour links (signal-integrity constraints forbid longer
//!   high-bandwidth links on real wafers, see the paper §II-B).
//! * [`multi_wafer::MultiWafer`] — a grid of wafers joined by border links
//!   that share a fixed per-border bandwidth budget.
//! * [`cluster`] — switch-based GPU systems: DGX nodes (NVSwitch star plus an
//!   InfiniBand core) and NVL72-style flat supernodes.
//!
//! All builders return a [`Topology`], the uniform representation consumed by
//! the flow-level simulator (`wsc-sim`) and the collective schedule builders
//! (`wsc-collectives`).
//!
//! # Example
//!
//! ```
//! use wsc_topology::{mesh::Mesh, PlatformParams};
//!
//! let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
//! assert_eq!(topo.num_devices(), 16);
//! // XY routing: (0,0) -> (3,3) takes 6 hops.
//! let a = topo.device_at_xy(0, 0).unwrap();
//! let b = topo.device_at_xy(3, 3).unwrap();
//! assert_eq!(topo.route(a, b).hops(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod device;
pub mod link;
pub mod mesh;
pub mod multi_wafer;
pub mod params;
pub mod route_table;
pub mod topology;

pub use cluster::{DgxCluster, FlatSwitch};
pub use device::{DeviceId, Location};
pub use link::{Link, LinkId, LinkKind, NodeId};
pub use mesh::Mesh;
pub use multi_wafer::MultiWafer;
pub use params::PlatformParams;
pub use route_table::RouteTable;
pub use topology::{MeshDims, Route, RouteRef, Topology};
