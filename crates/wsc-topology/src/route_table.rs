//! Precomputed all-pairs route cache.

use crate::device::DeviceId;
use crate::topology::{Route, Topology};

/// Dense all-pairs route cache.
///
/// Routing on a mesh is cheap but not free, and the analytical communication
/// model queries routes for every (source group, destination) pair on every
/// simulated layer. `RouteTable` precomputes all `n²` routes once.
///
/// # Example
///
/// ```
/// use wsc_topology::{Mesh, PlatformParams, RouteTable, DeviceId};
///
/// let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
/// let table = RouteTable::build(&topo);
/// let r = table.route(DeviceId(0), DeviceId(15));
/// assert_eq!(r.hops(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct RouteTable {
    n: usize,
    routes: Vec<Route>,
}

impl RouteTable {
    /// Precomputes routes between every ordered pair of devices.
    pub fn build(topo: &Topology) -> Self {
        let n = topo.num_devices();
        let mut routes = Vec::with_capacity(n * n);
        for src in topo.devices() {
            for dst in topo.devices() {
                routes.push(topo.route(src, dst));
            }
        }
        RouteTable { n, routes }
    }

    /// The cached route from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either device is out of range.
    pub fn route(&self, src: DeviceId, dst: DeviceId) -> &Route {
        &self.routes[src.index() * self.n + dst.index()]
    }

    /// Number of hops between two devices.
    pub fn hops(&self, src: DeviceId, dst: DeviceId) -> usize {
        self.route(src, dst).hops()
    }

    /// Number of devices covered by the table.
    pub fn num_devices(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh;
    use crate::params::PlatformParams;

    #[test]
    fn table_matches_on_demand_routing() {
        let topo = Mesh::new(3, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        for a in topo.devices() {
            for b in topo.devices() {
                assert_eq!(table.route(a, b), &topo.route(a, b));
            }
        }
    }

    #[test]
    fn diagonal_routes_are_empty() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        for d in topo.devices() {
            assert!(table.route(d, d).is_empty());
        }
    }
}
