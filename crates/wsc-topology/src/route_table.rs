//! Precomputed all-pairs route cache in a flat CSR layout.

use crate::device::DeviceId;
use crate::link::LinkId;
use crate::topology::{RouteRef, Topology};

/// Dense all-pairs route cache.
///
/// Routing on a mesh is cheap but not free, and the analytical communication
/// model queries routes for every (source group, destination) pair on every
/// simulated layer. `RouteTable` precomputes all `n²` routes once.
///
/// Routes are stored in a flat CSR layout — one shared `Vec<LinkId>` of hop
/// links plus an offsets array — rather than `n²` owned `Route` values, so
/// the table costs one allocation for the hop storage instead of one per
/// pair, and [`RouteTable::route`] hands out allocation-free borrowed
/// [`RouteRef`] views.
///
/// # Example
///
/// ```
/// use wsc_topology::{Mesh, PlatformParams, RouteTable, DeviceId};
///
/// let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
/// let table = RouteTable::build(&topo);
/// let r = table.route(DeviceId(0), DeviceId(15));
/// assert_eq!(r.hops(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct RouteTable {
    n: usize,
    /// `offsets[src * n + dst] .. offsets[src * n + dst + 1]` indexes the
    /// route's hop links within `links`.
    offsets: Vec<u32>,
    /// Shared flat hop storage for every route.
    links: Vec<LinkId>,
}

impl RouteTable {
    /// Precomputes routes between every ordered pair of devices.
    ///
    /// # Panics
    ///
    /// Panics if the total hop count overflows the CSR offset width
    /// (`u32`; > 4 billion stored hops).
    pub fn build(topo: &Topology) -> Self {
        let n = topo.num_devices();
        let mut offsets = Vec::with_capacity(n * n + 1);
        offsets.push(0u32);
        // A loose lower bound (≥ 1 hop for every off-diagonal pair) that
        // avoids most of the doubling reallocations during the fill.
        let mut links = Vec::with_capacity(n * n.saturating_sub(1));
        for src in topo.devices() {
            for dst in topo.devices() {
                links.extend_from_slice(topo.route(src, dst).links());
                let end = u32::try_from(links.len()).expect("route table exceeds u32 CSR offsets");
                offsets.push(end);
            }
        }
        links.shrink_to_fit();
        RouteTable { n, offsets, links }
    }

    /// The cached route from `src` to `dst`, as a borrowed view into the
    /// shared CSR storage.
    ///
    /// # Panics
    ///
    /// Panics if either device is out of range.
    pub fn route(&self, src: DeviceId, dst: DeviceId) -> RouteRef<'_> {
        let pair = src.index() * self.n + dst.index();
        let start = self.offsets[pair] as usize;
        let end = self.offsets[pair + 1] as usize;
        RouteRef::new(&self.links[start..end])
    }

    /// Number of hops between two devices.
    pub fn hops(&self, src: DeviceId, dst: DeviceId) -> usize {
        self.route(src, dst).hops()
    }

    /// Number of devices covered by the table.
    pub fn num_devices(&self) -> usize {
        self.n
    }

    /// Total hop links stored across all routes (CSR payload size).
    pub fn num_stored_hops(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh;
    use crate::params::PlatformParams;

    #[test]
    fn table_matches_on_demand_routing() {
        let topo = Mesh::new(3, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        for a in topo.devices() {
            for b in topo.devices() {
                assert_eq!(table.route(a, b), topo.route(a, b));
            }
        }
    }

    #[test]
    fn diagonal_routes_are_empty() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        for d in topo.devices() {
            assert!(table.route(d, d).is_empty());
        }
    }

    #[test]
    fn csr_stores_each_hop_once() {
        let topo = Mesh::new(3, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let expected: usize = topo
            .devices()
            .flat_map(|a| topo.devices().map(move |b| (a, b)))
            .map(|(a, b)| topo.route(a, b).hops())
            .sum();
        assert_eq!(table.num_stored_hops(), expected);
    }

    #[test]
    fn views_borrow_shared_storage() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let a = topo.devices().next().unwrap();
        let b = topo.devices().last().unwrap();
        // Two lookups of the same pair give the same slice (no per-call
        // allocation), and `to_route` round-trips.
        let v1 = table.route(a, b);
        let v2 = table.route(a, b);
        assert_eq!(v1.links().as_ptr(), v2.links().as_ptr());
        assert_eq!(v1.to_route(), topo.route(a, b));
    }
}
