//! Switch-based GPU cluster builders: DGX nodes with an InfiniBand core, and
//! flat NVL72-style supernodes.

use crate::device::Location;
use crate::link::LinkKind;
use crate::params::PlatformParams;
use crate::topology::{RouteStrategy, Topology, TopologyBuilder};

/// Builder for a DGX-style cluster: `nodes` boxes of `devices_per_node` GPUs.
///
/// Each GPU attaches to its node's NVSwitch at NVLink bandwidth; each node
/// attaches to a single InfiniBand core switch at the node's aggregate NIC
/// bandwidth. Intra-node traffic takes 2 hops (GPU→switch→GPU); inter-node
/// traffic takes 4 (GPU→switch→core→switch→GPU), reproducing the paper's
/// "high-performance networking confined to each 8-GPU node".
///
/// # Example
///
/// ```
/// use wsc_topology::{DgxCluster, PlatformParams};
///
/// let topo = DgxCluster::new(4, PlatformParams::dgx_b200()).build();
/// assert_eq!(topo.num_devices(), 32);
/// let a = wsc_topology::DeviceId(0);
/// let b = wsc_topology::DeviceId(9); // second node
/// assert_eq!(topo.route(a, b).hops(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct DgxCluster {
    nodes: u16,
    devices_per_node: u16,
    params: PlatformParams,
}

impl DgxCluster {
    /// Creates a builder for `nodes` DGX boxes of 8 GPUs each.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: u16, params: PlatformParams) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        DgxCluster {
            nodes,
            devices_per_node: 8,
            params,
        }
    }

    /// Overrides the number of GPUs per node (default 8).
    ///
    /// # Panics
    ///
    /// Panics if `devices_per_node == 0`.
    pub fn devices_per_node(mut self, devices_per_node: u16) -> Self {
        assert!(devices_per_node > 0, "node needs at least one device");
        self.devices_per_node = devices_per_node;
        self
    }

    /// Finalizes the topology.
    pub fn build(&self) -> Topology {
        let mut b = TopologyBuilder::with_strategy(
            format!("DGX x{}", self.nodes),
            RouteStrategy::TwoLevelSwitch {
                devices_per_node: self.devices_per_node,
                num_nodes: self.nodes,
            },
        );
        for node in 0..self.nodes {
            for rank in 0..self.devices_per_node {
                b.add_device(Location::Cluster { node, rank });
            }
        }
        let node_switches: Vec<_> = (0..self.nodes).map(|_| b.add_switch()).collect();
        let core = b.add_switch();
        for node in 0..self.nodes {
            let sw = node_switches[node as usize];
            for rank in 0..self.devices_per_node {
                let dev = crate::device::DeviceId(
                    node as u32 * self.devices_per_node as u32 + rank as u32,
                );
                b.add_duplex(
                    crate::link::NodeId(dev.0),
                    sw,
                    self.params.nvlink_bw,
                    self.params.nvlink_latency,
                    LinkKind::NvLink,
                );
            }
            b.add_duplex(
                sw,
                core,
                self.params.infiniband_bw,
                self.params.infiniband_latency,
                LinkKind::InfiniBand,
            );
        }
        b.build()
    }
}

/// Builder for a flat supernode: `k` GPUs on one switch fabric (NVL72).
///
/// # Example
///
/// ```
/// use wsc_topology::{FlatSwitch, PlatformParams};
///
/// let nvl72 = FlatSwitch::nvl72(PlatformParams::nvl72()).build();
/// assert_eq!(nvl72.num_devices(), 72);
/// let a = wsc_topology::DeviceId(0);
/// let b = wsc_topology::DeviceId(71);
/// assert_eq!(nvl72.route(a, b).hops(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct FlatSwitch {
    k: u16,
    params: PlatformParams,
}

impl FlatSwitch {
    /// Creates a builder for a `k`-device flat supernode.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u16, params: PlatformParams) -> Self {
        assert!(k > 0, "supernode needs at least one device");
        FlatSwitch { k, params }
    }

    /// The NVIDIA NVL72 configuration: 72 devices.
    pub fn nvl72(params: PlatformParams) -> Self {
        Self::new(72, params)
    }

    /// Finalizes the topology.
    pub fn build(&self) -> Topology {
        let mut b =
            TopologyBuilder::with_strategy(format!("NVL{}", self.k), RouteStrategy::FlatSwitch);
        for rank in 0..self.k {
            b.add_device(Location::Cluster { node: 0, rank });
        }
        let sw = b.add_switch();
        for rank in 0..self.k {
            b.add_duplex(
                crate::link::NodeId(rank as u32),
                sw,
                self.params.nvlink_bw,
                self.params.nvlink_latency,
                LinkKind::NvLink,
            );
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;

    #[test]
    fn intra_node_two_hops() {
        let t = DgxCluster::new(2, PlatformParams::dgx_b200()).build();
        let r = t.route(DeviceId(0), DeviceId(7));
        assert_eq!(r.hops(), 2);
        assert!(r
            .links()
            .iter()
            .all(|&l| t.link(l).kind == LinkKind::NvLink));
    }

    #[test]
    fn inter_node_crosses_infiniband() {
        let t = DgxCluster::new(2, PlatformParams::dgx_b200()).build();
        let r = t.route(DeviceId(0), DeviceId(8));
        assert_eq!(r.hops(), 4);
        let ib = r
            .links()
            .iter()
            .filter(|&&l| t.link(l).kind == LinkKind::InfiniBand)
            .count();
        assert_eq!(ib, 2);
        // The bottleneck is the IB uplink.
        assert_eq!(
            t.route_bandwidth(&r),
            PlatformParams::dgx_b200().infiniband_bw
        );
    }

    #[test]
    fn nvl72_all_pairs_two_hops() {
        let t = FlatSwitch::nvl72(PlatformParams::nvl72()).build();
        for a in [0u32, 5, 71] {
            for b in [1u32, 40] {
                if a != b {
                    assert_eq!(t.route(DeviceId(a), DeviceId(b)).hops(), 2);
                }
            }
        }
    }

    #[test]
    fn custom_devices_per_node() {
        let t = DgxCluster::new(2, PlatformParams::dgx_b200())
            .devices_per_node(4)
            .build();
        assert_eq!(t.num_devices(), 8);
        assert_eq!(t.route(DeviceId(3), DeviceId(4)).hops(), 4);
    }
}
