//! The uniform topology representation and deterministic routing.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::device::{DeviceId, Location};
use crate::link::{Link, LinkId, LinkKind, NodeId};

/// Dimensions of a (possibly multi-)wafer mesh topology.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MeshDims {
    /// Number of wafers along X.
    pub wafers_x: u16,
    /// Number of wafers along Y.
    pub wafers_y: u16,
    /// Side length of each wafer (each wafer is `n × n` dies).
    pub n: u16,
}

impl MeshDims {
    /// Total number of dies across all wafers.
    pub fn num_devices(&self) -> usize {
        self.wafers_x as usize * self.wafers_y as usize * (self.n as usize).pow(2)
    }

    /// Number of wafers.
    pub fn num_wafers(&self) -> usize {
        self.wafers_x as usize * self.wafers_y as usize
    }
}

impl fmt::Display for MeshDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.num_wafers() == 1 {
            write!(f, "{0}x{0} WSC", self.n)
        } else {
            write!(f, "{}x({}x{}) WSC", self.num_wafers(), self.n, self.n)
        }
    }
}

/// A loop-free directed path through the topology, as a sequence of links.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Route {
    links: Vec<LinkId>,
}

impl Route {
    /// Creates a route from an ordered list of links.
    pub fn new(links: Vec<LinkId>) -> Self {
        Route { links }
    }

    /// The links traversed, in order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of links traversed (the paper's `hops`).
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// Whether the route is empty (source equals destination).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

impl Route {
    /// A borrowed view of this route, usable wherever a
    /// [`RouteRef`] is expected.
    pub fn as_view(&self) -> RouteRef<'_> {
        RouteRef { links: &self.links }
    }
}

impl FromIterator<LinkId> for Route {
    fn from_iter<I: IntoIterator<Item = LinkId>>(iter: I) -> Self {
        Route {
            links: iter.into_iter().collect(),
        }
    }
}

/// A borrowed route: the same surface as [`Route`] over a link slice owned
/// elsewhere (typically the flat CSR storage of a
/// [`RouteTable`](crate::RouteTable)).
///
/// `Copy`, pointer-sized, and allocation-free — the hot-path currency of the
/// flow-level simulator's pricing backends.
#[derive(Copy, Clone, Debug)]
pub struct RouteRef<'a> {
    links: &'a [LinkId],
}

impl<'a> RouteRef<'a> {
    /// Wraps an ordered link slice as a route view.
    pub fn new(links: &'a [LinkId]) -> Self {
        RouteRef { links }
    }

    /// The links traversed, in order (with the underlying storage lifetime).
    pub fn links(self) -> &'a [LinkId] {
        self.links
    }

    /// Number of links traversed.
    pub fn hops(self) -> usize {
        self.links.len()
    }

    /// Whether the route is empty (source equals destination).
    pub fn is_empty(self) -> bool {
        self.links.is_empty()
    }

    /// Materializes an owned [`Route`] (allocates; avoid on hot paths).
    pub fn to_route(self) -> Route {
        Route {
            links: self.links.to_vec(),
        }
    }
}

impl PartialEq for RouteRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.links == other.links
    }
}

impl Eq for RouteRef<'_> {}

impl PartialEq<Route> for RouteRef<'_> {
    fn eq(&self, other: &Route) -> bool {
        self.links == other.links()
    }
}

impl PartialEq<RouteRef<'_>> for Route {
    fn eq(&self, other: &RouteRef<'_>) -> bool {
        self.links() == other.links
    }
}

impl<'a> From<&'a Route> for RouteRef<'a> {
    fn from(route: &'a Route) -> Self {
        route.as_view()
    }
}

/// Routing strategy baked in by the topology builder.
#[derive(Clone, Debug)]
pub(crate) enum RouteStrategy {
    /// XY dimension-order routing at wafer level then die level.
    MeshXy(MeshDims),
    /// Device → node switch → (core switch →) node switch → device.
    TwoLevelSwitch {
        devices_per_node: u16,
        num_nodes: u16,
    },
    /// Device → switch → device.
    FlatSwitch,
    /// Breadth-first shortest path with deterministic tie-breaking; used for
    /// custom topologies.
    Bfs,
}

/// An interconnect topology: compute devices, switches, and directed links,
/// with deterministic routing.
///
/// Built by [`Mesh`](crate::Mesh), [`MultiWafer`](crate::MultiWafer),
/// [`DgxCluster`](crate::DgxCluster), [`FlatSwitch`](crate::FlatSwitch), or a
/// custom [`TopologyBuilder`].
#[derive(Clone, Debug)]
pub struct Topology {
    name: String,
    num_nodes: usize,
    locations: Vec<Location>,
    links: Vec<Link>,
    link_by_endpoints: HashMap<(NodeId, NodeId), LinkId>,
    adjacency: Vec<Vec<LinkId>>,
    strategy: RouteStrategy,
}

impl Topology {
    /// Human-readable name, e.g. `"4x4 WSC"` or `"DGX x4"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of compute devices.
    pub fn num_devices(&self) -> usize {
        self.locations.len()
    }

    /// Total number of interconnect nodes (devices plus switches).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Iterator over all device ids in ascending order.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.locations.len() as u32).map(DeviceId)
    }

    /// The interconnect node hosting a device. Device nodes are numbered
    /// before switch nodes, so this is the identity map on the raw index.
    pub fn device_node(&self, device: DeviceId) -> NodeId {
        NodeId(device.0)
    }

    /// The device at an interconnect node, if the node is a device.
    pub fn node_device(&self, node: NodeId) -> Option<DeviceId> {
        (node.index() < self.locations.len()).then_some(DeviceId(node.0))
    }

    /// Physical placement of a device.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range for this topology.
    pub fn location(&self, device: DeviceId) -> Location {
        self.locations[device.index()]
    }

    /// Mesh dimensions, if this is a wafer topology.
    pub fn mesh_dims(&self) -> Option<MeshDims> {
        match self.strategy {
            RouteStrategy::MeshXy(dims) => Some(dims),
            _ => None,
        }
    }

    /// The device at die coordinate `(x, y)` on the first wafer, if this is a
    /// mesh topology and the coordinate is in range.
    pub fn device_at_xy(&self, x: u16, y: u16) -> Option<DeviceId> {
        self.device_at(0, 0, x, y)
    }

    /// The device at die coordinate `(x, y)` on wafer `(wafer_x, wafer_y)`.
    pub fn device_at(&self, wafer_x: u16, wafer_y: u16, x: u16, y: u16) -> Option<DeviceId> {
        let dims = self.mesh_dims()?;
        if wafer_x >= dims.wafers_x || wafer_y >= dims.wafers_y || x >= dims.n || y >= dims.n {
            return None;
        }
        let per_wafer = (dims.n as u32).pow(2);
        let wafer_index = wafer_y as u32 * dims.wafers_x as u32 + wafer_x as u32;
        Some(DeviceId(
            wafer_index * per_wafer + y as u32 * dims.n as u32 + x as u32,
        ))
    }

    /// All links, indexable by [`LinkId::index`].
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The directed link from `src` to `dst`, if one exists.
    pub fn link_between(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.link_by_endpoints.get(&(src, dst)).copied()
    }

    /// Deterministic route from `src` to `dst`. Empty if `src == dst`.
    ///
    /// # Panics
    ///
    /// Panics if either device is out of range, or if the topology is
    /// disconnected (custom topologies only).
    pub fn route(&self, src: DeviceId, dst: DeviceId) -> Route {
        if src == dst {
            return Route::default();
        }
        match &self.strategy {
            RouteStrategy::MeshXy(dims) => self.mesh_route(*dims, src, dst),
            RouteStrategy::TwoLevelSwitch {
                devices_per_node,
                num_nodes,
            } => self.two_level_route(*devices_per_node, *num_nodes, src, dst),
            RouteStrategy::FlatSwitch => self.flat_route(src, dst),
            RouteStrategy::Bfs => self.bfs_route(src, dst),
        }
    }

    /// Number of hops between two devices under this topology's routing.
    pub fn hops(&self, src: DeviceId, dst: DeviceId) -> usize {
        self.route(src, dst).hops()
    }

    /// Sum of per-link latencies along a route (the `link_latency × hops`
    /// term of the paper's Eq. 1, with heterogeneous links supported).
    pub fn route_latency(&self, route: &Route) -> f64 {
        self.path_latency(route.links())
    }

    /// Sum of per-link latencies along an ordered link slice — the borrowed
    /// ([`RouteRef`]/CSR) counterpart of [`Topology::route_latency`].
    pub fn path_latency(&self, links: &[LinkId]) -> f64 {
        links.iter().map(|&l| self.links[l.index()].latency).sum()
    }

    /// Minimum bandwidth along a route (the uncontended bottleneck).
    ///
    /// Returns `f64::INFINITY` for an empty route.
    pub fn route_bandwidth(&self, route: &Route) -> f64 {
        self.path_bandwidth(route.links())
    }

    /// Minimum bandwidth along an ordered link slice — the borrowed
    /// ([`RouteRef`]/CSR) counterpart of [`Topology::route_bandwidth`].
    ///
    /// Returns `f64::INFINITY` for an empty slice.
    pub fn path_bandwidth(&self, links: &[LinkId]) -> f64 {
        links
            .iter()
            .map(|&l| self.links[l.index()].bandwidth)
            .fold(f64::INFINITY, f64::min)
    }

    fn push_link(&self, links: &mut Vec<LinkId>, src: NodeId, dst: NodeId) {
        let id = self
            .link_between(src, dst)
            .unwrap_or_else(|| panic!("no link {src} -> {dst} in topology {}", self.name));
        links.push(id);
    }

    /// XY walk between two dies on the *same* wafer, appending to `links`.
    fn intra_wafer_walk(
        &self,
        links: &mut Vec<LinkId>,
        dims: MeshDims,
        wafer: (u16, u16),
        from: (u16, u16),
        to: (u16, u16),
    ) {
        let node = |x: u16, y: u16| NodeId(self.device_at(wafer.0, wafer.1, x, y).expect("die").0);
        let (mut x, mut y) = from;
        while x != to.0 {
            let nx = if to.0 > x { x + 1 } else { x - 1 };
            self.push_link(links, node(x, y), node(nx, y));
            x = nx;
        }
        while y != to.1 {
            let ny = if to.1 > y { y + 1 } else { y - 1 };
            self.push_link(links, node(x, y), node(x, ny));
            y = ny;
        }
        debug_assert!(x < dims.n && y < dims.n);
    }

    fn mesh_route(&self, dims: MeshDims, src: DeviceId, dst: DeviceId) -> Route {
        let (a, b) = (self.location(src), self.location(dst));
        let (
            Location::Mesh {
                wafer_x: mut wx,
                wafer_y: mut wy,
                x,
                y,
            },
            Location::Mesh {
                wafer_x: twx,
                wafer_y: twy,
                x: tx,
                y: ty,
            },
        ) = (a, b)
        else {
            unreachable!("mesh topology has only mesh locations")
        };
        let mut links = Vec::new();
        let (mut cx, mut cy) = (x, y);
        // Wafer-level X crossings: exit at the border column, same row.
        while wx != twx {
            let step_pos = twx > wx;
            let border = if step_pos { dims.n - 1 } else { 0 };
            self.intra_wafer_walk(&mut links, dims, (wx, wy), (cx, cy), (border, cy));
            let nwx = if step_pos { wx + 1 } else { wx - 1 };
            let enter = if step_pos { 0 } else { dims.n - 1 };
            let from = NodeId(self.device_at(wx, wy, border, cy).expect("die").0);
            let to = NodeId(self.device_at(nwx, wy, enter, cy).expect("die").0);
            self.push_link(&mut links, from, to);
            wx = nwx;
            cx = enter;
        }
        // Wafer-level Y crossings: exit at the border row, same column.
        while wy != twy {
            let step_pos = twy > wy;
            let border = if step_pos { dims.n - 1 } else { 0 };
            self.intra_wafer_walk(&mut links, dims, (wx, wy), (cx, cy), (cx, border));
            let nwy = if step_pos { wy + 1 } else { wy - 1 };
            let enter = if step_pos { 0 } else { dims.n - 1 };
            let from = NodeId(self.device_at(wx, wy, cx, border).expect("die").0);
            let to = NodeId(self.device_at(wx, nwy, cx, enter).expect("die").0);
            self.push_link(&mut links, from, to);
            wy = nwy;
            cy = enter;
        }
        self.intra_wafer_walk(&mut links, dims, (wx, wy), (cx, cy), (tx, ty));
        Route::new(links)
    }

    fn two_level_route(
        &self,
        devices_per_node: u16,
        num_nodes: u16,
        src: DeviceId,
        dst: DeviceId,
    ) -> Route {
        let node_of = |d: DeviceId| (d.0 / devices_per_node as u32) as u16;
        let node_switch = |n: u16| NodeId(self.locations.len() as u32 + n as u32);
        let core_switch = NodeId(self.locations.len() as u32 + num_nodes as u32);
        let (sn, dn) = (node_of(src), node_of(dst));
        let mut links = Vec::new();
        self.push_link(&mut links, self.device_node(src), node_switch(sn));
        if sn != dn {
            self.push_link(&mut links, node_switch(sn), core_switch);
            self.push_link(&mut links, core_switch, node_switch(dn));
        }
        self.push_link(&mut links, node_switch(dn), self.device_node(dst));
        Route::new(links)
    }

    fn flat_route(&self, src: DeviceId, dst: DeviceId) -> Route {
        let switch = NodeId(self.locations.len() as u32);
        let mut links = Vec::new();
        self.push_link(&mut links, self.device_node(src), switch);
        self.push_link(&mut links, switch, self.device_node(dst));
        Route::new(links)
    }

    fn bfs_route(&self, src: DeviceId, dst: DeviceId) -> Route {
        let start = self.device_node(src);
        let goal = self.device_node(dst);
        let mut prev: Vec<Option<LinkId>> = vec![None; self.num_nodes];
        let mut seen = vec![false; self.num_nodes];
        seen[start.index()] = true;
        let mut queue = VecDeque::from([start]);
        'bfs: while let Some(cur) = queue.pop_front() {
            for &lid in &self.adjacency[cur.index()] {
                let next = self.links[lid.index()].dst;
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    prev[next.index()] = Some(lid);
                    if next == goal {
                        break 'bfs;
                    }
                    queue.push_back(next);
                }
            }
        }
        let mut links = Vec::new();
        let mut cur = goal;
        while cur != start {
            let lid = prev[cur.index()]
                .unwrap_or_else(|| panic!("topology {} is disconnected", self.name));
            links.push(lid);
            cur = self.links[lid.index()].src;
        }
        links.reverse();
        Route::new(links)
    }
}

/// Incremental builder for custom topologies (exposed mainly for tests and
/// exotic platforms; the provided platform builders cover the paper).
///
/// # Example
///
/// ```
/// use wsc_topology::topology::TopologyBuilder;
/// use wsc_topology::{Location, LinkKind};
///
/// let mut b = TopologyBuilder::custom("two-dies");
/// let d0 = b.add_device(Location::on_wafer(0, 0));
/// let d1 = b.add_device(Location::on_wafer(1, 0));
/// b.add_duplex_by_device(d0, d1, 1e12, 1e-7, LinkKind::OnWafer);
/// let topo = b.build();
/// assert_eq!(topo.route(d0, d1).hops(), 1);
/// ```
#[derive(Debug)]
pub struct TopologyBuilder {
    name: String,
    locations: Vec<Location>,
    num_switches: usize,
    links: Vec<Link>,
    strategy: Option<RouteStrategy>,
}

impl TopologyBuilder {
    /// Starts building a custom topology routed by BFS shortest path.
    pub fn custom(name: impl Into<String>) -> Self {
        TopologyBuilder {
            name: name.into(),
            locations: Vec::new(),
            num_switches: 0,
            links: Vec::new(),
            strategy: None,
        }
    }

    pub(crate) fn with_strategy(name: impl Into<String>, strategy: RouteStrategy) -> Self {
        TopologyBuilder {
            strategy: Some(strategy),
            ..Self::custom(name)
        }
    }

    /// Adds a compute device; devices must all be added before switches.
    ///
    /// # Panics
    ///
    /// Panics if a switch has already been added.
    pub fn add_device(&mut self, location: Location) -> DeviceId {
        assert_eq!(self.num_switches, 0, "add all devices before switches");
        let id = DeviceId(self.locations.len() as u32);
        self.locations.push(location);
        id
    }

    /// Adds a switch node and returns its node id.
    pub fn add_switch(&mut self) -> NodeId {
        let id = NodeId((self.locations.len() + self.num_switches) as u32);
        self.num_switches += 1;
        id
    }

    /// Adds a single directed link.
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bandwidth: f64,
        latency: f64,
        kind: LinkKind,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            src,
            dst,
            bandwidth,
            latency,
            kind,
        });
        id
    }

    /// Adds a pair of directed links, one in each direction.
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth: f64,
        latency: f64,
        kind: LinkKind,
    ) -> (LinkId, LinkId) {
        (
            self.add_link(a, b, bandwidth, latency, kind),
            self.add_link(b, a, bandwidth, latency, kind),
        )
    }

    /// Adds a duplex link between two devices.
    pub fn add_duplex_by_device(
        &mut self,
        a: DeviceId,
        b: DeviceId,
        bandwidth: f64,
        latency: f64,
        kind: LinkKind,
    ) -> (LinkId, LinkId) {
        self.add_duplex(NodeId(a.0), NodeId(b.0), bandwidth, latency, kind)
    }

    /// Finalizes the topology.
    ///
    /// # Panics
    ///
    /// Panics if two links share the same `(src, dst)` endpoints.
    pub fn build(self) -> Topology {
        let num_nodes = self.locations.len() + self.num_switches;
        let mut link_by_endpoints = HashMap::with_capacity(self.links.len());
        let mut adjacency = vec![Vec::new(); num_nodes];
        for link in &self.links {
            let dup = link_by_endpoints.insert((link.src, link.dst), link.id);
            assert!(
                dup.is_none(),
                "duplicate link {} -> {} in topology {}",
                link.src,
                link.dst,
                self.name
            );
            adjacency[link.src.index()].push(link.id);
        }
        Topology {
            name: self.name,
            num_nodes,
            locations: self.locations,
            links: self.links,
            link_by_endpoints,
            adjacency,
            strategy: self.strategy.unwrap_or(RouteStrategy::Bfs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_topology(n: u32) -> Topology {
        let mut b = TopologyBuilder::custom("line");
        let devs: Vec<DeviceId> = (0..n)
            .map(|i| b.add_device(Location::on_wafer(i as u16, 0)))
            .collect();
        for w in devs.windows(2) {
            b.add_duplex_by_device(w[0], w[1], 1e9, 1e-6, LinkKind::OnWafer);
        }
        b.build()
    }

    #[test]
    fn bfs_route_on_line() {
        let t = line_topology(5);
        let r = t.route(DeviceId(0), DeviceId(4));
        assert_eq!(r.hops(), 4);
        assert!((t.route_latency(&r) - 4e-6).abs() < 1e-12);
        assert_eq!(t.route_bandwidth(&r), 1e9);
    }

    #[test]
    fn self_route_is_empty() {
        let t = line_topology(3);
        let r = t.route(DeviceId(1), DeviceId(1));
        assert!(r.is_empty());
        assert_eq!(t.route_bandwidth(&r), f64::INFINITY);
    }

    #[test]
    fn route_collects_from_iterator() {
        let r: Route = [LinkId(0), LinkId(1)].into_iter().collect();
        assert_eq!(r.hops(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_links_rejected() {
        let mut b = TopologyBuilder::custom("dup");
        let d0 = b.add_device(Location::on_wafer(0, 0));
        let d1 = b.add_device(Location::on_wafer(1, 0));
        b.add_link(NodeId(d0.0), NodeId(d1.0), 1.0, 0.0, LinkKind::OnWafer);
        b.add_link(NodeId(d0.0), NodeId(d1.0), 1.0, 0.0, LinkKind::OnWafer);
        b.build();
    }

    #[test]
    fn mesh_dims_display() {
        let single = MeshDims {
            wafers_x: 1,
            wafers_y: 1,
            n: 6,
        };
        assert_eq!(single.to_string(), "6x6 WSC");
        assert_eq!(single.num_devices(), 36);
        let multi = MeshDims {
            wafers_x: 2,
            wafers_y: 2,
            n: 8,
        };
        assert_eq!(multi.to_string(), "4x(8x8) WSC");
        assert_eq!(multi.num_devices(), 256);
    }
}
