//! Compute-device identity and physical placement.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a compute device (a die on a wafer, or a GPU in a cluster).
///
/// `DeviceId`s are dense indices assigned by the topology builder in a
/// deterministic order (row-major within a wafer, wafer-major across wafers;
/// rank-major within a node for clusters), so they can be used directly as
/// `Vec` indices via [`DeviceId::index`].
///
/// # Example
///
/// ```
/// use wsc_topology::DeviceId;
///
/// let d = DeviceId(3);
/// assert_eq!(d.index(), 3);
/// assert_eq!(d.to_string(), "dev3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Returns the device id as a `usize` suitable for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

impl From<u32> for DeviceId {
    fn from(raw: u32) -> Self {
        DeviceId(raw)
    }
}

/// Physical placement of a device within its topology.
///
/// Mesh placements carry both the wafer grid coordinate and the die
/// coordinate within the wafer; cluster placements carry the node index and
/// the local rank.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Location {
    /// A die on a (possibly multi-)wafer mesh.
    Mesh {
        /// X index of the wafer in the wafer grid (0 for single-wafer).
        wafer_x: u16,
        /// Y index of the wafer in the wafer grid (0 for single-wafer).
        wafer_y: u16,
        /// X coordinate of the die within its wafer, `0..n`.
        x: u16,
        /// Y coordinate of the die within its wafer, `0..n`.
        y: u16,
    },
    /// A GPU in a switch-based cluster.
    Cluster {
        /// Index of the node (DGX box) hosting the GPU; always 0 for flat
        /// supernodes such as NVL72.
        node: u16,
        /// Local rank of the GPU within its node.
        rank: u16,
    },
}

impl Location {
    /// Convenience constructor for a die on a single wafer.
    pub fn on_wafer(x: u16, y: u16) -> Self {
        Location::Mesh {
            wafer_x: 0,
            wafer_y: 0,
            x,
            y,
        }
    }

    /// Die coordinate within its wafer, if this is a mesh placement.
    pub fn xy(&self) -> Option<(u16, u16)> {
        match *self {
            Location::Mesh { x, y, .. } => Some((x, y)),
            Location::Cluster { .. } => None,
        }
    }

    /// Wafer grid coordinate, if this is a mesh placement.
    pub fn wafer(&self) -> Option<(u16, u16)> {
        match *self {
            Location::Mesh {
                wafer_x, wafer_y, ..
            } => Some((wafer_x, wafer_y)),
            Location::Cluster { .. } => None,
        }
    }

    /// Node index, if this is a cluster placement.
    pub fn node(&self) -> Option<u16> {
        match *self {
            Location::Cluster { node, .. } => Some(node),
            Location::Mesh { .. } => None,
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Location::Mesh {
                wafer_x,
                wafer_y,
                x,
                y,
            } => write!(f, "wafer({wafer_x},{wafer_y}):die({x},{y})"),
            Location::Cluster { node, rank } => write!(f, "node{node}:gpu{rank}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_id_roundtrip() {
        let d = DeviceId::from(7u32);
        assert_eq!(d.index(), 7);
        assert_eq!(format!("{d}"), "dev7");
    }

    #[test]
    fn location_accessors() {
        let m = Location::on_wafer(2, 3);
        assert_eq!(m.xy(), Some((2, 3)));
        assert_eq!(m.wafer(), Some((0, 0)));
        assert_eq!(m.node(), None);

        let c = Location::Cluster { node: 1, rank: 5 };
        assert_eq!(c.xy(), None);
        assert_eq!(c.node(), Some(1));
        assert_eq!(format!("{c}"), "node1:gpu5");
    }

    #[test]
    fn location_display_mesh() {
        let m = Location::Mesh {
            wafer_x: 1,
            wafer_y: 0,
            x: 2,
            y: 3,
        };
        assert_eq!(format!("{m}"), "wafer(1,0):die(2,3)");
    }

    #[test]
    fn device_id_ordering_is_numeric() {
        assert!(DeviceId(2) < DeviceId(10));
    }
}
