//! Directed links and interconnect node identity.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an interconnect node: either a compute device or a switch.
///
/// Switches exist only in cluster topologies (NVSwitch stars, the InfiniBand
/// core); wafer meshes contain only device nodes.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node id as a `usize` suitable for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a directed link.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Returns the link id as a `usize` suitable for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// The physical class of a link; determines bandwidth and latency defaults
/// and lets analyses group traffic by interconnect tier.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum LinkKind {
    /// Die-to-die link on a wafer interposer.
    OnWafer,
    /// Wafer-to-wafer border link (through peripheral I/O dies).
    WaferBorder,
    /// GPU-to-NVSwitch link inside a node or flat supernode.
    NvLink,
    /// Node-to-core InfiniBand uplink.
    InfiniBand,
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkKind::OnWafer => "on-wafer",
            LinkKind::WaferBorder => "wafer-border",
            LinkKind::NvLink => "nvlink",
            LinkKind::InfiniBand => "infiniband",
        };
        f.write_str(s)
    }
}

/// A directed link between two interconnect nodes.
///
/// Bandwidth is in bytes per second *per direction*; the reverse direction is
/// a distinct `Link`. Latency is the per-hop traversal latency in seconds
/// (wire + protocol), matching the `link_latency` term of the paper's Eq. 1.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Link {
    /// Identifier of this link (dense index into [`Topology::links`]).
    ///
    /// [`Topology::links`]: crate::Topology::links
    pub id: LinkId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Bandwidth in bytes/second for this direction.
    pub bandwidth: f64,
    /// Per-traversal latency in seconds.
    pub latency: f64,
    /// Physical class of the link.
    pub kind: LinkKind,
}

impl Link {
    /// Time in seconds to serialize `bytes` onto this link at full bandwidth,
    /// excluding the propagation latency.
    ///
    /// # Example
    ///
    /// ```
    /// use wsc_topology::{Link, LinkId, LinkKind, NodeId};
    ///
    /// let link = Link {
    ///     id: LinkId(0),
    ///     src: NodeId(0),
    ///     dst: NodeId(1),
    ///     bandwidth: 4.0e12,
    ///     latency: 50e-9,
    ///     kind: LinkKind::OnWafer,
    /// };
    /// assert!((link.serialization_time(4.0e9) - 1e-3).abs() < 1e-12);
    /// ```
    pub fn serialization_time(&self, bytes: f64) -> f64 {
        bytes / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_kind_display() {
        assert_eq!(LinkKind::OnWafer.to_string(), "on-wafer");
        assert_eq!(LinkKind::WaferBorder.to_string(), "wafer-border");
        assert_eq!(LinkKind::NvLink.to_string(), "nvlink");
        assert_eq!(LinkKind::InfiniBand.to_string(), "infiniband");
    }

    #[test]
    fn serialization_time_scales_linearly() {
        let link = Link {
            id: LinkId(1),
            src: NodeId(0),
            dst: NodeId(1),
            bandwidth: 1e9,
            latency: 0.0,
            kind: LinkKind::NvLink,
        };
        assert!((link.serialization_time(1e9) - 1.0).abs() < 1e-12);
        assert!((link.serialization_time(5e8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(4).to_string(), "node4");
        assert_eq!(LinkId(9).to_string(), "link9");
    }
}
