//! Single-wafer mesh builder.

use crate::device::Location;
use crate::link::LinkKind;
use crate::params::PlatformParams;
use crate::topology::{MeshDims, RouteStrategy, Topology, TopologyBuilder};

/// Builder for a single-wafer `n × n` die mesh.
///
/// Dies are connected to their four nearest neighbours with duplex on-wafer
/// links; there are no diagonal or long-range links (signal-integrity
/// constraints, paper §II-B). Device ids are assigned row-major:
/// `id = y * n + x`.
///
/// # Example
///
/// ```
/// use wsc_topology::{Mesh, PlatformParams};
///
/// let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
/// assert_eq!(topo.num_devices(), 16);
/// // 2 * 2 * n * (n-1) directed links.
/// assert_eq!(topo.num_links(), 48);
/// ```
#[derive(Clone, Debug)]
pub struct Mesh {
    n: u16,
    params: PlatformParams,
}

impl Mesh {
    /// Creates a builder for an `n × n` wafer.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u16, params: PlatformParams) -> Self {
        assert!(n > 0, "mesh side must be positive");
        Mesh { n, params }
    }

    /// Finalizes the topology.
    pub fn build(&self) -> Topology {
        build_wafer_grid(1, 1, self.n, self.params)
    }
}

/// Shared construction for single- and multi-wafer grids.
pub(crate) fn build_wafer_grid(
    wafers_x: u16,
    wafers_y: u16,
    n: u16,
    params: PlatformParams,
) -> Topology {
    let dims = MeshDims {
        wafers_x,
        wafers_y,
        n,
    };
    let mut b = TopologyBuilder::with_strategy(dims.to_string(), RouteStrategy::MeshXy(dims));

    // Devices: wafer-major, then row-major within each wafer, matching
    // `Topology::device_at`.
    for wy in 0..wafers_y {
        for wx in 0..wafers_x {
            for y in 0..n {
                for x in 0..n {
                    b.add_device(Location::Mesh {
                        wafer_x: wx,
                        wafer_y: wy,
                        x,
                        y,
                    });
                }
            }
        }
    }
    let per_wafer = n as u32 * n as u32;
    let dev = |wx: u16, wy: u16, x: u16, y: u16| {
        crate::device::DeviceId(
            (wy as u32 * wafers_x as u32 + wx as u32) * per_wafer + y as u32 * n as u32 + x as u32,
        )
    };

    // Intra-wafer nearest-neighbour links.
    for wy in 0..wafers_y {
        for wx in 0..wafers_x {
            for y in 0..n {
                for x in 0..n {
                    if x + 1 < n {
                        b.add_duplex_by_device(
                            dev(wx, wy, x, y),
                            dev(wx, wy, x + 1, y),
                            params.on_wafer_bw,
                            params.on_wafer_latency,
                            LinkKind::OnWafer,
                        );
                    }
                    if y + 1 < n {
                        b.add_duplex_by_device(
                            dev(wx, wy, x, y),
                            dev(wx, wy, x, y + 1),
                            params.on_wafer_bw,
                            params.on_wafer_latency,
                            LinkKind::OnWafer,
                        );
                    }
                }
            }
        }
    }

    // Wafer border links: every border row (for X crossings) / column (for Y
    // crossings) gets a link carrying an equal share of the border budget.
    let border_link_bw = params.wafer_border_bw / n as f64;
    for wy in 0..wafers_y {
        for wx in 0..wafers_x {
            if wx + 1 < wafers_x {
                for y in 0..n {
                    b.add_duplex_by_device(
                        dev(wx, wy, n - 1, y),
                        dev(wx + 1, wy, 0, y),
                        border_link_bw,
                        params.wafer_border_latency,
                        LinkKind::WaferBorder,
                    );
                }
            }
            if wy + 1 < wafers_y {
                for x in 0..n {
                    b.add_duplex_by_device(
                        dev(wx, wy, x, n - 1),
                        dev(wx, wy + 1, x, 0),
                        border_link_bw,
                        params.wafer_border_latency,
                        LinkKind::WaferBorder,
                    );
                }
            }
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;

    #[test]
    fn mesh_link_count() {
        // n x n mesh: 2 directions * 2 axes * n * (n-1) links.
        for n in [2u16, 3, 4, 6, 8] {
            let t = Mesh::new(n, PlatformParams::dojo_like()).build();
            let expected = 4 * n as usize * (n as usize - 1);
            assert_eq!(t.num_links(), expected, "n={n}");
        }
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let t = Mesh::new(4, PlatformParams::dojo_like()).build();
        let a = t.device_at_xy(0, 0).unwrap();
        let b = t.device_at_xy(2, 2).unwrap();
        let r = t.route(a, b);
        assert_eq!(r.hops(), 4);
        // First two hops move in X: destinations are (1,0), (2,0).
        let first = t.link(r.links()[0]);
        let second = t.link(r.links()[1]);
        assert_eq!(t.node_device(first.dst), t.device_at_xy(1, 0));
        assert_eq!(t.node_device(second.dst), t.device_at_xy(2, 0));
    }

    #[test]
    fn all_links_on_wafer_kind() {
        let t = Mesh::new(3, PlatformParams::dojo_like()).build();
        assert!(t.links().iter().all(|l| l.kind == LinkKind::OnWafer));
    }

    #[test]
    fn manhattan_distance_equals_hops() {
        let t = Mesh::new(6, PlatformParams::dojo_like()).build();
        for (ax, ay, bx, by) in [(0u16, 0u16, 5u16, 5u16), (2, 3, 4, 1), (5, 0, 0, 5)] {
            let a = t.device_at_xy(ax, ay).unwrap();
            let b = t.device_at_xy(bx, by).unwrap();
            let expect =
                (ax as i32 - bx as i32).unsigned_abs() + (ay as i32 - by as i32).unsigned_abs();
            assert_eq!(t.hops(a, b), expect as usize);
        }
    }

    #[test]
    #[should_panic(expected = "mesh side must be positive")]
    fn zero_mesh_rejected() {
        let _ = Mesh::new(0, PlatformParams::dojo_like());
    }
}
