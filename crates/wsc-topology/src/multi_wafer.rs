//! Multi-wafer grid builder.

use crate::mesh::build_wafer_grid;
use crate::params::PlatformParams;
use crate::topology::Topology;

/// Builder for a grid of wafers joined by border links.
///
/// Each wafer is an `n × n` mesh; adjacent wafers are joined by `n` duplex
/// border links (one per border row/column), which together share the
/// per-border bandwidth budget of [`PlatformParams::wafer_border_bw`]
/// (9 TB/s bidirectional in the paper's Dojo-like configuration).
///
/// The paper's multi-WSC system "4×(8×8)" is `MultiWafer::grid(2, 2, 8)`.
///
/// # Example
///
/// ```
/// use wsc_topology::{MultiWafer, PlatformParams};
///
/// let topo = MultiWafer::grid(2, 2, 4, PlatformParams::dojo_like()).build();
/// assert_eq!(topo.num_devices(), 64);
/// let dims = topo.mesh_dims().unwrap();
/// assert_eq!(dims.num_wafers(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct MultiWafer {
    wafers_x: u16,
    wafers_y: u16,
    n: u16,
    params: PlatformParams,
}

impl MultiWafer {
    /// Creates a builder for a `wafers_x × wafers_y` grid of `n × n` wafers.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn grid(wafers_x: u16, wafers_y: u16, n: u16, params: PlatformParams) -> Self {
        assert!(
            wafers_x > 0 && wafers_y > 0 && n > 0,
            "all dimensions must be positive"
        );
        MultiWafer {
            wafers_x,
            wafers_y,
            n,
            params,
        }
    }

    /// Convenience constructor for the paper's `k×(n×n)` systems with wafers
    /// arranged as square a grid as possible.
    ///
    /// # Panics
    ///
    /// Panics if `num_wafers` is not expressible as a grid (1, 2, 4, 6, 8, 9,
    /// ... are fine; any value works since `1 × k` is a valid grid).
    pub fn row_of(num_wafers: u16, n: u16, params: PlatformParams) -> Self {
        // Prefer the squarest factorization a*b = num_wafers with a <= b.
        let mut best = (1, num_wafers);
        for a in 1..=num_wafers {
            if num_wafers.is_multiple_of(a) {
                let bdim = num_wafers / a;
                if a <= bdim && bdim - a < best.1 - best.0 {
                    best = (a, bdim);
                }
            }
        }
        Self::grid(best.1, best.0, n, params)
    }

    /// Finalizes the topology.
    pub fn build(&self) -> Topology {
        build_wafer_grid(self.wafers_x, self.wafers_y, self.n, self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;

    #[test]
    fn border_links_share_budget() {
        let params = PlatformParams::dojo_like();
        let t = MultiWafer::grid(2, 1, 4, params).build();
        let borders: Vec<_> = t
            .links()
            .iter()
            .filter(|l| l.kind == LinkKind::WaferBorder)
            .collect();
        // 4 rows, duplex.
        assert_eq!(borders.len(), 8);
        let total_one_direction: f64 = borders.iter().map(|l| l.bandwidth).sum::<f64>() / 2.0;
        assert!((total_one_direction - params.wafer_border_bw).abs() < 1.0);
    }

    #[test]
    fn cross_wafer_route_uses_border() {
        let t = MultiWafer::grid(2, 2, 4, PlatformParams::dojo_like()).build();
        let a = t.device_at(0, 0, 1, 1).unwrap();
        let b = t.device_at(1, 1, 2, 2).unwrap();
        let r = t.route(a, b);
        let border_hops = r
            .links()
            .iter()
            .filter(|&&l| t.link(l).kind == LinkKind::WaferBorder)
            .count();
        assert_eq!(border_hops, 2, "one X crossing and one Y crossing");
        // Route: (1,1) -> (3,1) [2 hops] -> border -> (0,1) on wafer(1,0)
        // -> walk y to (0,3)? No: X crossings first at y=1, then Y crossing
        // at x=2. Verify endpoint count instead: total hops is at least
        // manhattan-ish; just check it's loop-free and nonempty.
        assert!(r.hops() >= 4);
    }

    #[test]
    fn row_of_prefers_square_grids() {
        let m = MultiWafer::row_of(4, 4, PlatformParams::dojo_like());
        let t = m.build();
        let dims = t.mesh_dims().unwrap();
        assert_eq!((dims.wafers_x, dims.wafers_y), (2, 2));

        let m = MultiWafer::row_of(2, 4, PlatformParams::dojo_like());
        let dims = m.build().mesh_dims().unwrap();
        assert_eq!((dims.wafers_x, dims.wafers_y), (2, 1));
    }

    #[test]
    fn device_ids_wafer_major() {
        let t = MultiWafer::grid(2, 1, 3, PlatformParams::dojo_like()).build();
        // Second wafer starts at id 9.
        let d = t.device_at(1, 0, 0, 0).unwrap();
        assert_eq!(d.0, 9);
    }
}
