//! Platform bandwidth/latency parameter sets.

use serde::{Deserialize, Serialize};

/// Bandwidth and latency parameters for the platforms evaluated in the paper
/// (§VI-A1).
///
/// All bandwidths are **bytes/second per direction**. The paper quotes
/// bidirectional figures (8 TB/s die-to-die, 9 TB/s per wafer border,
/// 1.8 TB/s NVLink); halving them gives the per-direction link capacity used
/// by the simulator.
///
/// # Example
///
/// ```
/// use wsc_topology::PlatformParams;
///
/// let p = PlatformParams::dojo_like();
/// assert!((p.on_wafer_bw - 4.0e12).abs() < 1.0);
/// ```
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct PlatformParams {
    /// Die-to-die on-wafer bandwidth, bytes/s per direction.
    pub on_wafer_bw: f64,
    /// Total cross-wafer bandwidth of one wafer border, bytes/s per
    /// direction; shared by the `n` row (or column) border links.
    pub wafer_border_bw: f64,
    /// GPU↔NVSwitch bandwidth, bytes/s per direction.
    pub nvlink_bw: f64,
    /// Node↔core InfiniBand bandwidth, bytes/s per direction (all NICs of a
    /// node aggregated).
    pub infiniband_bw: f64,
    /// Per-hop latency of an on-wafer link, seconds.
    pub on_wafer_latency: f64,
    /// Per-hop latency of a wafer border link, seconds.
    pub wafer_border_latency: f64,
    /// Per-hop latency of an NVLink link (device↔switch), seconds.
    pub nvlink_latency: f64,
    /// Per-hop latency of an InfiniBand uplink, seconds.
    pub infiniband_latency: f64,
}

impl PlatformParams {
    /// Tesla-Dojo-like wafer-scale parameters used by the paper: 8 TB/s
    /// bidirectional die-to-die, 9 TB/s bidirectional per wafer border.
    pub fn dojo_like() -> Self {
        PlatformParams {
            on_wafer_bw: 4.0e12,
            wafer_border_bw: 4.5e12,
            nvlink_bw: 0.9e12,
            infiniband_bw: 400.0e9,
            on_wafer_latency: 50e-9,
            wafer_border_latency: 100e-9,
            nvlink_latency: 150e-9,
            infiniband_latency: 1.0e-6,
        }
    }

    /// DGX-B200-like cluster parameters: 1.8 TB/s bidirectional NVLink per
    /// GPU, 8×400 Gb/s InfiniBand NICs per node (≈400 GB/s per direction).
    pub fn dgx_b200() -> Self {
        // Same numbers as the unified set: the kinds select which fields a
        // topology uses.
        Self::dojo_like()
    }

    /// NVL72-like supernode parameters: every GPU attaches to the switch
    /// fabric at 1.8 TB/s bidirectional.
    pub fn nvl72() -> Self {
        Self::dojo_like()
    }

    /// Returns a copy with the on-wafer bandwidth replaced (useful for
    /// sensitivity sweeps).
    pub fn with_on_wafer_bw(mut self, bw: f64) -> Self {
        self.on_wafer_bw = bw;
        self
    }

    /// Returns a copy with the NVLink bandwidth replaced.
    pub fn with_nvlink_bw(mut self, bw: f64) -> Self {
        self.nvlink_bw = bw;
        self
    }

    /// Returns a copy with the InfiniBand bandwidth replaced.
    pub fn with_infiniband_bw(mut self, bw: f64) -> Self {
        self.infiniband_bw = bw;
        self
    }
}

impl Default for PlatformParams {
    fn default() -> Self {
        Self::dojo_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_paper_values() {
        let p = PlatformParams::dojo_like();
        // 8 TB/s bidirectional => 4 TB/s per direction.
        assert_eq!(p.on_wafer_bw, 4.0e12);
        // 9 TB/s bidirectional border => 4.5 TB/s per direction.
        assert_eq!(p.wafer_border_bw, 4.5e12);
        // 1.8 TB/s bidirectional NVLink => 0.9 TB/s per direction.
        assert_eq!(p.nvlink_bw, 0.9e12);
        assert_eq!(p.infiniband_bw, 400.0e9);
    }

    #[test]
    fn builder_style_overrides() {
        let p = PlatformParams::default().with_on_wafer_bw(1.0);
        assert_eq!(p.on_wafer_bw, 1.0);
        let p = p.with_nvlink_bw(2.0).with_infiniband_bw(3.0);
        assert_eq!(p.nvlink_bw, 2.0);
        assert_eq!(p.infiniband_bw, 3.0);
    }

    #[test]
    fn wsc_link_latency_below_cluster_latency() {
        let p = PlatformParams::dojo_like();
        assert!(p.on_wafer_latency < p.nvlink_latency);
        assert!(p.nvlink_latency < p.infiniband_latency);
    }
}
