//! Closed-form congestion estimation.

use serde::{Deserialize, Serialize};
use wsc_topology::{DeviceId, Route, RouteTable, Topology};

use crate::flow::FlowSpec;
use crate::schedule::FlowSchedule;

/// Closed-form estimate for a set of concurrent flows.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct AnalyticEstimate {
    /// Serialization time of the most-loaded link, seconds
    /// (`max_l volume_l / bandwidth_l`).
    pub serialization_time: f64,
    /// Largest summed route latency among the flows, seconds.
    pub latency_time: f64,
    /// `serialization_time + latency_time`.
    pub total_time: f64,
    /// Bytes accumulated per link (indexed by `LinkId::index`).
    pub link_volume: Vec<f64>,
    /// Total payload bytes.
    pub total_bytes: f64,
    /// Largest hop count among the flows.
    pub max_hops: usize,
}

impl AnalyticEstimate {
    fn empty(num_links: usize) -> Self {
        AnalyticEstimate {
            link_volume: vec![0.0; num_links],
            ..Default::default()
        }
    }

    /// Sequential composition: the other estimate happens after this one.
    pub fn then(mut self, other: &AnalyticEstimate) -> Self {
        self.serialization_time += other.serialization_time;
        self.latency_time += other.latency_time;
        self.total_time += other.total_time;
        for (a, b) in self.link_volume.iter_mut().zip(&other.link_volume) {
            *a += b;
        }
        self.total_bytes += other.total_bytes;
        self.max_hops = self.max_hops.max(other.max_hops);
        self
    }
}

/// Bottleneck-link analytical model: fast congestion-aware latency estimates
/// for large flow sets.
///
/// The estimate for a set of concurrent flows is
/// `max_l (Σ bytes over l) / bandwidth_l + max_f Σ latency(route_f)` —
/// i.e. the most congested link limits the phase, and the longest route's
/// link latency is paid once. This matches the flow-level simulator exactly
/// for uniform single-bottleneck patterns and is within a small factor for
/// mesh all-to-all (validated in the integration tests).
///
/// # Example
///
/// ```
/// use wsc_topology::{Mesh, PlatformParams};
/// use wsc_sim::{AnalyticModel, FlowSpec};
///
/// let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
/// let a = topo.device_at_xy(0, 0).unwrap();
/// let b = topo.device_at_xy(1, 0).unwrap();
/// let model = AnalyticModel::new(&topo);
/// let est = model.estimate_flows(&[FlowSpec::new(topo.route(a, b), 4.0e12)]);
/// assert!((est.serialization_time - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct AnalyticModel<'a> {
    topo: &'a Topology,
}

impl<'a> AnalyticModel<'a> {
    /// Creates a model over `topo`.
    pub fn new(topo: &'a Topology) -> Self {
        AnalyticModel { topo }
    }

    /// The topology being modelled.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Estimates a set of concurrent flows.
    pub fn estimate_flows(&self, flows: &[FlowSpec]) -> AnalyticEstimate {
        self.estimate_iter(flows.iter().map(|f| (&f.route, f.bytes)))
    }

    /// Estimates concurrent transfers given as `(route, bytes)` pairs,
    /// avoiding `FlowSpec` allocation for hot paths.
    pub fn estimate_iter<'r>(
        &self,
        transfers: impl IntoIterator<Item = (&'r Route, f64)>,
    ) -> AnalyticEstimate {
        let mut est = AnalyticEstimate::empty(self.topo.num_links());
        for (route, bytes) in transfers {
            est.total_bytes += bytes;
            est.max_hops = est.max_hops.max(route.hops());
            let mut lat = 0.0;
            for &l in route.links() {
                est.link_volume[l.index()] += bytes;
                lat += self.topo.link(l).latency;
            }
            est.latency_time = est.latency_time.max(lat);
        }
        est.serialization_time = est
            .link_volume
            .iter()
            .zip(self.topo.links())
            .map(|(&v, l)| v / l.bandwidth)
            .fold(0.0, f64::max);
        est.total_time = est.serialization_time + est.latency_time;
        est
    }

    /// Estimates point-to-point transfers between devices using a
    /// precomputed route table.
    pub fn estimate_pairs(
        &self,
        table: &RouteTable,
        pairs: impl IntoIterator<Item = (DeviceId, DeviceId, f64)>,
    ) -> AnalyticEstimate {
        let mut est = AnalyticEstimate::empty(self.topo.num_links());
        for (src, dst, bytes) in pairs {
            if bytes <= 0.0 {
                continue;
            }
            let route = table.route(src, dst);
            est.total_bytes += bytes;
            est.max_hops = est.max_hops.max(route.hops());
            let mut lat = 0.0;
            for &l in route.links() {
                est.link_volume[l.index()] += bytes;
                lat += self.topo.link(l).latency;
            }
            est.latency_time = est.latency_time.max(lat);
        }
        est.serialization_time = est
            .link_volume
            .iter()
            .zip(self.topo.links())
            .map(|(&v, l)| v / l.bandwidth)
            .fold(0.0, f64::max);
        est.total_time = est.serialization_time + est.latency_time;
        est
    }

    /// Estimates a phased schedule: phases are sequential, so their
    /// estimates add.
    pub fn estimate_schedule(&self, schedule: &FlowSchedule) -> AnalyticEstimate {
        let mut total = AnalyticEstimate::empty(self.topo.num_links());
        for phase in schedule.phases() {
            let phase_est = self.estimate_flows(&phase.flows);
            total = total.then(&phase_est);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkSim;
    use wsc_topology::{Mesh, PlatformParams};

    #[test]
    fn matches_des_for_single_bottleneck() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let flows = vec![
            FlowSpec::new(topo.route(a, b), 4.0e9),
            FlowSpec::new(topo.route(a, b), 4.0e9),
        ];
        let est = AnalyticModel::new(&topo).estimate_flows(&flows);
        let des = NetworkSim::new(&topo).run_concurrent(&flows);
        assert!((est.total_time - des.total_time).abs() / des.total_time < 1e-9);
    }

    #[test]
    fn sequential_composition_adds() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let model = AnalyticModel::new(&topo);
        let one = model.estimate_flows(&[FlowSpec::new(topo.route(a, b), 1e9)]);
        let two = one.clone().then(&one);
        assert!((two.total_time - 2.0 * one.total_time).abs() < 1e-15);
        assert_eq!(two.total_bytes, 2e9);
    }

    #[test]
    fn schedule_estimate_sums_phases() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let mut sched = FlowSchedule::new();
        sched.push_phase("p0", vec![FlowSpec::new(topo.route(a, b), 1e9)]);
        sched.push_phase("p1", vec![FlowSpec::new(topo.route(b, a), 1e9)]);
        let model = AnalyticModel::new(&topo);
        let est = model.estimate_schedule(&sched);
        let single = model.estimate_flows(&[FlowSpec::new(topo.route(a, b), 1e9)]);
        assert!((est.total_time - 2.0 * single.total_time).abs() < 1e-15);
    }

    #[test]
    fn pairs_api_skips_zero_volume() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let model = AnalyticModel::new(&topo);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let est = model.estimate_pairs(&table, [(a, b, 0.0), (a, b, 1e9)]);
        assert_eq!(est.total_bytes, 1e9);
    }
}
