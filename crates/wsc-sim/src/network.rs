//! The discrete-event flow simulator.

use wsc_topology::Topology;

use crate::fairshare::max_min_rates;
use crate::flow::FlowSpec;
use crate::stats::LinkStats;

/// Bytes below which a flow is considered fully drained (guards against
/// floating-point residue).
const EPS_BYTES: f64 = 1e-6;
/// Seconds below which two event times are considered simultaneous.
const EPS_TIME: f64 = 1e-15;

/// Result of simulating a set of flows.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Time at which the last flow completed, seconds.
    pub total_time: f64,
    /// Completion time of each flow, in submission order.
    pub completion_times: Vec<f64>,
    /// Per-link traffic over the run.
    pub stats: LinkStats,
}

/// Flow-level discrete-event network simulator over a fixed topology.
///
/// Flows become *active* after their submission time plus the summed per-hop
/// latency of their route; active flows drain at max-min fair rates,
/// re-allocated whenever any flow starts or finishes.
///
/// See the [crate-level documentation](crate) for the modelling rationale.
#[derive(Debug)]
pub struct NetworkSim<'a> {
    topo: &'a Topology,
}

impl<'a> NetworkSim<'a> {
    /// Creates a simulator over `topo`.
    pub fn new(topo: &'a Topology) -> Self {
        NetworkSim { topo }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Runs all `flows` starting at time zero and returns when the last
    /// completes.
    pub fn run_concurrent(&mut self, flows: &[FlowSpec]) -> RunResult {
        let timed: Vec<(f64, FlowSpec)> = flows.iter().map(|f| (0.0, f.clone())).collect();
        self.run_at(&timed)
    }

    /// Runs flows with explicit submission times (seconds).
    ///
    /// # Panics
    ///
    /// Panics if any submission time is negative or not finite.
    pub fn run_at(&mut self, flows: &[(f64, FlowSpec)]) -> RunResult {
        struct Active {
            idx: usize,
            route: Vec<usize>,
            remaining: f64,
        }

        let num_links = self.topo.num_links();
        let mut stats = LinkStats::new(num_links);
        let mut completion_times = vec![0.0_f64; flows.len()];

        // Pending flows sorted by activation time (submission + route latency).
        let mut pending: Vec<(f64, usize)> = flows
            .iter()
            .enumerate()
            .map(|(i, (start, spec))| {
                assert!(
                    start.is_finite() && *start >= 0.0,
                    "submission time must be non-negative, got {start}"
                );
                let activation = start + self.topo.route_latency(&spec.route);
                (activation, i)
            })
            .collect();
        pending.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut next_pending = 0usize;

        let mut active: Vec<Active> = Vec::new();
        let mut now = 0.0_f64;
        let mut last_completion = 0.0_f64;

        loop {
            // Activate everything due at or before `now`.
            while next_pending < pending.len() && pending[next_pending].0 <= now + EPS_TIME {
                let (at, idx) = pending[next_pending];
                next_pending += 1;
                let spec = &flows[idx].1;
                if spec.is_local() || spec.bytes <= EPS_BYTES {
                    // Local copies and empty flows complete instantly.
                    completion_times[idx] = at.max(now);
                    last_completion = last_completion.max(completion_times[idx]);
                } else {
                    active.push(Active {
                        idx,
                        route: spec.route.links().iter().map(|l| l.index()).collect(),
                        remaining: spec.bytes,
                    });
                }
            }

            if active.is_empty() {
                if next_pending >= pending.len() {
                    break;
                }
                now = pending[next_pending].0;
                continue;
            }

            // Allocate max-min fair rates.
            let routes: Vec<Vec<usize>> = active.iter().map(|a| a.route.clone()).collect();
            let capacities: Vec<f64> =
                self.topo.links().iter().map(|l| l.bandwidth).collect();
            let rates = max_min_rates(&routes, &capacities);

            // Earliest next event: a completion or an activation.
            let mut horizon = f64::INFINITY;
            for (a, &rate) in active.iter().zip(&rates) {
                let t = if rate.is_infinite() {
                    now
                } else {
                    now + a.remaining / rate
                };
                horizon = horizon.min(t);
            }
            if next_pending < pending.len() {
                horizon = horizon.min(pending[next_pending].0);
            }
            let dt = (horizon - now).max(0.0);

            // Drain and record traffic.
            for (a, &rate) in active.iter_mut().zip(&rates) {
                let moved = if rate.is_infinite() {
                    a.remaining
                } else {
                    (rate * dt).min(a.remaining)
                };
                a.remaining -= moved;
                for &l in &a.route {
                    stats.bytes[l] += moved;
                    if rate > 0.0 && dt > 0.0 {
                        stats.busy_time[l] += dt;
                    }
                }
            }
            now = horizon;

            // Retire completed flows.
            let mut i = 0;
            while i < active.len() {
                if active[i].remaining <= EPS_BYTES {
                    let done = active.swap_remove(i);
                    completion_times[done.idx] = now;
                    last_completion = last_completion.max(now);
                } else {
                    i += 1;
                }
            }
        }

        stats.duration = last_completion;
        RunResult {
            total_time: last_completion,
            completion_times,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_topology::{Mesh, PlatformParams};

    fn mesh4() -> Topology {
        Mesh::new(4, PlatformParams::dojo_like()).build()
    }

    #[test]
    fn single_flow_matches_closed_form() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(3, 0).unwrap();
        let route = topo.route(a, b);
        let bytes = 1.0e9;
        let mut sim = NetworkSim::new(&topo);
        let result = sim.run_concurrent(&[FlowSpec::new(route.clone(), bytes)]);
        let expect = topo.route_latency(&route) + bytes / topo.route_bandwidth(&route);
        assert!((result.total_time - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn two_flows_share_a_link() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let route = topo.route(a, b);
        let mut sim = NetworkSim::new(&topo);
        let result = sim.run_concurrent(&[
            FlowSpec::new(route.clone(), 4.0e9),
            FlowSpec::new(route.clone(), 4.0e9),
        ]);
        // Shared 4 TB/s link: 8 GB total over it, plus one hop latency.
        let expect = 8.0e9 / 4.0e12 + 50e-9;
        assert!((result.total_time - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let topo = mesh4();
        let mut sim = NetworkSim::new(&topo);
        let r1 = topo.route(
            topo.device_at_xy(0, 0).unwrap(),
            topo.device_at_xy(1, 0).unwrap(),
        );
        let r2 = topo.route(
            topo.device_at_xy(0, 3).unwrap(),
            topo.device_at_xy(1, 3).unwrap(),
        );
        let solo = sim.run_concurrent(&[FlowSpec::new(r1.clone(), 1.0e9)]);
        let both = sim.run_concurrent(&[FlowSpec::new(r1, 1.0e9), FlowSpec::new(r2, 1.0e9)]);
        assert!((solo.total_time - both.total_time).abs() < 1e-12);
    }

    #[test]
    fn local_flow_is_instant() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let mut sim = NetworkSim::new(&topo);
        let result = sim.run_concurrent(&[FlowSpec::new(topo.route(a, a), 1.0e12)]);
        assert_eq!(result.total_time, 0.0);
    }

    #[test]
    fn staggered_start_times() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let route = topo.route(a, b);
        let mut sim = NetworkSim::new(&topo);
        // Second flow starts after the first finishes: no sharing.
        let first_time = 50e-9 + 4.0e9 / 4.0e12;
        let result = sim.run_at(&[
            (0.0, FlowSpec::new(route.clone(), 4.0e9)),
            (first_time, FlowSpec::new(route.clone(), 4.0e9)),
        ]);
        let expect = first_time * 2.0;
        assert!((result.total_time - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn completion_times_reported_per_flow() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let c = topo.device_at_xy(2, 0).unwrap();
        let mut sim = NetworkSim::new(&topo);
        let result = sim.run_concurrent(&[
            FlowSpec::new(topo.route(a, b), 4.0e9),
            FlowSpec::new(topo.route(a, c), 4.0e9),
        ]);
        // Flow 0 shares its single link with flow 1, so both drain that link
        // at 2 TB/s initially; flow 0 finishes, then flow 1 continues alone.
        assert!(result.completion_times[0] < result.completion_times[1]);
        assert_eq!(result.total_time, result.completion_times[1]);
    }

    #[test]
    fn link_stats_account_all_bytes() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let c = topo.device_at_xy(2, 0).unwrap();
        let mut sim = NetworkSim::new(&topo);
        let bytes = 3.0e9;
        let result = sim.run_concurrent(&[FlowSpec::new(topo.route(a, c), bytes)]);
        let total: f64 = result.stats.bytes.iter().sum();
        // Two hops → bytes counted on two links.
        assert!((total - 2.0 * bytes).abs() < 1.0);
    }
}
