//! The discrete-event flow simulator.

use wsc_topology::{LinkId, Topology};

use crate::fairshare::{max_min_rates, IncrementalMaxMin};
use crate::flow::FlowSpec;
use crate::stats::LinkStats;

/// Bytes below which a flow is considered fully drained (guards against
/// floating-point residue).
const EPS_BYTES: f64 = 1e-6;
/// Seconds below which two event times are considered simultaneous.
const EPS_TIME: f64 = 1e-15;

/// Result of simulating a set of flows.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Time at which the last flow completed, seconds.
    pub total_time: f64,
    /// Completion time of each flow, in submission order.
    pub completion_times: Vec<f64>,
    /// Per-link traffic over the run.
    pub stats: LinkStats,
}

/// Flow-level discrete-event network simulator over a fixed topology.
///
/// Flows become *active* after their submission time plus the summed per-hop
/// latency of their route; active flows drain at max-min fair rates,
/// re-allocated whenever any flow starts or finishes.
///
/// The hot path is event-driven end to end: rate re-allocation runs on the
/// incremental [`IncrementalMaxMin`] allocator (each arrival/completion
/// reprices only the touched connected component of the contention graph),
/// drain state is settled lazily so an event updates only the repriced
/// component rather than every active flow, and per-link traffic/busy
/// statistics are charged once per flow at completion instead of per event.
/// Routes are copied once into the allocator's flat CSR store — no
/// per-event route cloning.
///
/// [`NetworkSim::use_reference_allocator`] switches to the PR-1
/// full-recompute loop — [`max_min_rates`] over freshly cloned routes, a
/// full drain and horizon scan on every event — kept for differential tests
/// and before/after benchmarks.
///
/// See the [crate-level documentation](crate) for the modelling rationale.
#[derive(Debug)]
pub struct NetworkSim<'a> {
    topo: &'a Topology,
    reference: bool,
}

/// Per-run flow bookkeeping shared by both event loops.
struct FlowTable {
    alloc: IncrementalMaxMin,
    bytes: Vec<f64>,
    activations: Vec<f64>,
}

impl<'a> NetworkSim<'a> {
    /// Creates a simulator over `topo`.
    pub fn new(topo: &'a Topology) -> Self {
        NetworkSim {
            topo,
            reference: false,
        }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Switches rate allocation to the full-recompute [`max_min_rates`]
    /// oracle with per-event route cloning, full drains, and full horizon
    /// scans (the pre-incremental hot path). Orders of magnitude slower on
    /// contended schedules; exists so benchmarks can measure the incremental
    /// speedup and tests can cross-check the two paths on identical event
    /// sequences.
    pub fn use_reference_allocator(&mut self, yes: bool) -> &mut Self {
        self.reference = yes;
        self
    }

    /// Runs all `flows` starting at time zero and returns when the last
    /// completes.
    pub fn run_concurrent(&mut self, flows: &[FlowSpec]) -> RunResult {
        self.run_paths(flows.iter().map(|f| (0.0, f.bytes, f.route.links())))
    }

    /// Runs flows with explicit submission times (seconds).
    ///
    /// # Panics
    ///
    /// Panics if any submission time is negative or not finite.
    pub fn run_at(&mut self, flows: &[(f64, FlowSpec)]) -> RunResult {
        self.run_paths(
            flows
                .iter()
                .map(|(start, spec)| (*start, spec.bytes, spec.route.links())),
        )
    }

    /// Low-level entry point: runs `(submission time, bytes, route links)`
    /// triples borrowed from anywhere — `FlowSpec`s, a CSR
    /// [`RouteTable`](wsc_topology::RouteTable), or a transfer list — with
    /// no per-flow route allocation.
    ///
    /// # Panics
    ///
    /// Panics if any submission time is negative or not finite.
    pub fn run_paths<'r>(
        &mut self,
        flows: impl IntoIterator<Item = (f64, f64, &'r [LinkId])>,
    ) -> RunResult {
        let capacities: Vec<f64> = self.topo.links().iter().map(|l| l.bandwidth).collect();
        let mut alloc = IncrementalMaxMin::new(capacities);
        let mut bytes: Vec<f64> = Vec::new();
        let mut activations: Vec<f64> = Vec::new();
        let mut link_scratch: Vec<u32> = Vec::new();
        for (start, payload, links) in flows {
            assert!(
                start.is_finite() && start >= 0.0,
                "submission time must be non-negative, got {start}"
            );
            link_scratch.clear();
            link_scratch.extend(links.iter().map(|l| l.0));
            alloc.register(&link_scratch);
            bytes.push(payload);
            activations.push(start + self.topo.path_latency(links));
        }
        let table = FlowTable {
            alloc,
            bytes,
            activations,
        };
        if self.reference {
            self.run_reference(table)
        } else {
            self.run_incremental(table)
        }
    }

    /// Pending-activation order: by activation time, ties by submission
    /// index.
    fn pending_order(activations: &[f64]) -> Vec<u32> {
        let mut pending: Vec<u32> = (0..activations.len() as u32).collect();
        pending.sort_by(|&a, &b| {
            activations[a as usize]
                .partial_cmp(&activations[b as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        pending
    }

    /// The incremental event loop: rate repricing and drain settling touch
    /// only the repriced component; the next event comes from a linear
    /// minimum scan over the per-flow predicted finish times (branch-free
    /// and allocation-free — cheaper in practice than maintaining a heap
    /// that large components would flood with stale entries).
    fn run_incremental(&mut self, table: FlowTable) -> RunResult {
        let FlowTable {
            mut alloc,
            bytes,
            activations,
        } = table;
        let num_flows = bytes.len();
        let mut stats = LinkStats::new(self.topo.num_links());
        let mut completion_times = vec![0.0_f64; num_flows];
        let pending = Self::pending_order(&activations);
        let mut next_pending = 0usize;

        // Per-flow drain state, settled lazily on rate changes; `finish[f]`
        // is exact while `f`'s rate is unchanged.
        let mut remaining = bytes.clone();
        let mut cur_rate = vec![0.0_f64; num_flows];
        let mut last_update = vec![0.0_f64; num_flows];
        let mut start_time = vec![0.0_f64; num_flows];
        let mut finish = vec![f64::INFINITY; num_flows];
        let mut active: Vec<u32> = Vec::new();

        let mut now;
        let mut last_completion = 0.0_f64;

        loop {
            // Next event: the earliest predicted finish or activation.
            let mut horizon = f64::INFINITY;
            for &f in &active {
                horizon = horizon.min(finish[f as usize]);
            }
            let next_act =
                (next_pending < pending.len()).then(|| activations[pending[next_pending] as usize]);
            now = match next_act {
                Some(a) => horizon.min(a),
                None if horizon.is_finite() => horizon,
                None => break,
            };

            let mut changed = false;

            // Activations due at or before `now`.
            while next_pending < pending.len()
                && activations[pending[next_pending] as usize] <= now + EPS_TIME
            {
                let idx = pending[next_pending];
                next_pending += 1;
                let f = idx as usize;
                let at = activations[f];
                if alloc.route_links_of(idx).is_empty() || bytes[f] <= EPS_BYTES {
                    // Local copies and empty flows complete instantly.
                    completion_times[f] = at.max(now);
                    last_completion = last_completion.max(completion_times[f]);
                } else {
                    alloc.activate(idx);
                    start_time[f] = now;
                    last_update[f] = now;
                    cur_rate[f] = 0.0;
                    finish[f] = f64::INFINITY;
                    active.push(idx);
                    changed = true;
                }
            }

            // Completions due at or before `now`.
            let mut i = 0;
            while i < active.len() {
                let idx = active[i];
                let f = idx as usize;
                if finish[f] > now + EPS_TIME {
                    i += 1;
                    continue;
                }
                // Settle the drain since the last rate change.
                let moved = (cur_rate[f] * (now - last_update[f])).min(remaining[f]);
                remaining[f] -= moved;
                last_update[f] = now;
                if remaining[f] > EPS_BYTES {
                    // Floating-point residue: correct the prediction.
                    finish[f] = now + remaining[f] / cur_rate[f];
                    i += 1;
                    continue;
                }
                // Complete: charge stats once for the whole active interval.
                active.swap_remove(i);
                alloc.deactivate(idx);
                let busy = now - start_time[f];
                for &l in alloc.route_links_of(idx) {
                    stats.bytes[l as usize] += bytes[f];
                    stats.busy_time[l as usize] += busy;
                }
                completion_times[f] = now;
                last_completion = last_completion.max(now);
                changed = true;
            }

            if changed {
                // Reprice the touched component(s) and refresh exactly the
                // repriced flows' drain state and predicted finishes.
                alloc.rebalance();
                for &idx in alloc.last_component_flows() {
                    let f = idx as usize;
                    let moved = (cur_rate[f] * (now - last_update[f])).min(remaining[f]);
                    remaining[f] -= moved;
                    last_update[f] = now;
                    cur_rate[f] = alloc.rate(idx);
                    finish[f] = now + remaining[f] / cur_rate[f];
                }
            }

            if active.is_empty() && next_pending >= pending.len() {
                break;
            }
        }

        stats.duration = last_completion;
        RunResult {
            total_time: last_completion,
            completion_times,
            stats,
        }
    }

    /// The PR-1 reference loop: full water-filling over freshly cloned
    /// routes, a full horizon scan, and a full per-event drain.
    fn run_reference(&mut self, table: FlowTable) -> RunResult {
        let FlowTable {
            alloc,
            bytes,
            activations,
        } = table;
        let num_flows = bytes.len();
        let mut stats = LinkStats::new(self.topo.num_links());
        let mut completion_times = vec![0.0_f64; num_flows];
        let pending = Self::pending_order(&activations);
        let mut next_pending = 0usize;
        let capacities = alloc.capacities().to_vec();

        let mut active: Vec<u32> = Vec::new();
        let mut remaining = bytes.clone();
        let mut now = 0.0_f64;
        let mut last_completion = 0.0_f64;

        loop {
            while next_pending < pending.len()
                && activations[pending[next_pending] as usize] <= now + EPS_TIME
            {
                let idx = pending[next_pending];
                next_pending += 1;
                let f = idx as usize;
                let at = activations[f];
                if alloc.route_links_of(idx).is_empty() || bytes[f] <= EPS_BYTES {
                    completion_times[f] = at.max(now);
                    last_completion = last_completion.max(completion_times[f]);
                } else {
                    active.push(idx);
                }
            }

            if active.is_empty() {
                if next_pending >= pending.len() {
                    break;
                }
                now = activations[pending[next_pending] as usize];
                continue;
            }

            // Full recompute over per-event route clones (the PR-1 cost).
            let routes: Vec<Vec<usize>> = active
                .iter()
                .map(|&f| {
                    alloc
                        .route_links_of(f)
                        .iter()
                        .map(|&l| l as usize)
                        .collect()
                })
                .collect();
            let rates = max_min_rates(&routes, &capacities);

            let mut horizon = f64::INFINITY;
            for (&f, &rate) in active.iter().zip(&rates) {
                let t = if rate.is_infinite() {
                    now
                } else {
                    now + remaining[f as usize] / rate
                };
                horizon = horizon.min(t);
            }
            if next_pending < pending.len() {
                horizon = horizon.min(activations[pending[next_pending] as usize]);
            }
            let dt = (horizon - now).max(0.0);

            for (&f, &rate) in active.iter().zip(&rates) {
                let moved = if rate.is_infinite() {
                    remaining[f as usize]
                } else {
                    (rate * dt).min(remaining[f as usize])
                };
                remaining[f as usize] -= moved;
                for &l in alloc.route_links_of(f) {
                    stats.bytes[l as usize] += moved;
                    if rate > 0.0 && dt > 0.0 {
                        stats.busy_time[l as usize] += dt;
                    }
                }
            }
            now = horizon;

            let mut i = 0;
            while i < active.len() {
                let f = active[i];
                if remaining[f as usize] <= EPS_BYTES {
                    active.swap_remove(i);
                    completion_times[f as usize] = now;
                    last_completion = last_completion.max(now);
                } else {
                    i += 1;
                }
            }
        }

        stats.duration = last_completion;
        RunResult {
            total_time: last_completion,
            completion_times,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_topology::{Mesh, PlatformParams};

    fn mesh4() -> Topology {
        Mesh::new(4, PlatformParams::dojo_like()).build()
    }

    #[test]
    fn single_flow_matches_closed_form() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(3, 0).unwrap();
        let route = topo.route(a, b);
        let bytes = 1.0e9;
        let mut sim = NetworkSim::new(&topo);
        let result = sim.run_concurrent(&[FlowSpec::new(route.clone(), bytes)]);
        let expect = topo.route_latency(&route) + bytes / topo.route_bandwidth(&route);
        assert!((result.total_time - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn two_flows_share_a_link() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let route = topo.route(a, b);
        let mut sim = NetworkSim::new(&topo);
        let result = sim.run_concurrent(&[
            FlowSpec::new(route.clone(), 4.0e9),
            FlowSpec::new(route.clone(), 4.0e9),
        ]);
        // Shared 4 TB/s link: 8 GB total over it, plus one hop latency.
        let expect = 8.0e9 / 4.0e12 + 50e-9;
        assert!((result.total_time - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let topo = mesh4();
        let mut sim = NetworkSim::new(&topo);
        let r1 = topo.route(
            topo.device_at_xy(0, 0).unwrap(),
            topo.device_at_xy(1, 0).unwrap(),
        );
        let r2 = topo.route(
            topo.device_at_xy(0, 3).unwrap(),
            topo.device_at_xy(1, 3).unwrap(),
        );
        let solo = sim.run_concurrent(&[FlowSpec::new(r1.clone(), 1.0e9)]);
        let both = sim.run_concurrent(&[FlowSpec::new(r1, 1.0e9), FlowSpec::new(r2, 1.0e9)]);
        assert!((solo.total_time - both.total_time).abs() < 1e-12);
    }

    #[test]
    fn local_flow_is_instant() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let mut sim = NetworkSim::new(&topo);
        let result = sim.run_concurrent(&[FlowSpec::new(topo.route(a, a), 1.0e12)]);
        assert_eq!(result.total_time, 0.0);
    }

    #[test]
    fn staggered_start_times() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let route = topo.route(a, b);
        let mut sim = NetworkSim::new(&topo);
        // Second flow starts after the first finishes: no sharing.
        let first_time = 50e-9 + 4.0e9 / 4.0e12;
        let result = sim.run_at(&[
            (0.0, FlowSpec::new(route.clone(), 4.0e9)),
            (first_time, FlowSpec::new(route.clone(), 4.0e9)),
        ]);
        let expect = first_time * 2.0;
        assert!((result.total_time - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn completion_times_reported_per_flow() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let c = topo.device_at_xy(2, 0).unwrap();
        let mut sim = NetworkSim::new(&topo);
        let result = sim.run_concurrent(&[
            FlowSpec::new(topo.route(a, b), 4.0e9),
            FlowSpec::new(topo.route(a, c), 4.0e9),
        ]);
        // Flow 0 shares its single link with flow 1, so both drain that link
        // at 2 TB/s initially; flow 0 finishes, then flow 1 continues alone.
        assert!(result.completion_times[0] < result.completion_times[1]);
        assert_eq!(result.total_time, result.completion_times[1]);
    }

    #[test]
    fn link_stats_account_all_bytes() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let c = topo.device_at_xy(2, 0).unwrap();
        let mut sim = NetworkSim::new(&topo);
        let bytes = 3.0e9;
        let result = sim.run_concurrent(&[FlowSpec::new(topo.route(a, c), bytes)]);
        let total: f64 = result.stats.bytes.iter().sum();
        // Two hops → bytes counted on two links.
        assert!((total - 2.0 * bytes).abs() < 1.0);
    }

    #[test]
    fn busy_time_spans_the_active_interval() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let route = topo.route(a, b);
        let link = route.links()[0];
        let mut sim = NetworkSim::new(&topo);
        let result = sim.run_concurrent(&[FlowSpec::new(route.clone(), 4.0e9)]);
        let active = 4.0e9 / 4.0e12;
        assert!(
            (result.stats.busy_time[link.index()] - active).abs() / active < 1e-9,
            "busy {} vs active interval {}",
            result.stats.busy_time[link.index()],
            active
        );
    }

    /// Differential contract: the incremental event loop reproduces the
    /// full-recompute reference loop on a contended mixed-arrival schedule.
    #[test]
    fn incremental_matches_reference_allocator() {
        let topo = mesh4();
        let a = topo.device_at_xy(0, 0).unwrap();
        let flows: Vec<(f64, FlowSpec)> = topo
            .devices()
            .filter(|&d| d != a)
            .enumerate()
            .map(|(i, d)| {
                let stagger = (i % 4) as f64 * 2.0e-4;
                (
                    stagger,
                    FlowSpec::new(topo.route(a, d), 1.0e8 * (1 + i % 3) as f64),
                )
            })
            .collect();
        let fast = NetworkSim::new(&topo).run_at(&flows);
        let mut ref_sim = NetworkSim::new(&topo);
        ref_sim.use_reference_allocator(true);
        let slow = ref_sim.run_at(&flows);
        assert!(
            (fast.total_time - slow.total_time).abs() / slow.total_time < 1e-9,
            "incremental {} vs reference {}",
            fast.total_time,
            slow.total_time
        );
        for (f, (x, y)) in fast
            .completion_times
            .iter()
            .zip(&slow.completion_times)
            .enumerate()
        {
            assert!((x - y).abs() / y.max(1e-30) < 1e-9, "flow {f}: {x} vs {y}");
        }
        for (l, (x, y)) in fast.stats.bytes.iter().zip(&slow.stats.bytes).enumerate() {
            assert!((x - y).abs() < 1.0, "link {l} bytes: {x} vs {y}");
        }
    }
}
