//! Phased flow schedules: how collectives are expressed to the simulator.

use serde::{Deserialize, Serialize};
use wsc_topology::Topology;

use crate::flow::FlowSpec;
use crate::network::NetworkSim;
use crate::stats::LinkStats;

/// One step of a step-synchronous collective: a set of flows that start
/// together and must all finish before the next phase begins.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Phase {
    /// Human-readable label (e.g. `"rs-step-3"`).
    pub label: String,
    /// The flows of this phase.
    pub flows: Vec<FlowSpec>,
}

impl Phase {
    /// Creates a labelled phase.
    pub fn new(label: impl Into<String>, flows: Vec<FlowSpec>) -> Self {
        Phase {
            label: label.into(),
            flows,
        }
    }

    /// Total payload bytes across the phase's flows.
    pub fn total_bytes(&self) -> f64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }
}

/// A sequence of phases with a barrier between consecutive phases.
///
/// Collective builders (`wsc-collectives`) emit these; they can be run at
/// full fidelity on a [`NetworkSim`] or estimated with
/// [`AnalyticModel`](crate::AnalyticModel).
///
/// # Example
///
/// ```
/// use wsc_topology::{Mesh, PlatformParams};
/// use wsc_sim::{FlowSchedule, FlowSpec};
///
/// let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
/// let a = topo.device_at_xy(0, 0).unwrap();
/// let b = topo.device_at_xy(1, 0).unwrap();
/// let mut sched = FlowSchedule::new();
/// sched.push_phase("step0", vec![FlowSpec::new(topo.route(a, b), 1e9)]);
/// sched.push_phase("step1", vec![FlowSpec::new(topo.route(b, a), 1e9)]);
/// let result = sched.run(&topo);
/// assert_eq!(result.phase_times.len(), 2);
/// ```
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct FlowSchedule {
    phases: Vec<Phase>,
}

impl FlowSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a phase.
    pub fn push_phase(&mut self, label: impl Into<String>, flows: Vec<FlowSpec>) {
        self.phases.push(Phase::new(label, flows));
    }

    /// The phases in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Whether the schedule contains no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Total payload bytes across all phases.
    pub fn total_bytes(&self) -> f64 {
        self.phases.iter().map(Phase::total_bytes).sum()
    }

    /// The canonical shape of this schedule — the memoization key a
    /// [`CachedBackend`](crate::CachedBackend) prices it under. Two
    /// schedules with equal shapes (same phase structure, same per-phase
    /// `(route, bytes)` multisets, labels ignored) share a cache entry.
    pub fn shape(&self) -> crate::backend::ScheduleShape {
        crate::backend::ScheduleShape::of_schedule(self)
    }

    /// Merges several schedules that proceed in lock-step: phase `k` of the
    /// result contains the union of every input's phase `k`.
    ///
    /// This models concurrent collectives that share the fabric — e.g. the
    /// entwined rings of ER-Mapping, where all rings execute step `k`
    /// simultaneously.
    pub fn merge_lockstep<'a>(schedules: impl IntoIterator<Item = &'a FlowSchedule>) -> Self {
        let mut merged = FlowSchedule::new();
        for sched in schedules {
            for (i, phase) in sched.phases.iter().enumerate() {
                if merged.phases.len() <= i {
                    merged
                        .phases
                        .push(Phase::new(phase.label.clone(), Vec::new()));
                }
                merged.phases[i].flows.extend(phase.flows.iter().cloned());
            }
        }
        merged
    }

    /// Runs the schedule at full fidelity on a fresh simulator over `topo`.
    pub fn run(&self, topo: &Topology) -> ScheduleResult {
        let mut sim = NetworkSim::new(topo);
        let mut stats = LinkStats::new(topo.num_links());
        let mut phase_times = Vec::with_capacity(self.phases.len());
        for phase in &self.phases {
            if phase.flows.is_empty() {
                phase_times.push(0.0);
                continue;
            }
            let result = sim.run_concurrent(&phase.flows);
            phase_times.push(result.total_time);
            stats.merge(&result.stats);
        }
        ScheduleResult {
            total_time: phase_times.iter().sum(),
            phase_times,
            stats,
        }
    }
}

/// Result of running a [`FlowSchedule`].
#[derive(Clone, Debug)]
pub struct ScheduleResult {
    /// Sum of phase completion times, seconds.
    pub total_time: f64,
    /// Per-phase completion times, seconds.
    pub phase_times: Vec<f64>,
    /// Per-link traffic accumulated over all phases.
    pub stats: LinkStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_topology::{Mesh, PlatformParams};

    #[test]
    fn phases_are_sequential() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let one = {
            let mut s = FlowSchedule::new();
            s.push_phase("p", vec![FlowSpec::new(topo.route(a, b), 4.0e9)]);
            s.run(&topo).total_time
        };
        let mut two = FlowSchedule::new();
        two.push_phase("p0", vec![FlowSpec::new(topo.route(a, b), 4.0e9)]);
        two.push_phase("p1", vec![FlowSpec::new(topo.route(a, b), 4.0e9)]);
        let result = two.run(&topo);
        assert!((result.total_time - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn merge_lockstep_unions_phases() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let c = topo.device_at_xy(0, 1).unwrap();
        let mut s1 = FlowSchedule::new();
        s1.push_phase("s", vec![FlowSpec::new(topo.route(a, b), 1.0)]);
        let mut s2 = FlowSchedule::new();
        s2.push_phase("s", vec![FlowSpec::new(topo.route(a, c), 1.0)]);
        s2.push_phase("extra", vec![FlowSpec::new(topo.route(c, a), 1.0)]);
        let merged = FlowSchedule::merge_lockstep([&s1, &s2]);
        assert_eq!(merged.num_phases(), 2);
        assert_eq!(merged.phases()[0].flows.len(), 2);
        assert_eq!(merged.phases()[1].flows.len(), 1);
        assert_eq!(merged.total_bytes(), 3.0);
    }

    #[test]
    fn shape_ignores_labels_and_flow_order() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let c = topo.device_at_xy(0, 1).unwrap();
        let f1 = FlowSpec::new(topo.route(a, b), 1.0);
        let f2 = FlowSpec::new(topo.route(a, c), 2.0);
        let mut s1 = FlowSchedule::new();
        s1.push_phase("x", vec![f1.clone(), f2.clone()]);
        let mut s2 = FlowSchedule::new();
        s2.push_phase("completely different label", vec![f2, f1]);
        assert_eq!(s1.shape(), s2.shape());
    }

    #[test]
    fn empty_schedule_runs_to_zero() {
        let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
        let s = FlowSchedule::new();
        let r = s.run(&topo);
        assert_eq!(r.total_time, 0.0);
        assert!(s.is_empty());
    }
}
