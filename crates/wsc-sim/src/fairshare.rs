//! Max-min fair rate allocation: the full-recompute reference oracle
//! ([`max_min_rates`]) and the incremental allocator ([`IncrementalMaxMin`])
//! the discrete-event simulator runs on.
//!
//! The oracle re-waterfills every flow from scratch — `O(links ×
//! iterations)` per call plus an `O(flows × hops)` membership scan per
//! bottleneck round — which made it the dominant cost of the PR-1 DES hot
//! path (rates are re-allocated on **every** flow arrival and completion).
//! [`IncrementalMaxMin`] exploits the theory instead: a flow change can only
//! perturb rates inside the *connected component* of the flow/link
//! contention graph it touches, so each rebalance re-waterfills just that
//! component, finds bottlenecks through an indexed lazy-deletion heap rather
//! than a full link scan, and fixes flows by walking per-link flow lists
//! rather than scanning every unfixed flow. The oracle stays as the
//! reference: the property suite checks the two agree to 1e-9 relative
//! tolerance on random instances.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Computes the max-min fair rate for each flow given link capacities.
///
/// `routes[f]` lists the link indices traversed by flow `f`; `capacity[l]`
/// is the bandwidth of link `l` in bytes/second. Flows with empty routes
/// receive `f64::INFINITY`.
///
/// The algorithm is classic progressive filling: repeatedly find the most
/// contended link (smallest `residual capacity / unfixed flow count`), fix
/// every unfixed flow crossing it at that fair share, subtract, repeat.
/// Runs in `O(links × iterations)`; deterministic (ties broken by lowest
/// link index).
///
/// # Example
///
/// ```
/// use wsc_sim::fairshare::max_min_rates;
///
/// // Two flows share link 0; one continues over link 1 alone.
/// let routes: Vec<Vec<usize>> = vec![vec![0], vec![0, 1]];
/// let rates = max_min_rates(&routes, &[10.0, 4.0]);
/// // Flow 1 is capped at 4 by link 1; flow 0 then gets the remaining 6.
/// assert_eq!(rates, vec![6.0, 4.0]);
/// ```
pub fn max_min_rates(routes: &[Vec<usize>], capacity: &[f64]) -> Vec<f64> {
    let num_links = capacity.len();
    let mut residual = capacity.to_vec();
    let mut flows_on_link: Vec<u32> = vec![0; num_links];
    for route in routes {
        for &l in route {
            flows_on_link[l] += 1;
        }
    }

    let mut rates = vec![f64::INFINITY; routes.len()];
    let mut unfixed: Vec<usize> = (0..routes.len())
        .filter(|&f| !routes[f].is_empty())
        .collect();

    while !unfixed.is_empty() {
        // Find the bottleneck link among links still carrying unfixed flows.
        let mut bottleneck: Option<(usize, f64)> = None;
        for l in 0..num_links {
            if flows_on_link[l] > 0 {
                let fair = residual[l] / flows_on_link[l] as f64;
                match bottleneck {
                    Some((_, best)) if fair >= best => {}
                    _ => bottleneck = Some((l, fair)),
                }
            }
        }
        let Some((bl, fair)) = bottleneck else {
            // No contended links left: remaining flows are unconstrained
            // (cannot happen with positive-capacity links, but stay safe).
            for &f in &unfixed {
                rates[f] = f64::INFINITY;
            }
            break;
        };

        // Fix every unfixed flow crossing the bottleneck.
        let mut still_unfixed = Vec::with_capacity(unfixed.len());
        for &f in &unfixed {
            if routes[f].contains(&bl) {
                rates[f] = fair;
                for &l in &routes[f] {
                    residual[l] -= fair;
                    flows_on_link[l] -= 1;
                }
            } else {
                still_unfixed.push(f);
            }
        }
        // Guard against pathological floating-point residue.
        residual[bl] = residual[bl].max(0.0);
        unfixed = still_unfixed;
    }
    rates
}

/// Min-heap entry: a link and its fair share at push time. Entries go stale
/// when the link's residual/count changes; stale entries are detected at pop
/// time by recomputing the share (lazy deletion).
#[derive(Copy, Clone, PartialEq)]
struct Bottleneck {
    fair: f64,
    link: u32,
}

impl Eq for Bottleneck {}

impl Ord for Bottleneck {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap and we want the *smallest*
        // fair share first, ties broken by lowest link index (matching the
        // oracle's deterministic tie-break).
        other
            .fair
            .total_cmp(&self.fair)
            .then_with(|| other.link.cmp(&self.link))
    }
}

impl PartialOrd for Bottleneck {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Incremental max-min fair-share allocator.
///
/// Flows are registered once (their routes are copied into a flat CSR store)
/// and then activated/deactivated as they arrive and complete;
/// [`IncrementalMaxMin::rebalance`] recomputes rates for exactly the
/// connected component(s) of the contention graph touched since the last
/// rebalance. Rates of untouched flows are provably unchanged, so they are
/// not revisited.
///
/// # Example
///
/// ```
/// use wsc_sim::fairshare::{max_min_rates, IncrementalMaxMin};
///
/// let mut alloc = IncrementalMaxMin::new(vec![10.0, 4.0]);
/// let short = alloc.register(&[0]);
/// let long = alloc.register(&[0, 1]);
/// alloc.activate(short);
/// alloc.activate(long);
/// alloc.rebalance();
/// // Same answer as the full-recompute oracle.
/// assert_eq!(alloc.rate(short), 6.0);
/// assert_eq!(alloc.rate(long), 4.0);
/// assert_eq!(
///     max_min_rates(&[vec![0], vec![0, 1]], &[10.0, 4.0]),
///     vec![6.0, 4.0]
/// );
/// // Completion of the long flow only reprices the component it touched.
/// alloc.deactivate(long);
/// alloc.rebalance();
/// assert_eq!(alloc.rate(short), 10.0);
/// ```
#[derive(Clone)]
pub struct IncrementalMaxMin {
    capacity: Vec<f64>,
    /// CSR route store: flow `f` traverses
    /// `route_links[route_offsets[f]..route_offsets[f + 1]]`.
    route_offsets: Vec<u32>,
    route_links: Vec<u32>,
    active: Vec<bool>,
    /// Whether the flow currently has entries in `flows_on_link` (true from
    /// activation until a rebalance purges its deactivated entries). Lets a
    /// re-activation before that purge reuse the entries instead of
    /// duplicating them.
    enlisted: Vec<bool>,
    /// Flows deactivated since the last rebalance, whose list entries the
    /// rebalance purge will drop.
    unlist_queue: Vec<u32>,
    rates: Vec<f64>,
    /// Active flows crossing each link; deactivated flows are purged lazily
    /// the next time the link's component is rebalanced.
    flows_on_link: Vec<Vec<u32>>,
    /// Links touched by activations/deactivations since the last rebalance.
    dirty: Vec<u32>,
    dirty_mark: Vec<bool>,
    // Water-filling scratch, reused across rebalances.
    residual: Vec<f64>,
    unfixed: Vec<u32>,
    in_component: Vec<bool>,
    flow_seen: Vec<bool>,
    flow_fixed: Vec<bool>,
    comp_links: Vec<u32>,
    comp_flows: Vec<u32>,
    heap: BinaryHeap<Bottleneck>,
}

impl std::fmt::Debug for IncrementalMaxMin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalMaxMin")
            .field("num_links", &self.capacity.len())
            .field("num_flows", &self.rates.len())
            .field("dirty_links", &self.dirty.len())
            .finish()
    }
}

impl IncrementalMaxMin {
    /// Creates an allocator over links of the given capacities (bytes/s).
    ///
    /// # Panics
    ///
    /// Panics if any capacity is non-positive or not finite.
    pub fn new(capacity: Vec<f64>) -> Self {
        let num_links = capacity.len();
        for (l, &c) in capacity.iter().enumerate() {
            assert!(
                c.is_finite() && c > 0.0,
                "link {l} capacity must be positive and finite, got {c}"
            );
        }
        IncrementalMaxMin {
            capacity,
            route_offsets: vec![0],
            route_links: Vec::new(),
            active: Vec::new(),
            enlisted: Vec::new(),
            unlist_queue: Vec::new(),
            rates: Vec::new(),
            flows_on_link: vec![Vec::new(); num_links],
            dirty: Vec::new(),
            dirty_mark: vec![false; num_links],
            residual: vec![0.0; num_links],
            unfixed: vec![0; num_links],
            in_component: vec![false; num_links],
            flow_seen: Vec::new(),
            flow_fixed: Vec::new(),
            comp_links: Vec::new(),
            comp_flows: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Number of links the allocator prices.
    pub fn num_links(&self) -> usize {
        self.capacity.len()
    }

    /// The link capacities the allocator was built with.
    pub fn capacities(&self) -> &[f64] {
        &self.capacity
    }

    /// The registered route (link indices) of a flow, borrowed from the
    /// allocator's CSR store.
    pub fn route_links_of(&self, flow: u32) -> &[u32] {
        Self::route(&self.route_offsets, &self.route_links, flow)
    }

    /// Registers a flow's route (link indices) and returns its dense id.
    /// The flow starts inactive; its rate is meaningless until it is
    /// [`activate`](IncrementalMaxMin::activate)d and a rebalance runs.
    ///
    /// A flow with an empty route never contends and always reports
    /// `f64::INFINITY`, mirroring [`max_min_rates`].
    ///
    /// # Panics
    ///
    /// Panics if a link index is out of range.
    pub fn register(&mut self, links: &[u32]) -> u32 {
        let id = self.rates.len() as u32;
        for &l in links {
            assert!(
                (l as usize) < self.capacity.len(),
                "link index {l} out of range"
            );
        }
        self.route_links.extend_from_slice(links);
        self.route_offsets
            .push(u32::try_from(self.route_links.len()).expect("route store exceeds u32 offsets"));
        self.active.push(false);
        self.enlisted.push(false);
        self.rates.push(f64::INFINITY);
        self.flow_seen.push(false);
        self.flow_fixed.push(false);
        id
    }

    fn route<'r>(route_offsets: &[u32], route_links: &'r [u32], flow: u32) -> &'r [u32] {
        let start = route_offsets[flow as usize] as usize;
        let end = route_offsets[flow as usize + 1] as usize;
        &route_links[start..end]
    }

    /// Marks every link of `flow` dirty so the next rebalance revisits its
    /// component.
    fn mark_route_dirty(&mut self, flow: u32) {
        let (start, end) = (
            self.route_offsets[flow as usize] as usize,
            self.route_offsets[flow as usize + 1] as usize,
        );
        for i in start..end {
            let l = self.route_links[i];
            if !self.dirty_mark[l as usize] {
                self.dirty_mark[l as usize] = true;
                self.dirty.push(l);
            }
        }
    }

    /// Activates a registered flow (it arrived).
    ///
    /// # Panics
    ///
    /// Panics if the flow is already active.
    pub fn activate(&mut self, flow: u32) {
        assert!(!self.active[flow as usize], "flow {flow} already active");
        self.active[flow as usize] = true;
        let (start, end) = (
            self.route_offsets[flow as usize] as usize,
            self.route_offsets[flow as usize + 1] as usize,
        );
        if start == end {
            // Local flow: unconstrained, not in any contention component.
            self.rates[flow as usize] = f64::INFINITY;
            return;
        }
        if !self.enlisted[flow as usize] {
            for i in start..end {
                self.flows_on_link[self.route_links[i] as usize].push(flow);
            }
            self.enlisted[flow as usize] = true;
        }
        // A re-activation before the purge of its deactivated entries
        // reuses them (pushing again would double-count the flow).
        self.mark_route_dirty(flow);
    }

    /// Deactivates an active flow (it completed). Its entries in the
    /// per-link flow lists are purged lazily at the next rebalance of the
    /// affected component.
    ///
    /// # Panics
    ///
    /// Panics if the flow is not active.
    pub fn deactivate(&mut self, flow: u32) {
        assert!(self.active[flow as usize], "flow {flow} is not active");
        self.active[flow as usize] = false;
        if self.enlisted[flow as usize] {
            self.unlist_queue.push(flow);
        }
        self.mark_route_dirty(flow);
    }

    /// The current max-min rate of a flow (valid for active flows after the
    /// last [`rebalance`](IncrementalMaxMin::rebalance)).
    pub fn rate(&self, flow: u32) -> f64 {
        self.rates[flow as usize]
    }

    /// Whether any links changed since the last rebalance.
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// The active flows whose rates the last
    /// [`rebalance`](IncrementalMaxMin::rebalance) recomputed (the affected
    /// connected component(s)). Flows outside this set kept their rates, so
    /// an event-driven consumer only needs to refresh these.
    pub fn last_component_flows(&self) -> &[u32] {
        &self.comp_flows
    }

    /// Recomputes rates for the connected component(s) of the contention
    /// graph touched since the last rebalance. Rates of flows outside those
    /// components are untouched (max-min allocations are component-local).
    pub fn rebalance(&mut self) {
        self.comp_links.clear();
        self.comp_flows.clear();
        if self.dirty.is_empty() {
            return;
        }
        // Split-borrow every field once; the traversal and fill below mutate
        // disjoint parts of the allocator.
        let IncrementalMaxMin {
            capacity,
            route_offsets,
            route_links,
            active,
            enlisted,
            unlist_queue,
            rates,
            flows_on_link,
            dirty,
            dirty_mark,
            residual,
            unfixed,
            in_component,
            flow_seen,
            flow_fixed,
            comp_links,
            comp_flows,
            heap,
        } = self;

        // 1. Discover the affected component(s): BFS over the bipartite
        //    flow/link contention graph seeded at the dirty links, purging
        //    deactivated flows from each visited link list along the way.
        for seed in dirty.drain(..) {
            dirty_mark[seed as usize] = false;
            if !in_component[seed as usize] {
                in_component[seed as usize] = true;
                comp_links.push(seed);
                // Only links a deactivation dirtied can hold dead entries,
                // so purging the seeds keeps every list clean.
                flows_on_link[seed as usize].retain(|&f| active[f as usize]);
            }
        }
        // The purge above dropped the entries of every flow deactivated
        // since the last rebalance (all its links were dirty seeds) —
        // unless it was re-activated in the meantime and kept them.
        for f in unlist_queue.drain(..) {
            if !active[f as usize] {
                enlisted[f as usize] = false;
            }
        }
        let mut next = 0;
        while next < comp_links.len() {
            let l = comp_links[next];
            next += 1;
            let mut scan = 0;
            while scan < flows_on_link[l as usize].len() {
                let f = flows_on_link[l as usize][scan];
                scan += 1;
                if !flow_seen[f as usize] {
                    flow_seen[f as usize] = true;
                    comp_flows.push(f);
                    for &m in Self::route(route_offsets, route_links, f) {
                        if !in_component[m as usize] {
                            in_component[m as usize] = true;
                            comp_links.push(m);
                        }
                    }
                }
            }
        }

        // 2. Water-fill the component: progressive filling driven by an
        //    indexed lazy-deletion min-heap of (fair share, link).
        heap.clear();
        for &l in comp_links.iter() {
            residual[l as usize] = capacity[l as usize];
            let count = flows_on_link[l as usize].len() as u32;
            unfixed[l as usize] = count;
            if count > 0 {
                heap.push(Bottleneck {
                    fair: residual[l as usize] / count as f64,
                    link: l,
                });
            }
        }
        // Lazy-deletion pops: fixing flows at a bottleneck leaves the other
        // touched links' heap entries stale, but water-filling fair shares
        // are non-decreasing over the fill (fixing at the minimum `f*`
        // turns `r/c ≥ f*` into `(r−kf*)/(c−k) ≥ r/c`), so stale entries
        // only under-estimate: popping one and re-pushing the corrected
        // value never skips the true bottleneck.
        while let Some(Bottleneck { fair, link }) = heap.pop() {
            let l = link as usize;
            if unfixed[l] == 0 {
                continue;
            }
            let current = residual[l] / unfixed[l] as f64;
            if current != fair {
                heap.push(Bottleneck {
                    fair: current,
                    link,
                });
                continue;
            }
            // Fix every unfixed flow crossing the bottleneck at `fair`.
            for &f in &flows_on_link[l] {
                if flow_fixed[f as usize] {
                    continue;
                }
                flow_fixed[f as usize] = true;
                rates[f as usize] = fair;
                for &m in Self::route(route_offsets, route_links, f) {
                    residual[m as usize] -= fair;
                    unfixed[m as usize] -= 1;
                }
            }
            // Guard against pathological floating-point residue.
            residual[l] = residual[l].max(0.0);
            debug_assert_eq!(unfixed[l], 0);
        }

        // 3. Reset the component marks for the next rebalance.
        for &l in comp_links.iter() {
            in_component[l as usize] = false;
        }
        for &f in comp_flows.iter() {
            flow_seen[f as usize] = false;
            flow_fixed[f as usize] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_full_capacity() {
        let rates = max_min_rates(&[vec![0, 1]], &[5.0, 3.0]);
        assert_eq!(rates, vec![3.0]);
    }

    #[test]
    fn equal_split_on_shared_link() {
        let routes = vec![vec![0], vec![0], vec![0], vec![0]];
        let rates = max_min_rates(&routes, &[8.0]);
        assert_eq!(rates, vec![2.0; 4]);
    }

    #[test]
    fn classic_parking_lot() {
        // Three links in a chain; one long flow crosses all, one short flow
        // per link. Long flow gets capacity/2 at the tightest link; short
        // flows soak up the rest.
        let routes = vec![vec![0, 1, 2], vec![0], vec![1], vec![2]];
        let rates = max_min_rates(&routes, &[10.0, 6.0, 10.0]);
        assert_eq!(rates[0], 3.0); // bottleneck: link 1 shared by 2 flows
        assert_eq!(rates[2], 3.0);
        assert_eq!(rates[1], 7.0);
        assert_eq!(rates[3], 7.0);
    }

    #[test]
    fn local_flows_are_unconstrained() {
        let routes = vec![vec![], vec![0]];
        let rates = max_min_rates(&routes, &[1.0]);
        assert!(rates[0].is_infinite());
        assert_eq!(rates[1], 1.0);
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &[1.0]).is_empty());
    }

    /// Drives an `IncrementalMaxMin` to the same state as an oracle call and
    /// asserts the rates agree (exactly — these fixtures have no fp ties).
    fn assert_matches_oracle(routes: &[Vec<usize>], capacity: &[f64]) {
        let mut alloc = IncrementalMaxMin::new(capacity.to_vec());
        let ids: Vec<u32> = routes
            .iter()
            .map(|r| {
                let links: Vec<u32> = r.iter().map(|&l| l as u32).collect();
                alloc.register(&links)
            })
            .collect();
        for &id in &ids {
            alloc.activate(id);
        }
        alloc.rebalance();
        let oracle = max_min_rates(routes, capacity);
        for (&id, &expect) in ids.iter().zip(&oracle) {
            assert_eq!(alloc.rate(id), expect, "flow {id}");
        }
    }

    #[test]
    fn incremental_matches_oracle_on_fixtures() {
        assert_matches_oracle(&[vec![0, 1]], &[5.0, 3.0]);
        assert_matches_oracle(&[vec![0], vec![0], vec![0], vec![0]], &[8.0]);
        assert_matches_oracle(
            &[vec![0, 1, 2], vec![0], vec![1], vec![2]],
            &[10.0, 6.0, 10.0],
        );
        assert_matches_oracle(
            &[vec![0, 1], vec![1, 2], vec![0, 2], vec![0], vec![2]],
            &[4.0, 2.0, 6.0],
        );
    }

    #[test]
    fn incremental_tracks_arrivals_and_completions() {
        // Parking lot; retire the long flow and watch the short ones grow.
        let mut alloc = IncrementalMaxMin::new(vec![10.0, 6.0, 10.0]);
        let long = alloc.register(&[0, 1, 2]);
        let shorts = [
            alloc.register(&[0]),
            alloc.register(&[1]),
            alloc.register(&[2]),
        ];
        alloc.activate(long);
        for &s in &shorts {
            alloc.activate(s);
        }
        alloc.rebalance();
        assert_eq!(alloc.rate(long), 3.0);
        assert_eq!(alloc.rate(shorts[0]), 7.0);
        alloc.deactivate(long);
        alloc.rebalance();
        assert_eq!(alloc.rate(shorts[0]), 10.0);
        assert_eq!(alloc.rate(shorts[1]), 6.0);
        assert_eq!(alloc.rate(shorts[2]), 10.0);
    }

    #[test]
    fn rebalance_leaves_untouched_components_alone() {
        // Two disjoint components; churn in one must not reprice the other.
        let mut alloc = IncrementalMaxMin::new(vec![4.0, 8.0]);
        let left = alloc.register(&[0]);
        let right_a = alloc.register(&[1]);
        let right_b = alloc.register(&[1]);
        alloc.activate(left);
        alloc.activate(right_a);
        alloc.activate(right_b);
        alloc.rebalance();
        assert_eq!(alloc.rate(left), 4.0);
        assert_eq!(alloc.rate(right_a), 4.0);
        alloc.deactivate(right_b);
        assert!(alloc.is_dirty());
        alloc.rebalance();
        assert_eq!(alloc.rate(left), 4.0);
        assert_eq!(alloc.rate(right_a), 8.0);
        assert!(!alloc.is_dirty());
    }

    #[test]
    fn empty_route_flow_is_unconstrained() {
        let mut alloc = IncrementalMaxMin::new(vec![1.0]);
        let local = alloc.register(&[]);
        let wired = alloc.register(&[0]);
        alloc.activate(local);
        alloc.activate(wired);
        alloc.rebalance();
        assert!(alloc.rate(local).is_infinite());
        assert_eq!(alloc.rate(wired), 1.0);
    }

    #[test]
    fn reactivation_before_rebalance_does_not_double_count() {
        // deactivate → activate with no rebalance in between must reuse the
        // still-present link-list entries, not duplicate them.
        let mut alloc = IncrementalMaxMin::new(vec![6.0]);
        let f = alloc.register(&[0]);
        let g = alloc.register(&[0]);
        alloc.activate(f);
        alloc.activate(g);
        alloc.rebalance();
        assert_eq!(alloc.rate(f), 3.0);
        alloc.deactivate(f);
        alloc.activate(f);
        alloc.rebalance();
        assert_eq!(alloc.rate(f), 3.0, "duplicate entry skews the share");
        assert_eq!(alloc.rate(g), 3.0);
        // And the same across a rebalance (entries purged, then re-pushed).
        alloc.deactivate(f);
        alloc.rebalance();
        assert_eq!(alloc.rate(g), 6.0);
        alloc.activate(f);
        alloc.rebalance();
        assert_eq!(alloc.rate(f), 3.0);
        assert_eq!(alloc.rate(g), 3.0);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn double_activation_rejected() {
        let mut alloc = IncrementalMaxMin::new(vec![1.0]);
        let f = alloc.register(&[0]);
        alloc.activate(f);
        alloc.activate(f);
    }

    #[test]
    fn rates_never_exceed_any_link_capacity() {
        // Property-ish check with a fixed awkward instance.
        let routes = vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![0], vec![2]];
        let caps = [4.0, 2.0, 6.0];
        let rates = max_min_rates(&routes, &caps);
        let mut used = [0.0; 3];
        for (f, route) in routes.iter().enumerate() {
            for &l in route {
                used[l] += rates[f];
            }
        }
        for l in 0..3 {
            assert!(used[l] <= caps[l] + 1e-9, "link {l} over capacity");
        }
    }
}
