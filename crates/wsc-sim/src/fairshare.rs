//! Max-min fair rate allocation (progressive water-filling).

/// Computes the max-min fair rate for each flow given link capacities.
///
/// `routes[f]` lists the link indices traversed by flow `f`; `capacity[l]`
/// is the bandwidth of link `l` in bytes/second. Flows with empty routes
/// receive `f64::INFINITY`.
///
/// The algorithm is classic progressive filling: repeatedly find the most
/// contended link (smallest `residual capacity / unfixed flow count`), fix
/// every unfixed flow crossing it at that fair share, subtract, repeat.
/// Runs in `O(links × iterations)`; deterministic (ties broken by lowest
/// link index).
///
/// # Example
///
/// ```
/// use wsc_sim::fairshare::max_min_rates;
///
/// // Two flows share link 0; one continues over link 1 alone.
/// let routes: Vec<Vec<usize>> = vec![vec![0], vec![0, 1]];
/// let rates = max_min_rates(&routes, &[10.0, 4.0]);
/// // Flow 1 is capped at 4 by link 1; flow 0 then gets the remaining 6.
/// assert_eq!(rates, vec![6.0, 4.0]);
/// ```
pub fn max_min_rates(routes: &[Vec<usize>], capacity: &[f64]) -> Vec<f64> {
    let num_links = capacity.len();
    let mut residual = capacity.to_vec();
    let mut flows_on_link: Vec<u32> = vec![0; num_links];
    for route in routes {
        for &l in route {
            flows_on_link[l] += 1;
        }
    }

    let mut rates = vec![f64::INFINITY; routes.len()];
    let mut unfixed: Vec<usize> = (0..routes.len())
        .filter(|&f| !routes[f].is_empty())
        .collect();

    while !unfixed.is_empty() {
        // Find the bottleneck link among links still carrying unfixed flows.
        let mut bottleneck: Option<(usize, f64)> = None;
        for l in 0..num_links {
            if flows_on_link[l] > 0 {
                let fair = residual[l] / flows_on_link[l] as f64;
                match bottleneck {
                    Some((_, best)) if fair >= best => {}
                    _ => bottleneck = Some((l, fair)),
                }
            }
        }
        let Some((bl, fair)) = bottleneck else {
            // No contended links left: remaining flows are unconstrained
            // (cannot happen with positive-capacity links, but stay safe).
            for &f in &unfixed {
                rates[f] = f64::INFINITY;
            }
            break;
        };

        // Fix every unfixed flow crossing the bottleneck.
        let mut still_unfixed = Vec::with_capacity(unfixed.len());
        for &f in &unfixed {
            if routes[f].contains(&bl) {
                rates[f] = fair;
                for &l in &routes[f] {
                    residual[l] -= fair;
                    flows_on_link[l] -= 1;
                }
            } else {
                still_unfixed.push(f);
            }
        }
        // Guard against pathological floating-point residue.
        residual[bl] = residual[bl].max(0.0);
        unfixed = still_unfixed;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_full_capacity() {
        let rates = max_min_rates(&[vec![0, 1]], &[5.0, 3.0]);
        assert_eq!(rates, vec![3.0]);
    }

    #[test]
    fn equal_split_on_shared_link() {
        let routes = vec![vec![0], vec![0], vec![0], vec![0]];
        let rates = max_min_rates(&routes, &[8.0]);
        assert_eq!(rates, vec![2.0; 4]);
    }

    #[test]
    fn classic_parking_lot() {
        // Three links in a chain; one long flow crosses all, one short flow
        // per link. Long flow gets capacity/2 at the tightest link; short
        // flows soak up the rest.
        let routes = vec![vec![0, 1, 2], vec![0], vec![1], vec![2]];
        let rates = max_min_rates(&routes, &[10.0, 6.0, 10.0]);
        assert_eq!(rates[0], 3.0); // bottleneck: link 1 shared by 2 flows
        assert_eq!(rates[2], 3.0);
        assert_eq!(rates[1], 7.0);
        assert_eq!(rates[3], 7.0);
    }

    #[test]
    fn local_flows_are_unconstrained() {
        let routes = vec![vec![], vec![0]];
        let rates = max_min_rates(&routes, &[1.0]);
        assert!(rates[0].is_infinite());
        assert_eq!(rates[1], 1.0);
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &[1.0]).is_empty());
    }

    #[test]
    fn rates_never_exceed_any_link_capacity() {
        // Property-ish check with a fixed awkward instance.
        let routes = vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![0], vec![2]];
        let caps = [4.0, 2.0, 6.0];
        let rates = max_min_rates(&routes, &caps);
        let mut used = [0.0; 3];
        for (f, route) in routes.iter().enumerate() {
            for &l in route {
                used[l] += rates[f];
            }
        }
        for l in 0..3 {
            assert!(used[l] <= caps[l] + 1e-9, "link {l} over capacity");
        }
    }
}
