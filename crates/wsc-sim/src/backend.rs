//! Pluggable congestion-pricing backends.
//!
//! Everything above this crate prices communication through the object-safe
//! [`CongestionModel`] trait rather than a hard-wired estimator, so any
//! experiment can trade fidelity for speed with a configuration knob
//! (see `EngineConfig::backend` in `moentwine-core` and DESIGN.md §5):
//!
//! * [`AnalyticModel`](crate::AnalyticModel) — the closed-form bottleneck
//!   estimator; `O(flows × hops)`, exact for phase-synchronous
//!   single-bottleneck schedules, conservative otherwise.
//! * [`FlowSimBackend`] — full flow-level discrete-event simulation
//!   ([`NetworkSim`]); orders of magnitude slower, but models flows
//!   completing at different times and freeing bandwidth.
//!
//! Both return the same [`AnalyticEstimate`] shape, so callers compose and
//! report results identically regardless of fidelity. Future backends (e.g.
//! a memoizing cache keyed on schedule shape) only need to implement the
//! trait.

use serde::{Deserialize, Serialize};
use wsc_topology::{DeviceId, RouteTable, Topology};

use crate::analytic::{AnalyticEstimate, AnalyticModel};
use crate::flow::FlowSpec;
use crate::network::NetworkSim;
use crate::schedule::FlowSchedule;

/// Backend selection knob: which [`CongestionModel`] implementation an
/// experiment uses. Carried by configuration structs (plain data, `Copy`)
/// and materialized with [`CongestionBackend::build`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum CongestionBackend {
    /// Closed-form bottleneck estimation ([`AnalyticModel`]); the default.
    #[default]
    Analytic,
    /// Flow-level discrete-event simulation ([`FlowSimBackend`]).
    FlowSim,
}

impl CongestionBackend {
    /// Stable lowercase name (`"analytic"` / `"flow-sim"`), matching
    /// [`CongestionModel::name`] and the `FromStr` spelling.
    pub fn name(self) -> &'static str {
        match self {
            CongestionBackend::Analytic => "analytic",
            CongestionBackend::FlowSim => "flow-sim",
        }
    }

    /// Materializes the backend over `topo`.
    pub fn build(self, topo: &Topology) -> Box<dyn CongestionModel + '_> {
        match self {
            CongestionBackend::Analytic => Box::new(AnalyticModel::new(topo)),
            CongestionBackend::FlowSim => Box::new(FlowSimBackend::new(topo)),
        }
    }

    /// Every backend, for sweep-style experiments.
    pub fn all() -> [CongestionBackend; 2] {
        [CongestionBackend::Analytic, CongestionBackend::FlowSim]
    }
}

impl std::str::FromStr for CongestionBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "analytic" => Ok(CongestionBackend::Analytic),
            "flow-sim" | "flowsim" | "des" => Ok(CongestionBackend::FlowSim),
            other => Err(format!(
                "unknown congestion backend {other:?} (expected \"analytic\" or \"flow-sim\")"
            )),
        }
    }
}

impl std::fmt::Display for CongestionBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Object-safe communication-pricing interface.
///
/// A backend prices concurrent flow sets, point-to-point transfer lists, and
/// phased [`FlowSchedule`]s into [`AnalyticEstimate`]-shaped results. The
/// estimate's `total_time` is the quantity of record; the decomposition into
/// `serialization_time` + `latency_time` is exact for the analytic backend
/// and derived (total minus longest route latency) for simulation backends.
pub trait CongestionModel {
    /// Stable backend name for reports (`"analytic"`, `"flow-sim"`).
    fn name(&self) -> &'static str;

    /// The topology being priced.
    fn topology(&self) -> &Topology;

    /// Prices a set of concurrent flows starting together.
    fn price_flows(&self, flows: &[FlowSpec]) -> AnalyticEstimate;

    /// Prices concurrent point-to-point transfers routed through `table`.
    /// Non-positive-byte entries are ignored.
    fn price_pairs(
        &self,
        table: &RouteTable,
        pairs: &[(DeviceId, DeviceId, f64)],
    ) -> AnalyticEstimate;

    /// Prices a phased schedule; phases are barrier-separated, so their
    /// estimates compose sequentially.
    fn price_schedule(&self, schedule: &FlowSchedule) -> AnalyticEstimate {
        let mut total = AnalyticEstimate {
            link_volume: vec![0.0; self.topology().num_links()],
            ..Default::default()
        };
        for phase in schedule.phases() {
            if phase.flows.is_empty() {
                continue;
            }
            let phase_est = self.price_flows(&phase.flows);
            total = total.then(&phase_est);
        }
        total
    }
}

impl CongestionModel for AnalyticModel<'_> {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn topology(&self) -> &Topology {
        AnalyticModel::topology(self)
    }

    fn price_flows(&self, flows: &[FlowSpec]) -> AnalyticEstimate {
        self.estimate_flows(flows)
    }

    fn price_pairs(
        &self,
        table: &RouteTable,
        pairs: &[(DeviceId, DeviceId, f64)],
    ) -> AnalyticEstimate {
        self.estimate_pairs(table, pairs.iter().copied())
    }

    fn price_schedule(&self, schedule: &FlowSchedule) -> AnalyticEstimate {
        self.estimate_schedule(schedule)
    }
}

/// Full-fidelity pricing backend wrapping the discrete-event [`NetworkSim`].
///
/// Each pricing call runs a fresh simulation (the simulator itself is
/// stateless across runs). The returned estimate carries the simulated
/// completion time as `total_time`, the DES per-link traffic as
/// `link_volume`, and derives `serialization_time` as
/// `total_time − latency_time` so that existing consumers of the analytic
/// decomposition keep working.
///
/// # Example
///
/// ```
/// use wsc_topology::{Mesh, PlatformParams};
/// use wsc_sim::{CongestionModel, FlowSimBackend, FlowSpec};
///
/// let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
/// let a = topo.device_at_xy(0, 0).unwrap();
/// let b = topo.device_at_xy(1, 0).unwrap();
/// let backend = FlowSimBackend::new(&topo);
/// let est = backend.price_flows(&[FlowSpec::new(topo.route(a, b), 4.0e9)]);
/// let expect = 4.0e9 / 4.0e12 + 50e-9;
/// assert!((est.total_time - expect).abs() / expect < 1e-9);
/// ```
#[derive(Debug)]
pub struct FlowSimBackend<'a> {
    topo: &'a Topology,
}

impl<'a> FlowSimBackend<'a> {
    /// Creates a backend simulating over `topo`.
    pub fn new(topo: &'a Topology) -> Self {
        FlowSimBackend { topo }
    }
}

impl CongestionModel for FlowSimBackend<'_> {
    fn name(&self) -> &'static str {
        "flow-sim"
    }

    fn topology(&self) -> &Topology {
        self.topo
    }

    fn price_flows(&self, flows: &[FlowSpec]) -> AnalyticEstimate {
        let result = NetworkSim::new(self.topo).run_concurrent(flows);
        let latency_time = flows
            .iter()
            .map(|f| self.topo.route_latency(&f.route))
            .fold(0.0, f64::max);
        AnalyticEstimate {
            serialization_time: (result.total_time - latency_time).max(0.0),
            latency_time: latency_time.min(result.total_time),
            total_time: result.total_time,
            link_volume: result.stats.bytes.clone(),
            total_bytes: flows.iter().map(|f| f.bytes).sum(),
            max_hops: flows.iter().map(|f| f.route.hops()).max().unwrap_or(0),
        }
    }

    fn price_pairs(
        &self,
        table: &RouteTable,
        pairs: &[(DeviceId, DeviceId, f64)],
    ) -> AnalyticEstimate {
        let flows: Vec<FlowSpec> = pairs
            .iter()
            .filter(|&&(_, _, bytes)| bytes > 0.0)
            .map(|&(src, dst, bytes)| FlowSpec::new(table.route(src, dst).clone(), bytes))
            .collect();
        self.price_flows(&flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_topology::{Mesh, PlatformParams};

    fn mesh(n: u16) -> Topology {
        Mesh::new(n, PlatformParams::dojo_like()).build()
    }

    /// Satellite contract: on a contention-free single-flow schedule the two
    /// backends agree within tolerance.
    #[test]
    fn backends_agree_on_contention_free_single_flow() {
        let topo = mesh(4);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(3, 2).unwrap();
        let mut sched = FlowSchedule::new();
        sched.push_phase("only", vec![FlowSpec::new(topo.route(a, b), 16.0e6)]);
        let estimates: Vec<AnalyticEstimate> = CongestionBackend::all()
            .iter()
            .map(|kind| kind.build(&topo).price_schedule(&sched))
            .collect();
        let (analytic, des) = (&estimates[0], &estimates[1]);
        assert!(analytic.total_time > 0.0);
        assert!(
            (analytic.total_time - des.total_time).abs() / des.total_time < 1e-9,
            "analytic {} vs DES {}",
            analytic.total_time,
            des.total_time
        );
        assert_eq!(analytic.max_hops, des.max_hops);
        assert!((analytic.total_bytes - des.total_bytes).abs() < 1e-6);
    }

    /// Satellite contract: under link contention with staggered activation
    /// the backends diverge in the expected direction — the DES exploits
    /// early-finishing flows, so it lands strictly below the conservative
    /// analytic total but never below the analytic serialization bound.
    #[test]
    fn backends_diverge_as_expected_under_contention() {
        let topo = mesh(4);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let c = topo.device_at_xy(2, 0).unwrap();
        // Both flows contend on link a→b; the second continues one more hop,
        // so the analytic latency term charges the longer route to both.
        let flows = vec![
            FlowSpec::new(topo.route(a, b), 1.0e6),
            FlowSpec::new(topo.route(a, c), 1.0e6),
        ];
        let analytic = AnalyticModel::new(&topo).price_flows(&flows);
        let des = FlowSimBackend::new(&topo).price_flows(&flows);
        assert!(
            des.total_time < analytic.total_time,
            "DES {} should undercut the conservative analytic bound {}",
            des.total_time,
            analytic.total_time
        );
        assert!(
            des.total_time >= analytic.serialization_time,
            "DES {} cannot beat the bottleneck serialization bound {}",
            des.total_time,
            analytic.serialization_time
        );
        // Same traffic either way.
        for (av, dv) in analytic.link_volume.iter().zip(&des.link_volume) {
            assert!((av - dv).abs() < 1.0, "link volume mismatch: {av} vs {dv}");
        }
    }

    #[test]
    fn price_pairs_matches_price_flows_on_both_backends() {
        let topo = mesh(4);
        let table = RouteTable::build(&topo);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(2, 1).unwrap();
        let pairs = vec![(a, b, 3.0e6), (b, a, 1.0e6), (a, a, 5.0e6), (b, a, 0.0)];
        for kind in CongestionBackend::all() {
            let backend = kind.build(&topo);
            let from_pairs = backend.price_pairs(&table, &pairs);
            let flows: Vec<FlowSpec> = pairs
                .iter()
                .filter(|&&(_, _, bytes)| bytes > 0.0)
                .map(|&(s, d, bytes)| FlowSpec::new(table.route(s, d).clone(), bytes))
                .collect();
            let from_flows = backend.price_flows(&flows);
            assert!(
                (from_pairs.total_time - from_flows.total_time).abs() < 1e-12,
                "{kind}: {} vs {}",
                from_pairs.total_time,
                from_flows.total_time
            );
        }
    }

    #[test]
    fn backend_knob_parses_and_prints() {
        assert_eq!("analytic".parse(), Ok(CongestionBackend::Analytic));
        assert_eq!("flow-sim".parse(), Ok(CongestionBackend::FlowSim));
        assert_eq!("des".parse(), Ok(CongestionBackend::FlowSim));
        assert!("astra".parse::<CongestionBackend>().is_err());
        assert_eq!(CongestionBackend::FlowSim.to_string(), "flow-sim");
        assert_eq!(CongestionBackend::default(), CongestionBackend::Analytic);
    }

    #[test]
    fn empty_schedule_prices_to_zero_on_both_backends() {
        let topo = mesh(2);
        let sched = FlowSchedule::new();
        for kind in CongestionBackend::all() {
            let est = kind.build(&topo).price_schedule(&sched);
            assert_eq!(est.total_time, 0.0, "{kind}");
            assert_eq!(est.total_bytes, 0.0, "{kind}");
        }
    }
}
