//! Pluggable congestion-pricing backends.
//!
//! Everything above this crate prices communication through the object-safe
//! [`CongestionModel`] trait rather than a hard-wired estimator, so any
//! experiment can trade fidelity for speed with a configuration knob
//! (see `EngineConfig::backend` in `moentwine-core` and DESIGN.md §5).
//! Three tiers form the fidelity ladder:
//!
//! * [`AnalyticModel`](crate::AnalyticModel) — the closed-form bottleneck
//!   estimator; `O(flows × hops)`, exact for phase-synchronous
//!   single-bottleneck schedules, conservative otherwise.
//! * [`CachedBackend`] over [`FlowSimBackend`] (the `flow-sim-cached` knob)
//!   — full DES fidelity with memoization: estimates are cached on a
//!   canonicalized schedule shape, so the repeated layers/iterations of an
//!   engine sweep are simulated once and replayed from the cache.
//! * [`FlowSimBackend`] — uncached flow-level discrete-event simulation
//!   ([`NetworkSim`]); every call re-simulates, modelling flows completing
//!   at different times and freeing bandwidth.
//!
//! All three return the same [`AnalyticEstimate`] shape, so callers compose
//! and report results identically regardless of fidelity, and the cached
//! tier is bit-identical to uncached flow-sim on equal schedules.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use wsc_topology::{DeviceId, LinkId, RouteTable, Topology};

use crate::analytic::{AnalyticEstimate, AnalyticModel};
use crate::flow::FlowSpec;
use crate::network::NetworkSim;
use crate::schedule::FlowSchedule;

/// Backend selection knob: which [`CongestionModel`] implementation an
/// experiment uses. Carried by configuration structs (plain data, `Copy`)
/// and materialized with [`CongestionBackend::build`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum CongestionBackend {
    /// Closed-form bottleneck estimation ([`AnalyticModel`]); the default.
    #[default]
    Analytic,
    /// Flow-level discrete-event simulation ([`FlowSimBackend`]).
    FlowSim,
    /// Flow-level DES behind a memoizing schedule cache ([`CachedBackend`]):
    /// identical estimates to [`CongestionBackend::FlowSim`], priced once
    /// per distinct schedule shape.
    FlowSimCached,
}

impl CongestionBackend {
    /// Stable lowercase name (`"analytic"` / `"flow-sim"` /
    /// `"flow-sim-cached"`), matching [`CongestionModel::name`] and the
    /// `FromStr` spelling.
    pub fn name(self) -> &'static str {
        match self {
            CongestionBackend::Analytic => "analytic",
            CongestionBackend::FlowSim => "flow-sim",
            CongestionBackend::FlowSimCached => "flow-sim-cached",
        }
    }

    /// Materializes the backend over `topo` (cached tier at
    /// [`DEFAULT_CACHE_ENTRIES`] capacity).
    pub fn build(self, topo: &Topology) -> Box<dyn CongestionModel + '_> {
        self.build_with_cache_capacity(topo, DEFAULT_CACHE_ENTRIES)
    }

    /// Materializes the backend over `topo`, bounding the memoizing tier's
    /// schedule cache at `cache_entries` estimates. The capacity only
    /// affects [`CongestionBackend::FlowSimCached`]; the stateless tiers
    /// ignore it. Threaded from `EngineConfig::cache_entries` so engine
    /// sweeps can size the cache to their schedule diversity.
    ///
    /// # Panics
    ///
    /// Panics if `cache_entries` is zero and the cached tier is selected.
    pub fn build_with_cache_capacity(
        self,
        topo: &Topology,
        cache_entries: usize,
    ) -> Box<dyn CongestionModel + '_> {
        match self {
            CongestionBackend::Analytic => Box::new(AnalyticModel::new(topo)),
            CongestionBackend::FlowSim => Box::new(FlowSimBackend::new(topo)),
            CongestionBackend::FlowSimCached => Box::new(CachedBackend::with_capacity_limit(
                Box::new(FlowSimBackend::new(topo)),
                cache_entries,
            )),
        }
    }

    /// Every backend, for sweep-style experiments.
    pub fn all() -> [CongestionBackend; 3] {
        [
            CongestionBackend::Analytic,
            CongestionBackend::FlowSim,
            CongestionBackend::FlowSimCached,
        ]
    }
}

impl std::str::FromStr for CongestionBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "analytic" => Ok(CongestionBackend::Analytic),
            "flow-sim" | "flowsim" | "des" => Ok(CongestionBackend::FlowSim),
            "flow-sim-cached" | "flowsim-cached" | "cached-des" => {
                Ok(CongestionBackend::FlowSimCached)
            }
            other => Err(format!(
                "unknown congestion backend {other:?} (expected \"analytic\", \
                 \"flow-sim\", or \"flow-sim-cached\")"
            )),
        }
    }
}

impl std::fmt::Display for CongestionBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Object-safe communication-pricing interface.
///
/// A backend prices concurrent flow sets, point-to-point transfer lists, and
/// phased [`FlowSchedule`]s into [`AnalyticEstimate`]-shaped results. The
/// estimate's `total_time` is the quantity of record; the decomposition into
/// `serialization_time` + `latency_time` is exact for the analytic backend
/// and derived (total minus longest route latency) for simulation backends.
///
/// `Send` is a supertrait so that an engine owning a backend can be moved
/// across threads: the fleet layer steps independent replica engines from a
/// worker pool (see `moentwine_core::fleet`). Backends need no `Sync` —
/// each engine owns its own instance.
pub trait CongestionModel: Send {
    /// Stable backend name for reports (`"analytic"`, `"flow-sim"`,
    /// `"flow-sim-cached"`).
    fn name(&self) -> &'static str;

    /// The topology being priced.
    fn topology(&self) -> &Topology;

    /// Prices a set of concurrent flows starting together.
    fn price_flows(&self, flows: &[FlowSpec]) -> AnalyticEstimate;

    /// Prices concurrent point-to-point transfers routed through `table`.
    /// Non-positive-byte entries are ignored.
    fn price_pairs(
        &self,
        table: &RouteTable,
        pairs: &[(DeviceId, DeviceId, f64)],
    ) -> AnalyticEstimate;

    /// Prices a phased schedule; phases are barrier-separated, so their
    /// estimates compose sequentially.
    fn price_schedule(&self, schedule: &FlowSchedule) -> AnalyticEstimate {
        compose_schedule(self, schedule)
    }
}

/// The canonical phase-by-phase schedule composition every backend shares:
/// skip empty phases, price each phase as a concurrent flow set, chain with
/// [`AnalyticEstimate::then`]. Kept as one function so fidelity tiers can
/// never drift apart in how they fold phases (the cached tier's bit-identity
/// contract depends on it).
fn compose_schedule<M: CongestionModel + ?Sized>(
    model: &M,
    schedule: &FlowSchedule,
) -> AnalyticEstimate {
    let mut total = AnalyticEstimate {
        link_volume: vec![0.0; model.topology().num_links()],
        ..Default::default()
    };
    for phase in schedule.phases() {
        if phase.flows.is_empty() {
            continue;
        }
        let phase_est = model.price_flows(&phase.flows);
        total = total.then(&phase_est);
    }
    total
}

impl CongestionModel for AnalyticModel<'_> {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn topology(&self) -> &Topology {
        AnalyticModel::topology(self)
    }

    fn price_flows(&self, flows: &[FlowSpec]) -> AnalyticEstimate {
        self.estimate_flows(flows)
    }

    fn price_pairs(
        &self,
        table: &RouteTable,
        pairs: &[(DeviceId, DeviceId, f64)],
    ) -> AnalyticEstimate {
        self.estimate_pairs(table, pairs.iter().copied())
    }

    fn price_schedule(&self, schedule: &FlowSchedule) -> AnalyticEstimate {
        self.estimate_schedule(schedule)
    }
}

/// Full-fidelity pricing backend wrapping the discrete-event [`NetworkSim`].
///
/// Each pricing call runs a fresh simulation (the simulator itself is
/// stateless across runs) over the incremental fair-share allocator. Routes
/// are borrowed — from the flows themselves or from the caller's shared CSR
/// [`RouteTable`] — so pricing allocates no per-flow route storage. The
/// returned estimate carries the simulated completion time as `total_time`,
/// the DES per-link traffic as `link_volume`, and derives
/// `serialization_time` as `total_time − latency_time` so that existing
/// consumers of the analytic decomposition keep working.
///
/// # Example
///
/// ```
/// use wsc_topology::{Mesh, PlatformParams};
/// use wsc_sim::{CongestionModel, FlowSimBackend, FlowSpec};
///
/// let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
/// let a = topo.device_at_xy(0, 0).unwrap();
/// let b = topo.device_at_xy(1, 0).unwrap();
/// let backend = FlowSimBackend::new(&topo);
/// let est = backend.price_flows(&[FlowSpec::new(topo.route(a, b), 4.0e9)]);
/// let expect = 4.0e9 / 4.0e12 + 50e-9;
/// assert!((est.total_time - expect).abs() / expect < 1e-9);
/// ```
#[derive(Debug)]
pub struct FlowSimBackend<'a> {
    topo: &'a Topology,
}

impl<'a> FlowSimBackend<'a> {
    /// Creates a backend simulating over `topo`.
    pub fn new(topo: &'a Topology) -> Self {
        FlowSimBackend { topo }
    }

    /// Shared estimate assembly for both pricing entry points:
    /// `paths` yields `(bytes, route links)` for every flow.
    fn price_paths<'r>(
        &self,
        paths: impl Iterator<Item = (f64, &'r [LinkId])> + Clone,
    ) -> AnalyticEstimate {
        let result = NetworkSim::new(self.topo)
            .run_paths(paths.clone().map(|(bytes, links)| (0.0, bytes, links)));
        let mut latency_time = 0.0_f64;
        let mut total_bytes = 0.0_f64;
        let mut max_hops = 0usize;
        for (bytes, links) in paths {
            latency_time = latency_time.max(self.topo.path_latency(links));
            total_bytes += bytes;
            max_hops = max_hops.max(links.len());
        }
        AnalyticEstimate {
            serialization_time: (result.total_time - latency_time).max(0.0),
            latency_time: latency_time.min(result.total_time),
            total_time: result.total_time,
            link_volume: result.stats.bytes,
            total_bytes,
            max_hops,
        }
    }
}

impl CongestionModel for FlowSimBackend<'_> {
    fn name(&self) -> &'static str {
        "flow-sim"
    }

    fn topology(&self) -> &Topology {
        self.topo
    }

    fn price_flows(&self, flows: &[FlowSpec]) -> AnalyticEstimate {
        self.price_paths(flows.iter().map(|f| (f.bytes, f.route.links())))
    }

    fn price_pairs(
        &self,
        table: &RouteTable,
        pairs: &[(DeviceId, DeviceId, f64)],
    ) -> AnalyticEstimate {
        self.price_paths(
            pairs
                .iter()
                .filter(|&&(_, _, bytes)| bytes > 0.0)
                .map(|&(src, dst, bytes)| (bytes, table.route(src, dst).links())),
        )
    }
}

/// Canonical shape of a pricing request — the memoization key of
/// [`CachedBackend`]. Flow order within a phase is immaterial to the
/// simulated outcome, so the per-phase `(route, bytes)` multiset is stored
/// sorted and permutations share a cache entry; phase structure (barriers)
/// is preserved.
///
/// The two entry-point families keep distinct representations so key
/// construction stays allocation-light on each hot path:
///
/// * flow sets / schedules — a flat CSR of phases → flows → route links
///   plus per-flow payload bit patterns (a handful of allocations total,
///   not one per flow);
/// * transfer-pair lists — sorted `(src, dst, bytes)` triples, skipping
///   route expansion entirely (routing is deterministic per topology, so
///   the endpoints already determine the links).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ScheduleShape(ShapeRepr);

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ShapeRepr {
    /// Sorted `((src << 32) | dst, bytes bit pattern)` triples.
    Pairs(Box<[(u64, u64)]>),
    /// Flat sorted-per-phase CSR over flows and their route links.
    Phases {
        /// `phase_offsets[p]..phase_offsets[p + 1]` indexes the phase's
        /// flows.
        phase_offsets: Box<[u32]>,
        /// `flow_offsets[f]..flow_offsets[f + 1]` indexes the flow's links.
        flow_offsets: Box<[u32]>,
        /// Concatenated route link indices.
        links: Box<[u32]>,
        /// Per-flow payload bit patterns.
        bytes_bits: Box<[u64]>,
    },
}

impl ScheduleShape {
    /// Canonicalizes phases of `(route links, bytes)` flows into the flat
    /// CSR representation, sorting each phase's flows.
    fn of_phase_iter<'r>(phases: impl Iterator<Item = &'r [FlowSpec]>) -> Self {
        let mut phase_offsets: Vec<u32> = vec![0];
        let mut flow_offsets: Vec<u32> = vec![0];
        let mut links: Vec<u32> = Vec::new();
        let mut bytes_bits: Vec<u64> = Vec::new();
        let mut order: Vec<u32> = Vec::new();
        for flows in phases {
            order.clear();
            order.extend(0..flows.len() as u32);
            order.sort_unstable_by(|&a, &b| {
                let (fa, fb) = (&flows[a as usize], &flows[b as usize]);
                fa.route
                    .links()
                    .cmp(fb.route.links())
                    .then(fa.bytes.to_bits().cmp(&fb.bytes.to_bits()))
            });
            for &i in &order {
                let f = &flows[i as usize];
                links.extend(f.route.links().iter().map(|l| l.0));
                flow_offsets.push(links.len() as u32);
                bytes_bits.push(f.bytes.to_bits());
            }
            phase_offsets.push(bytes_bits.len() as u32);
        }
        ScheduleShape(ShapeRepr::Phases {
            phase_offsets: phase_offsets.into_boxed_slice(),
            flow_offsets: flow_offsets.into_boxed_slice(),
            links: links.into_boxed_slice(),
            bytes_bits: bytes_bits.into_boxed_slice(),
        })
    }

    /// Canonicalizes a concurrent flow set (one phase).
    pub fn of_flows(flows: &[FlowSpec]) -> Self {
        Self::of_phase_iter(std::iter::once(flows))
    }

    /// Canonicalizes a transfer-pair list (non-positive-byte entries are
    /// dropped, as in pricing). Routes are not expanded: deterministic
    /// routing makes the endpoint pair an exact proxy for the route, so
    /// this is the cheapest key on the engine's per-layer hot path.
    pub fn of_pairs(pairs: &[(DeviceId, DeviceId, f64)]) -> Self {
        let mut triples: Vec<(u64, u64)> = pairs
            .iter()
            .filter(|&&(_, _, bytes)| bytes > 0.0)
            .map(|&(src, dst, bytes)| (((src.0 as u64) << 32) | dst.0 as u64, bytes.to_bits()))
            .collect();
        triples.sort_unstable();
        ScheduleShape(ShapeRepr::Pairs(triples.into_boxed_slice()))
    }

    /// Canonicalizes a phased schedule (empty phases are dropped, matching
    /// the default [`CongestionModel::price_schedule`] composition).
    pub fn of_schedule(schedule: &FlowSchedule) -> Self {
        Self::of_phase_iter(
            schedule
                .phases()
                .iter()
                .filter(|p| !p.flows.is_empty())
                .map(|p| p.flows.as_slice()),
        )
    }

    /// Number of phases in the canonical shape (1 for pair lists).
    pub fn num_phases(&self) -> usize {
        match &self.0 {
            ShapeRepr::Pairs(_) => 1,
            ShapeRepr::Phases { phase_offsets, .. } => phase_offsets.len() - 1,
        }
    }
}

/// Cache hit/miss counters of a [`CachedBackend`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Pricing calls answered from the cache.
    pub hits: u64,
    /// Pricing calls that ran the inner backend.
    pub misses: u64,
    /// Distinct schedule shapes currently stored.
    pub entries: usize,
}

/// Memoizing decorator over any [`CongestionModel`]: estimates are cached
/// under the canonicalized [`ScheduleShape`] of each pricing request, so
/// repeated schedules — the common case in engine sweeps, where every MoE
/// layer and iteration re-prices the same dispatch pattern — are simulated
/// once and replayed from the cache.
///
/// Correctness rests on the inner backend being a pure function of the
/// priced traffic (both shipped backends are): a cached result is the inner
/// backend's own estimate for the first schedule of that shape, hence
/// bit-identical to pricing without the cache.
///
/// # Example
///
/// ```
/// use wsc_topology::{Mesh, PlatformParams};
/// use wsc_sim::{CachedBackend, CongestionBackend, CongestionModel, FlowSpec};
///
/// let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
/// let a = topo.device_at_xy(0, 0).unwrap();
/// let b = topo.device_at_xy(1, 0).unwrap();
/// let cached = CongestionBackend::FlowSimCached.build(&topo);
/// let flows = vec![FlowSpec::new(topo.route(a, b), 4.0e9)];
/// let first = cached.price_flows(&flows);
/// let replay = cached.price_flows(&flows); // cache hit: no simulation
/// assert_eq!(first, replay);
/// ```
pub struct CachedBackend<'a> {
    inner: Box<dyn CongestionModel + 'a>,
    cache: RefCell<HashMap<ScheduleShape, AnalyticEstimate>>,
    /// Entry bound: each entry holds an `O(num_links)` volume vector plus
    /// its key, so an unbounded map would grow linearly on workloads whose
    /// shapes never repeat (e.g. sampled gating varying every iteration).
    /// When full, the whole map is dropped — repeating shapes re-fill it in
    /// one round, non-repeating workloads stay bounded.
    max_entries: usize,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

/// Default [`CachedBackend`] entry bound; generous for engine sweeps (one
/// shape per distinct layer schedule) while capping worst-case memory.
pub const DEFAULT_CACHE_ENTRIES: usize = 4096;

impl<'a> CachedBackend<'a> {
    /// Wraps `inner` with a fresh cache bounded at
    /// [`DEFAULT_CACHE_ENTRIES`] entries.
    pub fn new(inner: Box<dyn CongestionModel + 'a>) -> Self {
        Self::with_capacity_limit(inner, DEFAULT_CACHE_ENTRIES)
    }

    /// Wraps `inner` with a cache holding at most `max_entries` estimates
    /// (the map is cleared when the bound is hit).
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    pub fn with_capacity_limit(inner: Box<dyn CongestionModel + 'a>, max_entries: usize) -> Self {
        assert!(max_entries > 0, "cache must hold at least one entry");
        CachedBackend {
            inner,
            cache: RefCell::new(HashMap::new()),
            max_entries,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Current hit/miss/entry counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: self.cache.borrow().len(),
        }
    }

    /// Drops every cached estimate (e.g. after mutating link capacities of a
    /// shared topology, which the shape key cannot see).
    pub fn clear_cache(&self) {
        self.cache.borrow_mut().clear();
    }

    /// Looks up `shape`, running `compute` on a miss.
    fn memoize(
        &self,
        shape: ScheduleShape,
        compute: impl FnOnce() -> AnalyticEstimate,
    ) -> AnalyticEstimate {
        if let Some(est) = self.cache.borrow().get(&shape) {
            self.hits.set(self.hits.get() + 1);
            return est.clone();
        }
        self.misses.set(self.misses.get() + 1);
        let est = compute();
        let mut cache = self.cache.borrow_mut();
        if cache.len() >= self.max_entries {
            cache.clear();
        }
        cache.insert(shape, est.clone());
        est
    }
}

impl std::fmt::Debug for CachedBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedBackend")
            .field("inner", &self.inner.name())
            .field("stats", &self.cache_stats())
            .finish()
    }
}

impl CongestionModel for CachedBackend<'_> {
    fn name(&self) -> &'static str {
        match self.inner.name() {
            "flow-sim" => "flow-sim-cached",
            "analytic" => "analytic-cached",
            _ => "cached",
        }
    }

    fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    fn price_flows(&self, flows: &[FlowSpec]) -> AnalyticEstimate {
        self.memoize(ScheduleShape::of_flows(flows), || {
            self.inner.price_flows(flows)
        })
    }

    fn price_pairs(
        &self,
        table: &RouteTable,
        pairs: &[(DeviceId, DeviceId, f64)],
    ) -> AnalyticEstimate {
        // Pair keys rely on deterministic routing: `table` must cover this
        // backend's topology (as `price_pairs` already requires), so the
        // endpoint pair fully determines the route.
        debug_assert_eq!(table.num_devices(), self.topology().num_devices());
        self.memoize(ScheduleShape::of_pairs(pairs), || {
            self.inner.price_pairs(table, pairs)
        })
    }

    fn price_schedule(&self, schedule: &FlowSchedule) -> AnalyticEstimate {
        // Memoize the whole composed schedule; per-phase estimates land in
        // the cache too (`compose_schedule` goes through `price_flows`), so
        // partially overlapping schedules still share work.
        self.memoize(ScheduleShape::of_schedule(schedule), || {
            compose_schedule(self, schedule)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_topology::{Mesh, PlatformParams};

    fn mesh(n: u16) -> Topology {
        Mesh::new(n, PlatformParams::dojo_like()).build()
    }

    /// Satellite contract: on a contention-free single-flow schedule all
    /// backends agree within tolerance.
    #[test]
    fn backends_agree_on_contention_free_single_flow() {
        let topo = mesh(4);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(3, 2).unwrap();
        let mut sched = FlowSchedule::new();
        sched.push_phase("only", vec![FlowSpec::new(topo.route(a, b), 16.0e6)]);
        let estimates: Vec<AnalyticEstimate> = CongestionBackend::all()
            .iter()
            .map(|kind| kind.build(&topo).price_schedule(&sched))
            .collect();
        let (analytic, des, cached) = (&estimates[0], &estimates[1], &estimates[2]);
        assert!(analytic.total_time > 0.0);
        assert!(
            (analytic.total_time - des.total_time).abs() / des.total_time < 1e-9,
            "analytic {} vs DES {}",
            analytic.total_time,
            des.total_time
        );
        assert_eq!(analytic.max_hops, des.max_hops);
        assert!((analytic.total_bytes - des.total_bytes).abs() < 1e-6);
        assert_eq!(des, cached, "cached DES must be bit-identical to DES");
    }

    /// Satellite contract: under link contention with staggered activation
    /// the backends diverge in the expected direction — the DES exploits
    /// early-finishing flows, so it lands strictly below the conservative
    /// analytic total but never below the analytic serialization bound.
    #[test]
    fn backends_diverge_as_expected_under_contention() {
        let topo = mesh(4);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let c = topo.device_at_xy(2, 0).unwrap();
        // Both flows contend on link a→b; the second continues one more hop,
        // so the analytic latency term charges the longer route to both.
        let flows = vec![
            FlowSpec::new(topo.route(a, b), 1.0e6),
            FlowSpec::new(topo.route(a, c), 1.0e6),
        ];
        let analytic = AnalyticModel::new(&topo).price_flows(&flows);
        let des = FlowSimBackend::new(&topo).price_flows(&flows);
        assert!(
            des.total_time < analytic.total_time,
            "DES {} should undercut the conservative analytic bound {}",
            des.total_time,
            analytic.total_time
        );
        assert!(
            des.total_time >= analytic.serialization_time,
            "DES {} cannot beat the bottleneck serialization bound {}",
            des.total_time,
            analytic.serialization_time
        );
        // Same traffic either way.
        for (av, dv) in analytic.link_volume.iter().zip(&des.link_volume) {
            assert!((av - dv).abs() < 1.0, "link volume mismatch: {av} vs {dv}");
        }
    }

    #[test]
    fn price_pairs_matches_price_flows_on_all_backends() {
        let topo = mesh(4);
        let table = RouteTable::build(&topo);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(2, 1).unwrap();
        let pairs = vec![(a, b, 3.0e6), (b, a, 1.0e6), (a, a, 5.0e6), (b, a, 0.0)];
        for kind in CongestionBackend::all() {
            let backend = kind.build(&topo);
            let from_pairs = backend.price_pairs(&table, &pairs);
            let flows: Vec<FlowSpec> = pairs
                .iter()
                .filter(|&&(_, _, bytes)| bytes > 0.0)
                .map(|&(s, d, bytes)| FlowSpec::new(table.route(s, d).to_route(), bytes))
                .collect();
            let from_flows = backend.price_flows(&flows);
            assert!(
                (from_pairs.total_time - from_flows.total_time).abs() < 1e-12,
                "{kind}: {} vs {}",
                from_pairs.total_time,
                from_flows.total_time
            );
        }
    }

    #[test]
    fn backend_knob_parses_and_prints() {
        assert_eq!("analytic".parse(), Ok(CongestionBackend::Analytic));
        assert_eq!("flow-sim".parse(), Ok(CongestionBackend::FlowSim));
        assert_eq!("des".parse(), Ok(CongestionBackend::FlowSim));
        assert_eq!(
            "flow-sim-cached".parse(),
            Ok(CongestionBackend::FlowSimCached)
        );
        assert_eq!("cached-des".parse(), Ok(CongestionBackend::FlowSimCached));
        assert!("astra".parse::<CongestionBackend>().is_err());
        assert_eq!(CongestionBackend::FlowSim.to_string(), "flow-sim");
        assert_eq!(
            CongestionBackend::FlowSimCached.to_string(),
            "flow-sim-cached"
        );
        assert_eq!(CongestionBackend::default(), CongestionBackend::Analytic);
    }

    #[test]
    fn empty_schedule_prices_to_zero_on_all_backends() {
        let topo = mesh(2);
        let sched = FlowSchedule::new();
        for kind in CongestionBackend::all() {
            let est = kind.build(&topo).price_schedule(&sched);
            assert_eq!(est.total_time, 0.0, "{kind}");
            assert_eq!(est.total_bytes, 0.0, "{kind}");
        }
    }

    #[test]
    fn cache_hits_on_repeats_and_flow_permutations() {
        let topo = mesh(4);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let c = topo.device_at_xy(2, 0).unwrap();
        let cached = CachedBackend::new(Box::new(FlowSimBackend::new(&topo)));
        let f1 = FlowSpec::new(topo.route(a, b), 1.0e6);
        let f2 = FlowSpec::new(topo.route(a, c), 2.0e6);
        let fwd = cached.price_flows(&[f1.clone(), f2.clone()]);
        assert_eq!(
            cached.cache_stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                entries: 1
            }
        );
        // Same multiset, different order: a hit, not a re-simulation.
        let rev = cached.price_flows(&[f2, f1]);
        assert_eq!(fwd, rev);
        let stats = cached.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Different payload misses.
        cached.price_flows(&[FlowSpec::new(topo.route(a, b), 3.0e6)]);
        assert_eq!(cached.cache_stats().misses, 2);
        cached.clear_cache();
        assert_eq!(cached.cache_stats().entries, 0);
    }

    #[test]
    fn cache_entry_bound_is_enforced() {
        let topo = mesh(4);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let cached = CachedBackend::with_capacity_limit(Box::new(FlowSimBackend::new(&topo)), 3);
        // Never-repeating shapes: entries stay bounded by the limit.
        for i in 1..=10 {
            cached.price_flows(&[FlowSpec::new(topo.route(a, b), i as f64 * 1.0e6)]);
            assert!(cached.cache_stats().entries <= 3, "iteration {i}");
        }
        assert_eq!(cached.cache_stats().misses, 10);
    }

    /// Satellite contract: the knob-level constructor threads the capacity
    /// into the cached tier, and eviction at a tiny capacity still replays
    /// shapes that survive in the (cleared-on-overflow) map correctly.
    #[test]
    fn build_with_cache_capacity_pins_eviction_at_tiny_capacity() {
        let topo = mesh(4);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let c = topo.device_at_xy(2, 0).unwrap();
        let backend = CongestionBackend::FlowSimCached.build_with_cache_capacity(&topo, 1);
        let f_ab = vec![FlowSpec::new(topo.route(a, b), 1.0e6)];
        let f_ac = vec![FlowSpec::new(topo.route(a, c), 1.0e6)];
        let first = backend.price_flows(&f_ab);
        // Same shape replays from the single slot...
        assert_eq!(first, backend.price_flows(&f_ab));
        // ...a second shape evicts it (capacity 1 clears the map)...
        let other = backend.price_flows(&f_ac);
        // ...so the original shape re-simulates, bit-identically.
        assert_eq!(first, backend.price_flows(&f_ab));
        assert_eq!(other, backend.price_flows(&f_ac));
        // The stateless tiers accept (and ignore) the capacity.
        for kind in [CongestionBackend::Analytic, CongestionBackend::FlowSim] {
            let est = kind.build_with_cache_capacity(&topo, 1).price_flows(&f_ab);
            assert_eq!(est.total_time, first.total_time, "{kind}");
        }
    }

    #[test]
    fn cached_schedule_reuses_phase_entries() {
        let topo = mesh(4);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let cached = CachedBackend::new(Box::new(FlowSimBackend::new(&topo)));
        let phase = vec![FlowSpec::new(topo.route(a, b), 4.0e6)];
        let mut sched = FlowSchedule::new();
        sched.push_phase("p0", phase.clone());
        sched.push_phase("p1", phase.clone());
        let est = cached.price_schedule(&sched);
        // Two identical phases → one simulated phase + one phase hit, plus
        // the whole-schedule entry.
        let stats = cached.cache_stats();
        assert_eq!(stats.hits, 1, "second phase should hit the phase entry");
        assert_eq!(stats.entries, 2);
        // The phase entry now also answers a plain flow-set query.
        let one = cached.price_flows(&phase);
        assert!((est.total_time - 2.0 * one.total_time).abs() < 1e-15);
        assert_eq!(cached.cache_stats().hits, 2);
    }

    #[test]
    fn cached_estimates_are_bit_identical_to_uncached() {
        let topo = mesh(4);
        let table = RouteTable::build(&topo);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(3, 1).unwrap();
        let c = topo.device_at_xy(1, 3).unwrap();
        let uncached = FlowSimBackend::new(&topo);
        let cached = CachedBackend::new(Box::new(FlowSimBackend::new(&topo)));
        let flows = vec![
            FlowSpec::new(topo.route(a, b), 5.0e6),
            FlowSpec::new(topo.route(a, c), 7.0e6),
            FlowSpec::new(topo.route(b, c), 3.0e6),
        ];
        assert_eq!(uncached.price_flows(&flows), cached.price_flows(&flows));
        assert_eq!(uncached.price_flows(&flows), cached.price_flows(&flows));
        let pairs = vec![(a, b, 1.0e6), (c, a, 2.0e6), (b, b, 9.0)];
        assert_eq!(
            uncached.price_pairs(&table, &pairs),
            cached.price_pairs(&table, &pairs)
        );
    }

    #[test]
    fn schedule_shape_distinguishes_phase_structure() {
        let topo = mesh(2);
        let a = topo.device_at_xy(0, 0).unwrap();
        let b = topo.device_at_xy(1, 0).unwrap();
        let flow = FlowSpec::new(topo.route(a, b), 1.0e6);
        let mut one_phase = FlowSchedule::new();
        one_phase.push_phase("p", vec![flow.clone(), flow.clone()]);
        let mut two_phases = FlowSchedule::new();
        two_phases.push_phase("p0", vec![flow.clone()]);
        two_phases.push_phase("p1", vec![flow]);
        assert_ne!(
            ScheduleShape::of_schedule(&one_phase),
            ScheduleShape::of_schedule(&two_phases)
        );
        assert_eq!(ScheduleShape::of_schedule(&one_phase).num_phases(), 1);
        assert_eq!(ScheduleShape::of_schedule(&two_phases).num_phases(), 2);
    }
}
