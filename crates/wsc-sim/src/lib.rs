//! Flow-level network simulation for wafer-scale chips and GPU clusters.
//!
//! This crate is the substitute for the analytical network backend of
//! ASTRA-sim used by the paper (§VI-A2). It offers two tiers of fidelity:
//!
//! * [`NetworkSim`] — a discrete-event, flow-level simulator. Concurrent
//!   flows share link bandwidth max-min fairly (water-filling), rates are
//!   re-allocated whenever a flow starts or completes, and every flow pays
//!   the summed per-hop link latency of its route before transmission begins
//!   (the paper's Eq. 1: `latency = (volume/bandwidth + link_latency) × hops`
//!   generalises to heterogeneous routes as
//!   `Σ link_latency + volume / bottleneck_bandwidth`). Rate re-allocation
//!   runs on the incremental component-scoped allocator
//!   ([`fairshare::IncrementalMaxMin`]); the full-recompute water-filling
//!   ([`fairshare::max_min_rates`]) remains as the reference oracle.
//! * [`AnalyticModel`] — a closed-form congestion estimator: per-link volume
//!   accumulation, bottleneck-link serialization, plus the maximum route
//!   latency. Orders of magnitude faster; used by the end-to-end engine and
//!   validated against [`NetworkSim`] in tests.
//!
//! Collective algorithms (see the `wsc-collectives` crate) compile to
//! [`FlowSchedule`]s: sequences of phases, each phase a set of concurrent
//! flows, with a barrier between phases (step-synchronous collectives).
//!
//! Consumers that should work at any fidelity price schedules through the
//! pluggable [`CongestionModel`] trait ([`backend`] module). Three
//! implementations form the fidelity ladder, selected by the
//! [`CongestionBackend`] knob: the [`AnalyticModel`], the DES-wrapping
//! [`FlowSimBackend`], and the memoizing [`CachedBackend`] decorator that
//! replays DES estimates for repeated schedule shapes.
//!
//! # Example
//!
//! ```
//! use wsc_topology::{Mesh, PlatformParams};
//! use wsc_sim::{FlowSpec, NetworkSim};
//!
//! let topo = Mesh::new(2, PlatformParams::dojo_like()).build();
//! let a = topo.device_at_xy(0, 0).unwrap();
//! let b = topo.device_at_xy(1, 0).unwrap();
//! let mut sim = NetworkSim::new(&topo);
//! // Two flows over the same link halve each other's bandwidth.
//! let result = sim.run_concurrent(&[
//!     FlowSpec::new(topo.route(a, b), 4.0e9),
//!     FlowSpec::new(topo.route(a, b), 4.0e9),
//! ]);
//! let expect = 2.0 * 4.0e9 / 4.0e12 + 50e-9;
//! assert!((result.total_time - expect).abs() / expect < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod backend;
pub mod fairshare;
pub mod flow;
pub mod network;
pub mod schedule;
pub mod stats;

pub use analytic::{AnalyticEstimate, AnalyticModel};
pub use backend::{
    CacheStats, CachedBackend, CongestionBackend, CongestionModel, FlowSimBackend, ScheduleShape,
    DEFAULT_CACHE_ENTRIES,
};
pub use fairshare::{max_min_rates, IncrementalMaxMin};
pub use flow::{FlowId, FlowSpec};
pub use network::{NetworkSim, RunResult};
pub use schedule::{FlowSchedule, Phase, ScheduleResult};
pub use stats::LinkStats;
