//! Flow descriptions.

use serde::{Deserialize, Serialize};
use wsc_topology::Route;

/// Identifier of a flow within a single simulation run (dense index, in
/// submission order).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Returns the flow id as a `usize` suitable for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A point-to-point transfer: a number of bytes pushed along a fixed route.
///
/// A flow with an empty route models a device-local copy and completes
/// instantaneously.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FlowSpec {
    /// The route the flow traverses.
    pub route: Route,
    /// Payload size in bytes.
    pub bytes: f64,
}

impl FlowSpec {
    /// Creates a flow of `bytes` bytes over `route`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or not finite.
    pub fn new(route: Route, bytes: f64) -> Self {
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "flow size must be a non-negative finite byte count, got {bytes}"
        );
        FlowSpec { route, bytes }
    }

    /// Whether this flow is a device-local no-op.
    pub fn is_local(&self) -> bool {
        self.route.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsc_topology::LinkId;

    #[test]
    fn local_flow_detection() {
        assert!(FlowSpec::new(Route::default(), 100.0).is_local());
        let r = Route::new(vec![LinkId(0)]);
        assert!(!FlowSpec::new(r, 100.0).is_local());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bytes_rejected() {
        let _ = FlowSpec::new(Route::default(), -1.0);
    }

    #[test]
    fn zero_byte_flow_allowed() {
        let f = FlowSpec::new(Route::default(), 0.0);
        assert_eq!(f.bytes, 0.0);
    }
}
