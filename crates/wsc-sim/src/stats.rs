//! Per-link traffic statistics and hot/cold classification.

use serde::{Deserialize, Serialize};
use wsc_topology::{LinkId, Topology};

/// Per-link traffic accumulated over a simulation run.
///
/// Used both for congestion inspection and for the hot/cold link analysis of
/// the paper's Fig. 11, which the NI-Balancer exploits to place migration
/// traffic on idle links.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Bytes carried per link (indexed by [`LinkId::index`]).
    pub bytes: Vec<f64>,
    /// Seconds each link spent with at least one active flow.
    pub busy_time: Vec<f64>,
    /// Wall-clock duration of the observed window, seconds.
    pub duration: f64,
}

impl LinkStats {
    /// Creates empty statistics for `num_links` links.
    pub fn new(num_links: usize) -> Self {
        LinkStats {
            bytes: vec![0.0; num_links],
            busy_time: vec![0.0; num_links],
            duration: 0.0,
        }
    }

    /// Number of links tracked.
    pub fn num_links(&self) -> usize {
        self.bytes.len()
    }

    /// Accumulates another window of statistics (links must match).
    ///
    /// # Panics
    ///
    /// Panics if the two stats cover different link counts.
    pub fn merge(&mut self, other: &LinkStats) {
        assert_eq!(
            self.bytes.len(),
            other.bytes.len(),
            "cannot merge stats over different topologies"
        );
        for (a, b) in self.bytes.iter_mut().zip(&other.bytes) {
            *a += b;
        }
        for (a, b) in self.busy_time.iter_mut().zip(&other.busy_time) {
            *a += b;
        }
        self.duration += other.duration;
    }

    /// Fraction of the window a link was busy, in `[0, 1]`.
    pub fn busy_fraction(&self, link: LinkId) -> f64 {
        if self.duration == 0.0 {
            0.0
        } else {
            (self.busy_time[link.index()] / self.duration).min(1.0)
        }
    }

    /// Average bandwidth utilization of a link over the window, in `[0, 1]`.
    pub fn utilization(&self, link: LinkId, topo: &Topology) -> f64 {
        if self.duration == 0.0 {
            return 0.0;
        }
        let cap = topo.link(link).bandwidth * self.duration;
        (self.bytes[link.index()] / cap).min(1.0)
    }

    /// The maximum bytes carried by any link.
    pub fn max_bytes(&self) -> f64 {
        self.bytes.iter().copied().fold(0.0, f64::max)
    }

    /// Links carrying at least `fraction` of the maximum per-link volume
    /// ("hot" links in the paper's Fig. 11 terminology).
    pub fn hot_links(&self, fraction: f64) -> Vec<LinkId> {
        let threshold = self.max_bytes() * fraction;
        if threshold == 0.0 {
            return Vec::new();
        }
        self.bytes
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b >= threshold)
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }

    /// Links carrying *less* than `fraction` of the maximum per-link volume
    /// ("cold" links — candidates for hidden migration traffic).
    pub fn cold_links(&self, fraction: f64) -> Vec<LinkId> {
        let threshold = self.max_bytes() * fraction;
        self.bytes
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b < threshold)
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LinkStats {
        LinkStats {
            bytes: vec![100.0, 10.0, 0.0, 100.0],
            busy_time: vec![1.0, 0.1, 0.0, 0.5],
            duration: 1.0,
        }
    }

    #[test]
    fn hot_cold_partition() {
        let s = sample();
        let hot = s.hot_links(0.5);
        assert_eq!(hot, vec![LinkId(0), LinkId(3)]);
        let cold = s.cold_links(0.5);
        assert_eq!(cold, vec![LinkId(1), LinkId(2)]);
        assert_eq!(hot.len() + cold.len(), s.num_links());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.bytes[0], 200.0);
        assert_eq!(a.busy_time[1], 0.2);
        assert_eq!(a.duration, 2.0);
    }

    #[test]
    fn busy_fraction_clamped() {
        let s = sample();
        assert_eq!(s.busy_fraction(LinkId(0)), 1.0);
        assert!((s.busy_fraction(LinkId(3)) - 0.5).abs() < 1e-12);
        let empty = LinkStats::new(2);
        assert_eq!(empty.busy_fraction(LinkId(0)), 0.0);
    }

    #[test]
    fn hot_links_of_empty_stats() {
        let s = LinkStats::new(3);
        assert!(s.hot_links(0.5).is_empty());
        assert_eq!(s.cold_links(0.5).len(), 0); // max=0 → threshold 0 → none strictly below
    }
}
