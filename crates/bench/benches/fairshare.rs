//! Criterion benchmarks for max-min fair-share rate allocation: the
//! incremental component-scoped allocator (`IncrementalMaxMin`) against the
//! full-recompute water-filling oracle (`max_min_rates`), under dense and
//! sparse contention.
//!
//! * **Dense** — every flow crosses one shared hub link, so the contention
//!   graph is a single component: the incremental allocator still
//!   re-waterfills everything on each event, and the win comes from the
//!   indexed bottleneck heap and per-link flow lists (no per-round
//!   membership scans, no route cloning).
//! * **Sparse** — flows pair off on disjoint links, so an event touches a
//!   two-flow component: the incremental allocator reprices a handful of
//!   flows while the oracle recomputes all of them.
//!
//! Each measured iteration replays the same arrival/completion churn: all
//! flows arrive, then half complete one by one — a rebalance per event, as
//! the DES event loop issues them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsc_sim::{max_min_rates, IncrementalMaxMin};

/// Flow routes for `flows` flows over `links` links.
fn routes(flows: usize, links: usize, dense: bool) -> Vec<Vec<usize>> {
    (0..flows)
        .map(|f| {
            if dense {
                // Shared hub link 0 plus a private tail link.
                vec![0, 1 + f % (links - 1)]
            } else {
                // Disjoint pairs: flows 2k and 2k+1 share link k.
                vec![f / 2 % links]
            }
        })
        .collect()
}

fn churn_incremental(routes: &[Vec<usize>], capacity: &[f64]) -> f64 {
    let mut alloc = IncrementalMaxMin::new(capacity.to_vec());
    let ids: Vec<u32> = routes
        .iter()
        .map(|r| {
            let links: Vec<u32> = r.iter().map(|&l| l as u32).collect();
            alloc.register(&links)
        })
        .collect();
    let mut acc = 0.0;
    for &id in &ids {
        alloc.activate(id);
        alloc.rebalance();
        acc += alloc.rate(id);
    }
    for &id in ids.iter().take(ids.len() / 2) {
        alloc.deactivate(id);
        alloc.rebalance();
        acc += alloc.rate(ids[ids.len() - 1]);
    }
    acc
}

fn churn_full_recompute(routes: &[Vec<usize>], capacity: &[f64]) -> f64 {
    // The PR-1 pattern: rebuild the active route set and re-waterfill from
    // scratch on every arrival/completion event.
    let mut acc = 0.0;
    for arrived in 1..=routes.len() {
        let active: Vec<Vec<usize>> = routes[..arrived].to_vec();
        let rates = max_min_rates(&active, capacity);
        acc += rates[arrived - 1];
    }
    for completed in 1..=routes.len() / 2 {
        let active: Vec<Vec<usize>> = routes[completed..].to_vec();
        let rates = max_min_rates(&active, capacity);
        acc += rates[rates.len() - 1];
    }
    acc
}

fn bench_fairshare_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairshare_churn");
    group.sample_size(10);
    for (label, dense) in [("dense", true), ("sparse", false)] {
        for flows in [64usize, 512] {
            let links = 65;
            let capacity = vec![1.0e12; links];
            let rts = routes(flows, links, dense);
            group.bench_with_input(
                BenchmarkId::new(format!("incremental-{label}"), flows),
                &rts,
                |b, rts| b.iter(|| churn_incremental(rts, &capacity)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("full-recompute-{label}"), flows),
                &rts,
                |b, rts| b.iter(|| churn_full_recompute(rts, &capacity)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fairshare_churn);
criterion_main!(benches);
