//! Criterion benchmarks for mapping construction and FTD analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use moentwine_bench::platforms::Platform;
use moentwine_core::mapping::{BaselineMapping, ErMapping, HierarchicalErMapping, TpShape};
use wsc_topology::RouteTable;

fn bench_plan_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_plan");
    for n in [8u16, 16] {
        let platform = Platform::wsc(n);
        let dims = platform.topo.mesh_dims().unwrap();
        group.bench_with_input(
            BenchmarkId::new("er", format!("{n}x{n}")),
            &dims,
            |b, &dims| b.iter(|| ErMapping::new(dims, TpShape::new(4, 2)).unwrap().plan()),
        );
        group.bench_with_input(
            BenchmarkId::new("baseline", format!("{n}x{n}")),
            &dims,
            |b, &dims| {
                b.iter(|| {
                    BaselineMapping::new(dims, TpShape::new(4, 2))
                        .unwrap()
                        .plan()
                })
            },
        );
    }
    let multi = Platform::multi_wsc(2, 2, 8);
    let dims = multi.topo.mesh_dims().unwrap();
    group.bench_function("her_4x(8x8)", |b| {
        b.iter(|| {
            HierarchicalErMapping::new(dims, TpShape::new(4, 2))
                .unwrap()
                .plan()
        })
    });
    group.finish();
}

fn bench_route_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_table_build");
    group.sample_size(10);
    for n in [8u16, 16] {
        let topo = wsc_topology::Mesh::new(n, wsc_topology::PlatformParams::dojo_like()).build();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &n,
            |b, _| b.iter(|| RouteTable::build(&topo)),
        );
    }
    group.finish();
}

fn bench_ftd_analysis(c: &mut Criterion) {
    let platform = Platform::wsc(8);
    let plan = ErMapping::new(platform.topo.mesh_dims().unwrap(), TpShape::new(4, 2))
        .unwrap()
        .plan();
    c.bench_function("average_ftd_hops_8x8", |b| {
        b.iter(|| plan.average_ftd_hops(&platform.topo))
    });
}

criterion_group!(
    benches,
    bench_plan_construction,
    bench_route_table,
    bench_ftd_analysis
);
criterion_main!(benches);
