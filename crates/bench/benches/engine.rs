//! Criterion benchmarks for end-to-end engine iterations — the cost of one
//! simulated serving step at the scales used by Figs. 15–17.

use criterion::{criterion_group, criterion_main, Criterion};

use moe_model::ModelConfig;
use moentwine_bench::platforms::{wsc_plan, Platform, WscMapping};
use moentwine_core::balancer::BalancerKind;
use moentwine_core::engine::{EngineConfig, InferenceEngine};

fn bench_engine_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step");
    group.sample_size(10);

    // Qwen3 on a 4x4 wafer (Fig. 15 scale).
    {
        let platform = Platform::wsc(4);
        let plan = wsc_plan(&platform, 4, WscMapping::Er);
        group.bench_function("qwen3_4x4_nobalance", |b| {
            b.iter_batched(
                || {
                    InferenceEngine::new(
                        &platform.topo,
                        &platform.table,
                        &plan,
                        EngineConfig::new(ModelConfig::qwen3_235b()).with_seed(1),
                    )
                },
                |mut engine| {
                    engine.step();
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }

    // DeepSeek-V3 on an 8x8 wafer with the NI-Balancer (Fig. 16 scale).
    {
        let platform = Platform::wsc(8);
        let plan = wsc_plan(&platform, 4, WscMapping::Er);
        group.bench_function("dsv3_8x8_non_invasive", |b| {
            b.iter_batched(
                || {
                    let mut config = EngineConfig::new(ModelConfig::deepseek_v3())
                        .with_balancer(BalancerKind::NonInvasive)
                        .with_seed(1);
                    config.comm_layer_stride = 4;
                    InferenceEngine::new(&platform.topo, &platform.table, &plan, config)
                },
                |mut engine| {
                    engine.step();
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_step);
criterion_main!(benches);
