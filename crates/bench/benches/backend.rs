//! Criterion benchmarks for the pluggable congestion-pricing backends:
//! the cost of pricing the *same* collective with the closed-form analytic
//! model versus the flow-level DES, at both collective and A2A scope.
//!
//! This quantifies the fidelity/speed trade the `EngineConfig::backend` knob
//! buys (DESIGN.md §5): the analytic estimate is typically orders of
//! magnitude cheaper per schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use moentwine_bench::platforms::{balanced_gating, Platform};
use moe_model::{ModelConfig, Precision};
use moentwine_core::comm::A2aModel;
use moentwine_core::mapping::ErMapping;
use moentwine_core::placement::ExpertPlacement;
use wsc_sim::{CongestionBackend, FlowSchedule};

fn er_all_reduce_schedule(platform: &Platform, tp: usize, bytes: f64) -> FlowSchedule {
    let plan = ErMapping::with_tp_degree(platform.topo.mesh_dims().unwrap(), tp)
        .unwrap()
        .plan();
    use moentwine_core::comm::ParallelLayout;
    plan.all_reduce_schedule(&platform.topo, bytes)
}

fn bench_price_er_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("price_er_all_reduce");
    for n in [4u16, 8] {
        let platform = Platform::wsc(n);
        let sched = er_all_reduce_schedule(&platform, 4, 2.0e6);
        for backend in CongestionBackend::all() {
            let model = backend.build(&platform.topo);
            group.bench_with_input(
                BenchmarkId::new(backend.name(), format!("{n}x{n}")),
                &sched,
                |b, sched| b.iter(|| model.price_schedule(sched)),
            );
        }
    }
    group.finish();
}

fn bench_price_a2a(c: &mut Criterion) {
    let mut group = c.benchmark_group("price_a2a_dispatch_combine");
    group.sample_size(10);
    let model = ModelConfig::qwen3_235b();
    let platform = Platform::wsc(6);
    let plan = ErMapping::with_tp_degree(platform.topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let placement = ExpertPlacement::balanced(
        model.num_experts as usize,
        platform.topo.num_devices(),
        1,
    );
    let gating = balanced_gating(
        plan.num_groups(),
        model.num_experts as usize,
        256,
        model.experts_per_token,
    );
    let a2a = A2aModel::new(&platform.topo, &platform.table, &plan);
    let token_bytes = model.token_bytes(Precision::Fp16);
    for backend in CongestionBackend::all() {
        let pricer = backend.build(&platform.topo);
        group.bench_function(BenchmarkId::from_parameter(backend.name()), |b| {
            b.iter(|| a2a.estimate_with(pricer.as_ref(), &gating, &placement, token_bytes, 256))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_price_er_all_reduce, bench_price_a2a);
criterion_main!(benches);
