//! Criterion benchmarks for the pluggable congestion-pricing backends:
//! the cost of pricing the *same* collective with the closed-form analytic
//! model, the flow-level DES, and the memoizing cached DES, at both
//! collective and A2A scope — plus the incremental-vs-full-recompute
//! allocator split inside the DES itself.
//!
//! This quantifies the fidelity/speed trade the `EngineConfig::backend` knob
//! buys (DESIGN.md §5 fidelity ladder). The machine-readable speedup ratios
//! tracked across PRs are emitted by `repro_all` / the `bench_backend`
//! binary into `target/figs/bench_backend.json`; the raw per-call timings
//! live here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use moe_model::{ModelConfig, Precision};
use moentwine_bench::perf::grouped_dispatch_flows;
use moentwine_bench::platforms::{balanced_gating, Platform};
use moentwine_core::comm::A2aModel;
use moentwine_core::mapping::ErMapping;
use moentwine_core::placement::ExpertPlacement;
use wsc_collectives::{all_to_all_concurrent, uniform_all_to_all_matrix};
use wsc_sim::{CongestionBackend, FlowSchedule, NetworkSim};

fn er_all_reduce_schedule(platform: &Platform, tp: usize, bytes: f64) -> FlowSchedule {
    let plan = ErMapping::with_tp_degree(platform.topo.mesh_dims().unwrap(), tp)
        .unwrap()
        .plan();
    use moentwine_core::comm::ParallelLayout;
    plan.all_reduce_schedule(&platform.topo, bytes)
}

fn bench_price_er_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("price_er_all_reduce");
    for n in [4u16, 8] {
        let platform = Platform::wsc(n);
        let sched = er_all_reduce_schedule(&platform, 4, 2.0e6);
        for backend in CongestionBackend::all() {
            let model = backend.build(&platform.topo);
            group.bench_with_input(
                BenchmarkId::new(backend.name(), format!("{n}x{n}")),
                &sched,
                |b, sched| b.iter(|| model.price_schedule(sched)),
            );
        }
    }
    group.finish();
}

fn bench_price_a2a(c: &mut Criterion) {
    let mut group = c.benchmark_group("price_a2a_dispatch_combine");
    group.sample_size(10);
    let model = ModelConfig::qwen3_235b();
    let platform = Platform::wsc(6);
    let plan = ErMapping::with_tp_degree(platform.topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let placement =
        ExpertPlacement::balanced(model.num_experts as usize, platform.topo.num_devices(), 1);
    let gating = balanced_gating(
        plan.num_groups(),
        model.num_experts as usize,
        256,
        model.experts_per_token,
    );
    let a2a = A2aModel::new(&platform.topo, &platform.table, &plan);
    let token_bytes = model.token_bytes(Precision::Fp16);
    for backend in CongestionBackend::all() {
        let pricer = backend.build(&platform.topo);
        group.bench_function(BenchmarkId::from_parameter(backend.name()), |b| {
            b.iter(|| a2a.estimate_with(pricer.as_ref(), &gating, &placement, token_bytes, 256))
        });
    }
    group.finish();
}

/// The repeated-schedule case the `flow-sim-cached` knob exists for: pricing
/// the same engine-layer schedule over and over. The cached backend
/// simulates once and replays; the uncached backend re-simulates each call.
fn bench_repeated_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("price_repeated_schedule");
    group.sample_size(10);
    let platform = Platform::wsc(6);
    let sched = er_all_reduce_schedule(&platform, 4, 2.0e6);
    for backend in [CongestionBackend::FlowSim, CongestionBackend::FlowSimCached] {
        let model = backend.build(&platform.topo);
        // Prime the cache outside the measurement so the cached number is
        // the steady-state replay cost.
        model.price_schedule(&sched);
        group.bench_with_input(
            BenchmarkId::from_parameter(backend.name()),
            &sched,
            |b, sched| b.iter(|| model.price_schedule(sched)),
        );
    }
    group.finish();
}

/// Incremental component-scoped fair-share vs the PR-1 full-recompute
/// reference, on two contended DES runs: the clustered EP-group dispatch
/// (components fragment → the incremental win) and the globally-coupled
/// uniform all-to-all (one component → constant-factor win only).
fn bench_des_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_fairshare_allocator");
    group.sample_size(10);
    let mut case = |label: String, topo: &wsc_topology::Topology, flows: &[wsc_sim::FlowSpec]| {
        group.bench_with_input(
            BenchmarkId::new("incremental", &label),
            &flows,
            |b, flows| b.iter(|| NetworkSim::new(topo).run_concurrent(flows)),
        );
        group.bench_with_input(
            BenchmarkId::new("full-recompute", &label),
            &flows,
            |b, flows| {
                b.iter(|| {
                    NetworkSim::new(topo)
                        .use_reference_allocator(true)
                        .run_concurrent(flows)
                })
            },
        );
    };
    for n in [8u16, 12] {
        let platform = Platform::wsc(n);
        let flows = grouped_dispatch_flows(&platform.topo, 1.0e6);
        case(format!("grouped-{n}x{n}"), &platform.topo, &flows);
    }
    for n in [4u16, 6] {
        let platform = Platform::wsc(n);
        let sched = all_to_all_concurrent(
            &platform.topo,
            &uniform_all_to_all_matrix(&platform.topo, 1.0e6),
        );
        case(
            format!("uniform-{n}x{n}"),
            &platform.topo,
            &sched.phases()[0].flows,
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_price_er_all_reduce,
    bench_price_a2a,
    bench_repeated_schedule,
    bench_des_allocators
);
criterion_main!(benches);
