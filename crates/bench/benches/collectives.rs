//! Criterion benchmarks for collective schedule construction and
//! flow-level simulation — the kernels behind Figs. 6 and 13.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use moe_model::{ModelConfig, Precision};
use moentwine_bench::platforms::{balanced_gating, Platform};
use moentwine_core::comm::A2aModel;
use moentwine_core::mapping::{ErMapping, TpShape};
use moentwine_core::placement::ExpertPlacement;
use wsc_collectives::{all_to_all_concurrent, ring_all_reduce, Ring, Transfer};

fn bench_ring_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_all_reduce_des");
    for n in [4u16, 8] {
        let platform = Platform::wsc(n);
        let ring = Ring::new(platform.topo.devices().take(n as usize).collect());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &n,
            |b, _| b.iter(|| ring_all_reduce(&platform.topo, &ring, 2.0e6).run(&platform.topo)),
        );
    }
    group.finish();
}

fn bench_all_to_all_des(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_to_all_des");
    group.sample_size(10);
    let model = ModelConfig::qwen3_235b();
    for n in [4u16, 6] {
        let platform = Platform::wsc(n);
        let plan = ErMapping::with_tp_degree(platform.topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let placement =
            ExpertPlacement::balanced(model.num_experts as usize, platform.topo.num_devices(), 1);
        let gating = balanced_gating(
            plan.num_groups(),
            model.num_experts as usize,
            256,
            model.experts_per_token,
        );
        let a2a = A2aModel::new(&platform.topo, &platform.table, &plan);
        let transfers: Vec<Transfer> = a2a
            .dispatch_transfers(&gating, &placement, model.token_bytes(Precision::Fp16))
            .into_iter()
            .map(|(s, d, b)| Transfer::new(s, d, b))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &n,
            |b, _| b.iter(|| all_to_all_concurrent(&platform.topo, &transfers).run(&platform.topo)),
        );
    }
    group.finish();
}

fn bench_a2a_analytic(c: &mut Criterion) {
    let model = ModelConfig::deepseek_v3();
    let platform = Platform::wsc(8);
    let plan = ErMapping::new(platform.topo.mesh_dims().unwrap(), TpShape::new(2, 2))
        .unwrap()
        .plan();
    let placement =
        ExpertPlacement::balanced(model.num_experts as usize, platform.topo.num_devices(), 1);
    let gating = balanced_gating(
        plan.num_groups(),
        model.num_experts as usize,
        256,
        model.experts_per_token,
    );
    let a2a = A2aModel::new(&platform.topo, &platform.table, &plan);
    c.bench_function("a2a_analytic_8x8_dsv3", |b| {
        b.iter(|| a2a.estimate(&gating, &placement, model.token_bytes(Precision::Fp16), 256))
    });
}

criterion_group!(
    benches,
    bench_ring_all_reduce,
    bench_all_to_all_des,
    bench_a2a_analytic
);
criterion_main!(benches);
