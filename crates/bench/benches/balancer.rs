//! Criterion benchmarks for the balancing strategies (Algorithm 1 and the
//! greedy baseline) at production scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

use moentwine_bench::platforms::Platform;
use moentwine_core::balancer::{BalanceContext, Balancer, GreedyBalancer, TopologyAwareBalancer};
use moentwine_core::placement::ExpertPlacement;

fn bench_balancers(c: &mut Criterion) {
    let mut group = c.benchmark_group("balancer_plan_layer");
    // 256-device multi-wafer system, 256 experts (the Fig. 17 scale).
    let platform = Platform::multi_wsc(2, 2, 8);
    let placement = ExpertPlacement::balanced(256, 256, 2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let loads: Vec<f64> = (0..256).map(|_| rng.gen_range(1.0..100.0)).collect();

    for actions in [4usize, 16] {
        group.bench_with_input(
            BenchmarkId::new("topology_aware", actions),
            &actions,
            |b, &actions| {
                b.iter(|| {
                    TopologyAwareBalancer::new(actions).plan_layer(&BalanceContext {
                        layer: 0,
                        expert_loads: &loads,
                        placement: &placement,
                        table: &platform.table,
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("greedy", actions),
            &actions,
            |b, &actions| {
                b.iter(|| {
                    GreedyBalancer::new(actions).plan_layer(&BalanceContext {
                        layer: 0,
                        expert_loads: &loads,
                        placement: &placement,
                        table: &platform.table,
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_balancers);
criterion_main!(benches);
