//! Experiment reports: printable tables persisted as JSON.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::json::Value;

/// One experiment's output: a titled table plus free-form observations
/// (typically the paper-vs-measured comparison).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Report {
    /// Stable identifier, e.g. `"fig13b"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Formatted table rows.
    pub rows: Vec<Vec<String>>,
    /// Observations / paper-vs-measured notes.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            columns: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn columns<I: IntoIterator<Item = S>, S: Into<String>>(mut self, cols: I) -> Self {
        self.columns = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the report as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        if !self.columns.is_empty() {
            out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
            out.push_str(&format!(
                "|{}\n",
                self.columns.iter().map(|_| "---|").collect::<String>()
            ));
            for row in &self.rows {
                out.push_str(&format!("| {} |\n", row.join(" | ")));
            }
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }

    /// Prints the report to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }

    /// The report as a JSON tree (see [`crate::json`]).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("id".into(), Value::Str(self.id.clone())),
            ("title".into(), Value::Str(self.title.clone())),
            ("columns".into(), Value::strings(self.columns.clone())),
            (
                "rows".into(),
                Value::Arr(
                    self.rows
                        .iter()
                        .map(|row| Value::strings(row.clone()))
                        .collect(),
                ),
            ),
            ("notes".into(), Value::strings(self.notes.clone())),
        ])
    }

    /// Rebuilds a report from [`Report::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a static message naming the missing or mistyped field.
    pub fn from_json(value: &Value) -> Result<Self, &'static str> {
        fn string_list(value: &Value, what: &'static str) -> Result<Vec<String>, &'static str> {
            value
                .as_array()
                .ok_or(what)?
                .iter()
                .map(|v| v.as_str().map(str::to_owned).ok_or(what))
                .collect()
        }
        let field = |key: &str, what: &'static str| value.get(key).ok_or(what);
        Ok(Report {
            id: field("id", "missing id")?
                .as_str()
                .ok_or("id must be a string")?
                .to_owned(),
            title: field("title", "missing title")?
                .as_str()
                .ok_or("title must be a string")?
                .to_owned(),
            columns: string_list(field("columns", "missing columns")?, "bad columns")?,
            rows: field("rows", "missing rows")?
                .as_array()
                .ok_or("rows must be an array")?
                .iter()
                .map(|row| string_list(row, "bad row"))
                .collect::<Result<_, _>>()?,
            notes: string_list(field("notes", "missing notes")?, "bad notes")?,
        })
    }

    /// Persists the report as `dir/<id>.json`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        fs::write(
            dir.join(format!("{}.json", self.id)),
            self.to_json().pretty(),
        )
    }

    /// Loads a report previously written by [`Report::save`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; malformed JSON maps to
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        let value =
            Value::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Report::from_json(&value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_time(seconds: f64) -> String {
    if seconds == 0.0 {
        "0".into()
    } else if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Formats `new` as a percentage improvement over `old`
/// (positive = faster).
pub fn fmt_improvement(old: f64, new: f64) -> String {
    if old <= 0.0 {
        return "n/a".into();
    }
    format!("{:+.0}%", (old - new) / old * 100.0)
}

/// Formats a ratio as `x.xx×`.
pub fn fmt_ratio(value: f64) -> String {
    format!("{value:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut r = Report::new("figX", "demo").columns(["a", "b"]);
        r.row(["1", "2"]);
        r.note("note");
        let md = r.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("- note"));
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(0.0), "0");
        assert_eq!(fmt_time(5e-9), "5.0 ns");
        assert_eq!(fmt_time(2.5e-6), "2.50 µs");
        assert_eq!(fmt_time(3.0e-3), "3.00 ms");
        assert_eq!(fmt_time(2.0), "2.000 s");
    }

    #[test]
    fn improvement_formatting() {
        assert_eq!(fmt_improvement(2.0, 1.0), "+50%");
        assert_eq!(fmt_improvement(1.0, 1.5), "-50%");
        assert_eq!(fmt_improvement(0.0, 1.0), "n/a");
    }

    #[test]
    fn save_roundtrip() {
        let dir = std::env::temp_dir().join("moentwine-report-test");
        let mut r = Report::new("t1", "x").columns(["c"]);
        r.row(["v"]);
        r.note("paper-vs-measured: \"close\"");
        r.save(&dir).unwrap();
        let loaded = Report::load(dir.join("t1.json")).unwrap();
        assert_eq!(loaded, r);
    }
}
